"""Sharded-vs-monolithic equivalence: the tentpole's byte-identity.

The merged artifact — every E1 daily collection plus the full E8
report, canonically encoded — must be byte-identical to the monolithic
run's whatever the shard count, the executor (inline objects or forked
processes), and whether the campaign ran straight through or crashed
and resumed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import canonical_json, study_artifact
from repro.core.study import SixWeekStudy, StudyConfig
from repro.errors import SimulatedCrash
from repro.faults.crash import CrashPlan
from repro.shard import resume_sharded_study, run_sharded_study
from repro.world import SimulatedInternet, WorldConfig

from .conftest import POPULATION, SEED, small_config


class TestShardedEquivalence:
    @pytest.mark.parametrize("shard_count", [1, 2, 4])
    def test_inline_sharding_is_byte_identical(
        self, monolithic_artifact, shard_count
    ):
        report = run_sharded_study(
            population=POPULATION,
            seed=SEED,
            config=small_config(),
            shard_count=shard_count,
            mode="inline",
        )
        assert canonical_json(study_artifact(report)) == monolithic_artifact

    def test_forked_processes_are_byte_identical(self, monolithic_artifact):
        report = run_sharded_study(
            population=POPULATION,
            seed=SEED,
            config=small_config(),
            shard_count=2,
            mode="process",
        )
        assert canonical_json(study_artifact(report)) == monolithic_artifact

    def test_crashed_and_resumed_campaign_is_byte_identical(
        self, monolithic_artifact, tmp_path
    ):
        directory = tmp_path / "campaign"
        with pytest.raises(SimulatedCrash):
            run_sharded_study(
                population=POPULATION,
                seed=SEED,
                config=small_config(),
                shard_count=2,
                mode="inline",
                checkpoint_dir=directory,
                crash_plan=CrashPlan(at_barrier=2, mode="after-commit"),
            )
        report = resume_sharded_study(
            directory,
            population=POPULATION,
            seed=SEED,
            config=small_config(),
            mode="inline",
        )
        assert canonical_json(study_artifact(report)) == monolithic_artifact

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        population=st.integers(min_value=20, max_value=60),
        shard_count=st.integers(min_value=2, max_value=5),
    )
    def test_property_merge_is_partition_independent(
        self, seed, population, shard_count
    ):
        config = StudyConfig(warmup_days=3, study_days=3)
        world = SimulatedInternet(
            WorldConfig(population_size=population, seed=seed)
        )
        monolithic = canonical_json(
            study_artifact(SixWeekStudy(world, config).run())
        )
        sharded = run_sharded_study(
            population=population,
            seed=seed,
            config=config,
            shard_count=shard_count,
            mode="inline",
        )
        assert canonical_json(study_artifact(sharded)) == monolithic
