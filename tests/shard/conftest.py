"""Shared fixtures for the sharded-execution tests.

Everything runs at a deliberately tiny scale: 120 sites, 8 warm-up
days, 8 study days — long enough that *two* weekly scan sweeps fire
(study days 0 and 7), so the merge is exercised over multi-week state,
small enough that a monolithic reference plus several sharded replays
stay in seconds.
"""

import pytest

from repro.checkpoint import canonical_json, study_artifact
from repro.core.study import SixWeekStudy, StudyConfig
from repro.world import SimulatedInternet, WorldConfig

POPULATION = 120
SEED = 23
WARMUP_DAYS = 8
STUDY_DAYS = 8


def small_config() -> StudyConfig:
    return StudyConfig(warmup_days=WARMUP_DAYS, study_days=STUDY_DAYS)


@pytest.fixture(scope="session")
def monolithic_artifact() -> str:
    """The single-process campaign's artifact, canonically encoded."""
    world = SimulatedInternet(
        WorldConfig(population_size=POPULATION, seed=SEED)
    )
    report = SixWeekStudy(world, small_config()).run()
    return canonical_json(study_artifact(report))
