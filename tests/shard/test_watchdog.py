"""The coordinator watchdog: dead and hung workers fail loudly.

The forked-shard coordinator used to issue a blind ``recv()`` per
worker per operation, so a worker that was killed (OOM killer, an
operator's stray ``kill``) or simply wedged would deadlock the whole
campaign — every surviving process parked on a pipe that would never
fill.  These tests kill and hang real workers mid-barrier and assert
the coordinator raises :class:`ShardWorkerError` naming the lost shard
and the operation, terminates the stragglers, and leaves no orphan
processes behind.
"""

import os
import signal
import time

import pytest

from repro.core.study import StudyConfig
from repro.errors import ShardError, ShardWorkerError
from repro.shard.runner import DEFAULT_OP_TIMEOUT, ProcessExecutor, WorkerSpec


def _specs(count: int) -> list:
    config = StudyConfig(warmup_days=2, study_days=4)
    return [
        WorkerSpec(
            shard_index=index,
            shard_count=count,
            population=60,
            seed=7,
            config=config,
        )
        for index in range(count)
    ]


def _sleep_forever(connection) -> None:
    """A worker stand-in that joins the lockstep and never answers."""
    time.sleep(600)


@pytest.fixture
def executor():
    ex = ProcessExecutor(_specs(2), op_timeout=30.0)
    ex.start()
    yield ex
    ex.close(force=True)


class TestDeadWorker:
    def test_sigkilled_worker_raises_named_error(self, executor):
        executor.call_all("barrier", 0)
        os.kill(executor._processes[1].pid, signal.SIGKILL)
        executor._processes[1].join(timeout=10)
        with pytest.raises(ShardWorkerError) as excinfo:
            executor.call_all("collect")
        message = str(excinfo.value)
        assert "shard 1" in message
        assert "died mid-protocol" in message
        assert "'collect'" in message

    def test_survivors_are_terminated_not_orphaned(self, executor):
        executor.call_all("barrier", 0)
        survivor = executor._processes[0]
        os.kill(executor._processes[1].pid, signal.SIGKILL)
        executor._processes[1].join(timeout=10)
        with pytest.raises(ShardWorkerError):
            executor.call_all("collect")
        # close(force=True) already ran inside the refusal; the healthy
        # worker must be gone too, not leaked to wedge a later run.
        assert not survivor.is_alive()
        assert executor._processes == []

    def test_error_is_a_shard_error(self):
        # Callers that already catch ShardError (the kill matrix, the
        # CLI) must see the watchdog's refusal through the same net.
        assert issubclass(ShardWorkerError, ShardError)


class TestHungWorker:
    def _hung_executor(self, op_timeout: float) -> ProcessExecutor:
        """An executor whose single 'worker' never answers.

        Built by hand: a real ShardWorker cannot be made to hang
        deterministically, so the lockstep's pipe is wired to a process
        that sleeps forever — exactly what the coordinator sees when a
        worker wedges mid-operation.
        """
        ex = ProcessExecutor.__new__(ProcessExecutor)
        ex._specs = _specs(1)
        ex._op_timeout = op_timeout
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        parent_end, child_end = context.Pipe()
        process = context.Process(
            target=_sleep_forever, args=(child_end,), daemon=True
        )
        process.start()
        child_end.close()
        ex._processes = [process]
        ex._connections = [parent_end]
        return ex

    def test_straggler_is_terminated_and_named(self):
        ex = self._hung_executor(op_timeout=0.5)
        try:
            with pytest.raises(ShardWorkerError) as excinfo:
                ex.call_all("collect")
            message = str(excinfo.value)
            assert "shard 0" in message
            assert "did not answer within 0.5s" in message
        finally:
            ex.close(force=True)

    def test_default_timeout_is_generous(self):
        # The deadline guards against workers that are *gone*, not
        # workers that are slow: a full shard day at study scale must
        # fit comfortably inside it.
        assert DEFAULT_OP_TIMEOUT >= 60.0


class TestHealthyLockstep:
    def test_watchdog_never_fires_on_a_healthy_campaign(self, executor):
        # Drive one full barrier+collect+advance round with the
        # watchdog armed; a correct lockstep never trips it.
        executor.call_all("barrier", 0)
        executor.call_all("collect")
        executor.call_all("advance")
        executor.call_all("barrier", 1)
