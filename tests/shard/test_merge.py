"""Merge-rule unit tests: payload folding and its structural refusals."""

import copy

import pytest

from repro.core.study import SixWeekStudy, StudyConfig
from repro.errors import ShardError
from repro.shard import merge_payloads, overlay_merged
from repro.shard.merge import PAYLOAD_VERSION
from repro.shard.runner import WorkerSpec, _drive_lockstep
from repro.world import SimulatedInternet, WorldConfig


@pytest.fixture(scope="module")
def payloads():
    """Two real shard payloads from one tiny inline campaign."""
    config = StudyConfig(warmup_days=4, study_days=3)
    specs = [
        WorkerSpec(
            shard_index=index,
            shard_count=2,
            population=60,
            seed=5,
            config=config,
        )
        for index in range(2)
    ]
    return _drive_lockstep(specs, config, "inline", start_barrier=0)


class TestMergePayloads:
    def test_merged_payload_is_monolithic_shaped(self, payloads):
        merged = merge_payloads(payloads)
        assert merged["payload_version"] == PAYLOAD_VERSION
        assert merged["shard"] == {"index": 0, "count": 1}
        assert merged["population"] == payloads[0]["population"]

    def test_positional_series_concatenate_in_shard_order(self, payloads):
        merged = merge_payloads(payloads)
        for position, snapshot in enumerate(merged["report"]["snapshots"]):
            per_shard = [
                payload["report"]["snapshots"][position]
                for payload in payloads
            ]
            assert snapshot["domains"] == (
                per_shard[0]["domains"] + per_shard[1]["domains"]
            )

    def test_merge_is_independent_of_payload_arrival_order(self, payloads):
        forward = merge_payloads(payloads)
        backward = merge_payloads(list(reversed(payloads)))
        assert forward == backward

    def test_set_like_values_merge_sorted(self, payloads):
        merged = merge_payloads(payloads)
        assert merged["harvest"] == sorted(
            set(payloads[0]["harvest"]) | set(payloads[1]["harvest"])
        )

    def test_tallies_are_commutative_sums(self, payloads):
        merged = merge_payloads(payloads)
        for name, value in merged["metrics"].items():
            assert value == sum(
                payload["metrics"].get(name, 0) for payload in payloads
            )
        assert merged["report"]["unmeasured_daily_counts"] == [
            sum(
                payload["report"]["unmeasured_daily_counts"][position]
                for payload in payloads
            )
            for position in range(
                len(payloads[0]["report"]["unmeasured_daily_counts"])
            )
        ]


class TestMergeRefusals:
    def test_nothing_to_merge(self):
        with pytest.raises(ShardError, match="nothing to merge"):
            merge_payloads([])

    def test_unknown_payload_version(self, payloads):
        mutated = copy.deepcopy(payloads)
        mutated[0]["payload_version"] = PAYLOAD_VERSION + 1
        with pytest.raises(ShardError, match="version"):
            merge_payloads(mutated)

    def test_incomplete_topology(self, payloads):
        with pytest.raises(ShardError, match="1 payload"):
            merge_payloads([copy.deepcopy(payloads[0])])

    def test_duplicate_shard_indices(self, payloads):
        duplicated = [copy.deepcopy(payloads[0]) for _ in range(2)]
        with pytest.raises(ShardError, match="do not cover"):
            merge_payloads(duplicated)

    def test_lockstep_position_disagreement(self, payloads):
        mutated = copy.deepcopy(payloads)
        mutated[1]["day_index"] += 1
        with pytest.raises(ShardError, match="disagree on day_index"):
            merge_payloads(mutated)

    def test_skipped_scan_week_disagreement(self, payloads):
        mutated = copy.deepcopy(payloads)
        mutated[1]["report"]["skipped_scan_weeks"] = [99]
        with pytest.raises(ShardError, match="skipped scan weeks"):
            merge_payloads(mutated)


class TestOverlayRefusals:
    def test_overlay_refuses_a_sharded_runtime(self):
        world = SimulatedInternet(WorldConfig(population_size=40, seed=3))
        study = SixWeekStudy(
            world, StudyConfig(warmup_days=2, study_days=2)
        )
        runtime = study.begin(0, 2)
        with pytest.raises(ShardError, match="unsharded coordinator"):
            overlay_merged(study, runtime, {})

    def test_overlay_refuses_a_mismatched_study_start(self):
        world = SimulatedInternet(WorldConfig(population_size=40, seed=3))
        study = SixWeekStudy(
            world, StudyConfig(warmup_days=2, study_days=2)
        )
        runtime = study.begin()
        merged = {"study_start_day": runtime.study_start_day + 1}
        with pytest.raises(ShardError, match="starts its study"):
            overlay_merged(study, runtime, merged)
