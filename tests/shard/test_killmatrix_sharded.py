"""The kill matrix through the sharded plane, at test scale.

Same discipline as the monolithic matrix — crash at every barrier in
both modes, resume, demand byte-identity against the uninterrupted
sharded reference — plus the refusal checks pointed at one worker's
store: a single damaged shard must be enough to stop (or, for the torn
tail, be tolerated by) the whole campaign resume.
"""

from repro.checkpoint import run_kill_matrix
from repro.core.study import StudyConfig

from .conftest import POPULATION, SEED, WARMUP_DAYS


STUDY_DAYS = 3  # 7 crash cases; the equivalence pack covers long runs


class TestShardedKillMatrix:
    def test_full_matrix_passes_with_two_shards(self, tmp_path):
        payload = run_kill_matrix(
            tmp_path,
            population=POPULATION,
            seed=SEED,
            config=StudyConfig(
                warmup_days=WARMUP_DAYS, study_days=STUDY_DAYS
            ),
            shards=2,
        )
        assert payload["shards"] == 2
        assert len(payload["cases"]) == 2 * STUDY_DAYS + 1
        assert all(case["crashed"] for case in payload["cases"])
        failed = [case for case in payload["cases"] if not case["passed"]]
        assert failed == [], failed
        refusal_verdicts = {
            check["check"]: check["passed"] for check in payload["refusals"]
        }
        assert refusal_verdicts == {
            "mismatched-seed": True,
            "mismatched-profile": True,
            "mismatched-traffic": True,
            "mismatched-attacks": True,
            "torn-journal-tail": True,
            "corrupt-snapshot": True,
        }
        assert payload["passed"] is True
