"""The partition arithmetic: exact coverage, balance, loud refusals."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.study import shard_bounds
from repro.errors import ConfigurationError
from repro.shard import ShardPlan


class TestShardPlan:
    def test_bounds_cover_population_exactly_once(self):
        plan = ShardPlan(population=10, shard_count=3)
        covered = [
            index
            for shard in plan.shard_indices
            for index in range(*plan.bounds(shard))
        ]
        assert covered == list(range(10))

    def test_sizes_are_balanced_and_in_shard_order(self):
        plan = ShardPlan(population=10, shard_count=3)
        assert plan.sizes() == [4, 3, 3]
        assert sum(plan.sizes()) == plan.population

    def test_single_shard_is_the_whole_population(self):
        plan = ShardPlan(population=7, shard_count=1)
        assert plan.bounds(0) == (0, 7)

    @pytest.mark.parametrize(
        "population, shard_count",
        [(0, 1), (10, 0), (10, -1), (2, 3)],
    )
    def test_bad_topologies_are_refused(self, population, shard_count):
        with pytest.raises(ConfigurationError):
            ShardPlan(population=population, shard_count=shard_count)

    def test_out_of_range_shard_index_is_refused(self):
        plan = ShardPlan(population=10, shard_count=2)
        with pytest.raises(ValueError):
            plan.bounds(2)
        with pytest.raises(ValueError):
            plan.bounds(-1)

    @given(
        population=st.integers(min_value=1, max_value=500),
        shard_count=st.integers(min_value=1, max_value=32),
    )
    def test_property_partition_is_exact_contiguous_and_balanced(
        self, population, shard_count
    ):
        if shard_count > population:
            with pytest.raises(ConfigurationError):
                ShardPlan(population=population, shard_count=shard_count)
            return
        plan = ShardPlan(population=population, shard_count=shard_count)
        bounds = [plan.bounds(index) for index in plan.shard_indices]
        # Contiguous: each shard starts where the previous one ended.
        assert bounds[0][0] == 0
        assert bounds[-1][1] == population
        for (_, previous_end), (start, _) in zip(bounds, bounds[1:]):
            assert start == previous_end
        # Balanced: sizes differ by at most one, larger shards first.
        sizes = plan.sizes()
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)

    @given(
        population=st.integers(min_value=1, max_value=300),
        shard_count=st.integers(min_value=1, max_value=16),
        shard_index=st.integers(min_value=0, max_value=15),
    )
    def test_property_bounds_need_no_coordination(
        self, population, shard_count, shard_index
    ):
        """Any party recomputes the same bounds from pure arithmetic."""
        if shard_index >= shard_count or shard_count > population:
            return
        assert shard_bounds(
            population, shard_index, shard_count
        ) == ShardPlan(population, shard_count).bounds(shard_index)
