"""Tests for the observability registry and simulated-time timers."""

import pytest

from repro.clock import SimulationClock
from repro.errors import SimulationError
from repro.obs import MetricsRegistry


class TestCounters:
    def test_unset_counter_reads_zero(self):
        assert MetricsRegistry().value("resolver.queries_sent") == 0

    def test_incr_accumulates_and_returns_total(self):
        metrics = MetricsRegistry()
        assert metrics.incr("cache.hits") == 1
        assert metrics.incr("cache.hits", 4) == 5
        assert metrics.value("cache.hits") == 5

    def test_zero_increment_creates_counter(self):
        metrics = MetricsRegistry()
        metrics.incr("bench.warmup.sim_seconds", 0)
        assert metrics.value("bench.warmup.sim_seconds") == 0
        assert len(metrics) == 1

    def test_negative_increment_rejected(self):
        metrics = MetricsRegistry()
        with pytest.raises(SimulationError):
            metrics.incr("cache.hits", -1)

    def test_len_counts_distinct_counters(self):
        metrics = MetricsRegistry()
        metrics.incr("a")
        metrics.incr("a")
        metrics.incr("b")
        assert len(metrics) == 2


class TestSnapshot:
    def test_full_snapshot_sorted(self):
        metrics = MetricsRegistry()
        metrics.incr("resolver.queries_sent", 3)
        metrics.incr("cache.hits", 2)
        assert list(metrics.snapshot()) == ["cache.hits", "resolver.queries_sent"]

    def test_prefix_matches_whole_dotted_segments(self):
        metrics = MetricsRegistry()
        metrics.incr("cache.hits")
        metrics.incr("cache.misses", 2)
        metrics.incr("cachex.hits", 9)
        assert metrics.snapshot("cache") == {
            "cache.hits": 1,
            "cache.misses": 2,
        }

    def test_prefix_includes_exact_name(self):
        metrics = MetricsRegistry()
        metrics.incr("cache")
        metrics.incr("cache.hits")
        assert metrics.snapshot("cache") == {"cache": 1, "cache.hits": 1}

    def test_snapshot_is_a_copy(self):
        metrics = MetricsRegistry()
        metrics.incr("a")
        snapshot = metrics.snapshot()
        snapshot["a"] = 99
        assert metrics.value("a") == 1


class TestSimTimer:
    def test_records_sim_seconds_and_activations(self):
        clock = SimulationClock()
        metrics = MetricsRegistry()
        with metrics.timer("bench.warmup", clock):
            clock.advance(432)
        assert metrics.value("bench.warmup.sim_seconds") == 432
        assert metrics.value("bench.warmup.activations") == 1

    def test_accumulates_across_activations(self):
        clock = SimulationClock()
        metrics = MetricsRegistry()
        with metrics.timer("phase", clock):
            clock.advance(10)
        with metrics.timer("phase", clock):
            clock.advance(5)
        assert metrics.value("phase.sim_seconds") == 15
        assert metrics.value("phase.activations") == 2

    def test_untouched_clock_records_zero(self):
        clock = SimulationClock()
        metrics = MetricsRegistry()
        with metrics.timer("idle", clock):
            pass
        assert metrics.value("idle.sim_seconds") == 0
        assert metrics.value("idle.activations") == 1

    def test_records_on_exception(self):
        clock = SimulationClock()
        metrics = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with metrics.timer("failing", clock):
                clock.advance(7)
                raise RuntimeError("boom")
        assert metrics.value("failing.sim_seconds") == 7
        assert metrics.value("failing.activations") == 1
