"""Tests for the bench harness: E1/E8 workloads and the batched vs
naive query-path comparison (the PR's acceptance benchmark)."""

import json

import pytest

from repro.clock import SECONDS_PER_DAY
from repro.obs.bench import run_bench
from repro.world import SimulatedInternet, WorldConfig

_POPULATION = 80
_WARMUP_DAYS = 3


@pytest.fixture(scope="module")
def bench_result():
    """One small bench run shared by the whole module (~seconds)."""
    world = SimulatedInternet(
        WorldConfig(population_size=_POPULATION, seed=37)
    )
    return run_bench(world, warmup_days=_WARMUP_DAYS, label="unittest")


class TestRunBench:
    def test_payload_shape(self, bench_result):
        assert bench_result["label"] == "unittest"
        assert bench_result["population"] == _POPULATION
        assert bench_result["warmup_days"] == _WARMUP_DAYS
        for key in ("e1_collection", "e8_residual_scan", "wall_seconds_total"):
            assert key in bench_result

    def test_payload_json_serialisable(self, bench_result):
        assert json.loads(json.dumps(bench_result)) is not None

    def test_warmup_measured_in_simulated_seconds(self, bench_result):
        expected = _WARMUP_DAYS * SECONDS_PER_DAY
        assert bench_result["warmup_sim_seconds"] == expected

    def test_e1_counters(self, bench_result):
        e1 = bench_result["e1_collection"]
        assert e1["hostnames"] == _POPULATION
        assert e1["resolved"] > 0
        counters = e1["counters"]
        assert counters["resolver.queries_sent"] > 0
        assert counters["resolver.batches"] == 2  # one A pass, one NS pass
        assert counters["resolver.batch_names"] == 2 * _POPULATION
        assert "cache.hits" in counters

    def test_e8_counters(self, bench_result):
        e8 = bench_result["e8_residual_scan"]
        assert e8["harvested_nameservers"] > 0
        assert e8["cloudflare_retrieved"] > 0
        counters = e8["counters"]
        assert counters["scan.cloudflare.queries"] == _POPULATION
        assert (
            counters["scan.cloudflare.answered"]
            + counters["scan.cloudflare.ignored"]
            == counters["scan.cloudflare.queries"]
        )

    def test_batched_beats_naive(self, bench_result):
        """The acceptance benchmark: the batched query path resolves the
        E8 name set with materially fewer queries per resolved name than
        naive per-name resolution."""
        comparison = bench_result["e8_residual_scan"]["query_path_comparison"]
        assert comparison, "expected a non-empty harvest at this population"
        batched, naive = comparison["batched"], comparison["naive"]
        assert batched["names"] == naive["names"]
        assert batched["resolved"] == naive["resolved"]  # identical outcomes
        assert batched["queries_sent"] < naive["queries_sent"]
        assert batched["queries_per_resolved"] < naive["queries_per_resolved"]
