"""Tests for the simulation clock."""

import pytest

from repro.clock import DAYS_PER_WEEK, SECONDS_PER_DAY, SimulationClock
from repro.errors import SimulationError


class TestConstruction:
    def test_starts_at_epoch_by_default(self):
        assert SimulationClock().now == 0

    def test_custom_start(self):
        assert SimulationClock(start=100).now == 100

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimulationClock(start=-1)


class TestAdvancing:
    def test_advance_moves_forward(self):
        clock = SimulationClock()
        clock.advance(10)
        assert clock.now == 10

    def test_advance_returns_new_time(self):
        assert SimulationClock().advance(5) == 5

    def test_advance_negative_rejected(self):
        with pytest.raises(SimulationError):
            SimulationClock().advance(-1)

    def test_advance_to_absolute(self):
        clock = SimulationClock()
        clock.advance_to(500)
        assert clock.now == 500

    def test_advance_to_cannot_rewind(self):
        clock = SimulationClock(start=100)
        with pytest.raises(SimulationError):
            clock.advance_to(50)

    def test_advance_to_same_time_is_noop(self):
        clock = SimulationClock(start=100)
        assert clock.advance_to(100) == 100

    def test_advance_days(self):
        clock = SimulationClock()
        clock.advance_days(3)
        assert clock.now == 3 * SECONDS_PER_DAY

    def test_advance_to_day(self):
        clock = SimulationClock()
        clock.advance_to_day(5)
        assert clock.day == 5
        assert clock.seconds_into_day() == 0


class TestDayWeekArithmetic:
    def test_day_zero_at_epoch(self):
        assert SimulationClock().day == 0

    def test_day_boundaries(self):
        clock = SimulationClock(start=SECONDS_PER_DAY - 1)
        assert clock.day == 0
        clock.advance(1)
        assert clock.day == 1

    def test_week_derivation(self):
        clock = SimulationClock()
        clock.advance_days(DAYS_PER_WEEK)
        assert clock.week == 1

    def test_seconds_into_day(self):
        clock = SimulationClock()
        clock.advance(3600)
        assert clock.seconds_into_day() == 3600
        clock.advance_days(1)
        assert clock.seconds_into_day() == 3600
