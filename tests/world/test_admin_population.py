"""Tests for the admin behaviour model and the population generator."""

import pytest

from repro.dps.catalog import provider_spec
from repro.dps.plans import PlanTier
from repro.dps.portal import ReroutingMethod
from repro.rng import SeededRng
from repro.world import SimulatedInternet, WorldConfig
from repro.world.admin import BehaviorKind


@pytest.fixture(scope="module")
def world():
    return SimulatedInternet(WorldConfig(population_size=1500, seed=9))


class TestPopulation:
    def test_population_size(self, world):
        assert len(world.population) == 1500

    def test_ranks_sequential(self, world):
        assert [s.rank for s in world.population] == list(range(1, 1501))

    def test_domains_unique(self, world):
        apexes = {str(s.apex) for s in world.population}
        assert len(apexes) == 1500

    def test_adoption_rate_near_target(self, world):
        rate = len(world.dps_customers()) / len(world.population)
        assert 0.10 < rate < 0.20  # target 14.85%

    def test_top_sites_adopt_more(self, world):
        top = [s for s in world.population if s.rank <= 15]
        rest = [s for s in world.population if s.rank > 15]
        top_rate = sum(1 for s in top if s.provider) / len(top)
        rest_rate = sum(1 for s in rest if s.provider) / len(rest)
        assert top_rate > rest_rate

    def test_cloudflare_dominates_adoption(self, world):
        adoption = world.adoption_by_provider()
        assert adoption.get("cloudflare", 0) == max(adoption.values())

    def test_every_site_resolves_or_is_multicdn(self, world):
        resolver = world.make_resolver()
        for site in world.population[:40]:
            result = resolver.resolve(site.www)
            assert result.ok, str(site.www)

    def test_origin_servers_deployed(self, world):
        client = world.http_client()
        site = next(s for s in world.population if s.provider is None and s.alive)
        assert client.get(site.origin.ip, site.www).ok

    def test_dynamic_meta_fraction_reasonable(self, world):
        fraction = sum(1 for s in world.population if s.dynamic_meta) / 1500
        assert 0.04 < fraction < 0.14  # target 8%

    def test_multicdn_sites_enrolled(self, world):
        flagged = [s for s in world.population if s.multicdn]
        if world.multicdn is not None:
            for site in flagged:
                assert world.multicdn.is_customer(site.www)


class TestEnrollmentChoices:
    def test_cloudflare_cname_gets_paid_plan(self, world):
        spec = provider_spec("cloudflare")
        for _ in range(200):
            rerouting, plan = world.admin.choose_enrollment(spec)
            if rerouting is ReroutingMethod.CNAME_BASED:
                assert plan in (PlanTier.BUSINESS, PlanTier.ENTERPRISE)

    def test_cloudflare_ns_dominates(self, world):
        spec = provider_spec("cloudflare")
        choices = [world.admin.choose_enrollment(spec)[0] for _ in range(400)]
        ns_share = sum(1 for c in choices if c is ReroutingMethod.NS_BASED) / len(choices)
        assert 0.80 < ns_share < 0.97  # target 89.95%

    def test_incapsula_never_free(self, world):
        spec = provider_spec("incapsula")
        for _ in range(100):
            _, plan = world.admin.choose_enrollment(spec)
            assert plan is not PlanTier.FREE

    def test_dosarrest_always_a_based(self, world):
        spec = provider_spec("dosarrest")
        for _ in range(50):
            rerouting, _ = world.admin.choose_enrollment(spec)
            assert rerouting is ReroutingMethod.A_BASED

    def test_choose_provider_excludes(self, world):
        for _ in range(50):
            spec = world.admin.choose_provider(exclude="cloudflare")
            assert spec.name != "cloudflare"

    def test_rotate_on_join_tracks_table5(self, world):
        spec = provider_spec("cdn77")  # 93.8% unchanged → rare rotation
        rotations = sum(world.admin.rotate_on_join(spec) for _ in range(500))
        assert rotations < 80


class TestPauseDurations:
    def test_distribution_shape(self, world):
        durations = []
        nones = 0
        for _ in range(2000):
            d = world.admin.draw_pause_duration("cloudflare")
            if d is None:
                nones += 1
            else:
                durations.append(d)
        # Never-resume fraction near the configured 22%.
        assert 0.15 < nones / 2000 < 0.30
        # Just under half of the completed pauses are one day.
        one_day = sum(1 for d in durations if d == 1) / len(durations)
        assert 0.38 < one_day < 0.55
        # ~30% exceed 5 days (Fig. 5).
        over5 = sum(1 for d in durations if d > 5) / len(durations)
        assert 0.20 < over5 < 0.42

    def test_incapsula_shorter_pauses(self, world):
        def mean_for(provider):
            draws = [
                world.admin.draw_pause_duration(provider) for _ in range(3000)
            ]
            real = [d for d in draws if d is not None]
            return sum(real) / len(real)

        assert mean_for("incapsula") < mean_for("cloudflare")


class TestDailyStep:
    def test_step_site_emits_ground_truth_events(self, world_factory):
        world = world_factory(population_size=800, seed=21)
        events = world.engine.run_days(20)
        kinds = {event.kind for event in events}
        assert BehaviorKind.JOIN in kinds or BehaviorKind.LEAVE in kinds

    def test_events_reference_real_sites(self, world_factory):
        world = world_factory(population_size=500, seed=22)
        events = world.engine.run_days(15)
        for event in events:
            assert world.website(event.website) is not None

    def test_paused_sites_resume_on_schedule(self, world_factory):
        world = world_factory(population_size=300, seed=23)
        site = next(
            s for s in world.population
            if s.provider is not None and s.provider.name == "cloudflare"
        )
        site.pause(day=world.clock.day, resume_on_day=world.clock.day + 2)
        events = world.engine.run_days(4)
        resumes = [
            e for e in events
            if e.kind is BehaviorKind.RESUME and e.website == str(site.www)
        ]
        assert len(resumes) == 1

    def test_dead_sites_take_no_actions(self, world_factory):
        world = world_factory(population_size=300, seed=24)
        site = next(s for s in world.population if s.provider is not None)
        www = str(site.www)
        site.leave(die=True)
        events = world.engine.run_days(10)
        assert not [e for e in events if e.website == www]
