"""Tests for hosting providers and website admin operations."""

import pytest

from repro.dps.plans import PlanTier
from repro.dps.portal import ReroutingMethod
from repro.errors import SimulationError
from repro.world.website import GroundTruthStatus
from repro.dns.records import RecordType


@pytest.fixture
def world(world_factory):
    return world_factory(population_size=50, seed=3)


def _fresh_site(world):
    """A site currently on no DPS platform."""
    for site in world.population:
        if site.provider is None and site.alive and not site.multicdn:
            return site
    raise AssertionError("no unprotected site in population")


class TestHostingProvider:
    def test_zone_serves_origin(self, world):
        site = _fresh_site(world)
        result = world.make_resolver().resolve(site.www)
        assert result.ok
        assert result.addresses == [site.origin.ip]

    def test_origin_reachable_over_http(self, world):
        site = _fresh_site(world)
        response = world.http_client().get(site.origin.ip, site.www)
        assert response.ok

    def test_move_origin_reregisters(self, world):
        site = _fresh_site(world)
        old_ip = site.origin.ip
        new_ip = site.hosting.move_origin(site.origin)
        assert new_ip != old_ip
        assert world.http_client().get(old_ip, site.www) is None
        assert world.http_client().get(new_ip, site.www).ok

    def test_zone_of_unknown_apex_raises(self, world):
        with pytest.raises(SimulationError):
            world.hosting_providers[0].zone_of("unknown-apex.com")

    def test_apex_has_ns_records(self, world):
        site = _fresh_site(world)
        result = world.make_resolver().resolve(site.apex, RecordType.NS)
        assert result.ok


class TestJoin:
    def test_join_ns_based(self, world):
        site = _fresh_site(world)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        assert site.status is GroundTruthStatus.ON
        result = world.make_resolver().resolve(site.www)
        assert any(result.addresses[0] in p for p in cf.prefixes)

    def test_join_cname_based(self, world):
        site = _fresh_site(world)
        inc = world.provider("incapsula")
        site.join(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS)
        result = world.make_resolver().resolve(site.www)
        assert any(result.addresses[0] in p for p in inc.prefixes)
        assert any("incapdns" in str(t) for t in result.cname_targets)

    def test_join_a_based(self, world):
        site = _fresh_site(world)
        dos = world.provider("dosarrest")
        site.join(dos, ReroutingMethod.A_BASED)
        result = world.make_resolver().resolve(site.www)
        assert any(result.addresses[0] in p for p in dos.prefixes)
        assert result.cname_targets == []

    def test_join_with_rotation_changes_origin(self, world):
        site = _fresh_site(world)
        old_ip = site.origin.ip
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED,
                  rotate_origin_ip=True)
        assert site.origin.ip != old_ip
        record = world.provider("cloudflare").customer_for(site.www)
        assert record.origin_ip == site.origin.ip

    def test_double_join_rejected(self, world):
        site = _fresh_site(world)
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        with pytest.raises(SimulationError):
            site.join(world.provider("fastly"), ReroutingMethod.CNAME_BASED)

    def test_firewalled_site_blocks_direct_probes(self, world):
        site = next(
            s for s in world.population
            if s.firewall_inclined and s.provider is None and s.alive and not s.multicdn
        )
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        probe = world.http_client("oregon")
        assert probe.get(site.origin.ip, site.www) is None


class TestLeave:
    def test_leave_restores_origin_resolution(self, world):
        site = _fresh_site(world)
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        site.leave(informed=True)
        assert site.status is GroundTruthStatus.NONE
        result = world.make_resolver().resolve(site.www)
        assert result.addresses == [site.origin.ip]

    def test_leave_with_rehost_moves_origin(self, world):
        site = _fresh_site(world)
        old_ip = site.origin.ip
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        site.leave(informed=True, rehost=True)
        assert site.origin.ip != old_ip
        result = world.make_resolver().resolve(site.www)
        assert result.addresses == [site.origin.ip]

    def test_leave_and_die_goes_dark(self, world):
        site = _fresh_site(world)
        origin_ip = site.origin.ip
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        site.leave(informed=True, die=True)
        assert not site.alive
        result = world.make_resolver().resolve(site.www)
        assert not result.ok
        assert world.http_client().get(origin_ip, site.www) is None

    def test_dead_site_cannot_rejoin(self, world):
        site = _fresh_site(world)
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        site.leave(die=True)
        with pytest.raises(SimulationError):
            site.join(world.provider("fastly"), ReroutingMethod.CNAME_BASED)

    def test_leave_removes_firewall(self, world):
        site = next(
            s for s in world.population
            if s.firewall_inclined and s.provider is None and s.alive and not s.multicdn
        )
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        site.leave()
        assert world.http_client("oregon").get(site.origin.ip, site.www).ok


class TestPauseResume:
    def test_pause_exposes_origin_publicly(self, world):
        site = _fresh_site(world)
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        site.pause(day=world.clock.day, resume_on_day=world.clock.day + 3)
        assert site.status is GroundTruthStatus.OFF
        result = world.make_resolver().resolve(site.www)
        assert result.addresses == [site.origin.ip]

    def test_resume_restores_protection(self, world):
        site = _fresh_site(world)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        site.pause(day=0, resume_on_day=1)
        site.resume()
        result = world.make_resolver().resolve(site.www)
        assert any(result.addresses[0] in p for p in cf.prefixes)

    def test_resume_with_rotation_updates_provider_record(self, world):
        site = _fresh_site(world)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        old_ip = site.origin.ip
        site.pause(day=0, resume_on_day=1)
        site.resume(rotate_origin_ip=True)
        assert site.origin.ip != old_ip
        assert cf.customer_for(site.www).origin_ip == site.origin.ip

    def test_pause_requires_on(self, world):
        site = _fresh_site(world)
        with pytest.raises(SimulationError):
            site.pause(day=0, resume_on_day=1)


class TestSwitch:
    def test_switch_ns_to_cname(self, world):
        site = _fresh_site(world)
        cf, inc = world.provider("cloudflare"), world.provider("incapsula")
        site.join(cf, ReroutingMethod.NS_BASED)
        site.switch(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS)
        assert site.provider is inc
        result = world.make_resolver().resolve(site.www)
        assert any(result.addresses[0] in p for p in inc.prefixes)

    def test_switch_cname_to_ns(self, world):
        site = _fresh_site(world)
        cf, inc = world.provider("cloudflare"), world.provider("incapsula")
        site.join(inc, ReroutingMethod.CNAME_BASED)
        site.switch(cf, ReroutingMethod.NS_BASED)
        result = world.make_resolver().resolve(site.www)
        assert any(result.addresses[0] in p for p in cf.prefixes)
        assert result.cname_targets == []

    def test_switch_to_same_provider_rejected(self, world):
        site = _fresh_site(world)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        with pytest.raises(SimulationError):
            site.switch(cf, ReroutingMethod.NS_BASED)

    def test_switch_leaves_residual_record_at_old_provider(self, world):
        """The paper's core threat scenario (Fig. 1b)."""
        site = _fresh_site(world)
        cf, inc = world.provider("cloudflare"), world.provider("incapsula")
        site.join(cf, ReroutingMethod.NS_BASED)
        origin_ip = site.origin.ip
        site.switch(inc, ReroutingMethod.CNAME_BASED, informed=True)
        # Attacker queries the previous provider directly.
        client = world.dns_client()
        ns_ip = cf.customer_fleet.all_addresses()[0]
        response = client.query(ns_ip, site.www)
        assert response.is_answer
        assert response.answers[0].address == origin_ip
