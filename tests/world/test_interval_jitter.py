"""Tests for the §IV-B-3 interval-jitter mechanism: behaviour rates
scale with elapsed time, aggregating events into spikes."""

import pytest

from repro.world import SimulatedInternet, WorldConfig
from repro.world.admin import BehaviorKind


class TestRateScaling:
    def test_longer_interval_more_events(self, world_factory):
        """Stepping with rate_scale=2 produces roughly twice the events
        of rate_scale=1 over the same population."""

        def total_events(scale: float, seed: int) -> int:
            world = world_factory(population_size=2500, seed=seed)
            count = 0
            for day in range(15):
                for site in world.population:
                    count += len(world.admin.step_site(site, day, scale))
            return count

        slow = sum(total_events(1.0, seed) for seed in (101, 102, 103))
        fast = sum(total_events(2.0, seed) for seed in (104, 105, 106))
        assert fast > slow * 1.4  # ~2x expected, noisy at this n

    def test_scale_caps_probability_at_one(self, world_factory):
        world = world_factory(population_size=50, seed=7)
        # An absurd scale must not crash Bernoulli draws.
        for site in world.population[:10]:
            world.admin.step_site(site, 0, rate_scale=10_000.0)

    def test_unit_scale_matches_engine_run(self, world_factory):
        """Manually stepping with rate_scale=1 consumes the same RNG
        draws as the engine's default run — the scale is a pure no-op."""
        a = world_factory(population_size=800, seed=42)
        b = world_factory(population_size=800, seed=42)
        events_a = a.engine.run_days(10)
        events_b = []
        for day in range(10):
            for site in b.population:
                events_b.extend(b.admin.step_site(site, day, rate_scale=1.0))
                site.rotate_public_address(day)
            for provider in b.providers.values():
                provider.purge_expired()
            b.clock.advance_days(1)
        assert [(e.website, e.kind) for e in events_a] == [
            (e.website, e.kind) for e in events_b
        ]


class TestJitteredEngine:
    def test_intervals_vary(self, world_factory):
        world = world_factory(population_size=60, seed=9)
        world.engine.interval_jitter_hours = 6
        intervals = []
        for _ in range(8):
            before = world.clock.now
            world.engine.run_day()
            intervals.append(world.clock.now - before)
        assert len(set(intervals)) > 1
        assert all(18 * 3600 <= i <= 30 * 3600 for i in intervals)

    def test_no_jitter_exact_days(self, world_factory):
        world = world_factory(population_size=60, seed=9)
        for _ in range(5):
            before = world.clock.now
            world.engine.run_day()
            assert world.clock.now - before == 86400

    def test_jitter_produces_spikier_series(self):
        """The paper's observation: uneven intervals → higher spikes.
        Compare the max/mean ratio of daily JOIN+LEAVE counts."""

        def spikiness(jitter: int, seed: int) -> float:
            world = SimulatedInternet(
                WorldConfig(population_size=4000, seed=seed)
            )
            world.engine.interval_jitter_hours = jitter
            events = world.engine.run_days(40)
            by_day = {}
            for event in events:
                if event.kind in (BehaviorKind.JOIN, BehaviorKind.LEAVE):
                    by_day[event.day] = by_day.get(event.day, 0) + 1
            values = list(by_day.values())
            if not values or sum(values) == 0:
                return 0.0
            return max(values) * len(values) / sum(values)

        jittered = sum(spikiness(10, seed) for seed in (11, 12, 13))
        even = sum(spikiness(0, seed) for seed in (11, 12, 13))
        # Jittered intervals concentrate events into spikes.
        assert jittered >= even * 0.9  # direction, with generous noise margin
