"""Tests for the event engine and the SimulatedInternet composition."""

import pytest

from repro.errors import ConfigurationError
from repro.net.geo import PAPER_VANTAGE_REGIONS
from repro.world import SimulatedInternet, WorldConfig
from repro.world.admin import BehaviorKind


class TestWorldEngine:
    def test_run_day_advances_clock(self, world_factory):
        world = world_factory(population_size=100)
        day_before = world.clock.day
        world.engine.run_day()
        assert world.clock.day == day_before + 1

    def test_events_accumulate(self, world_factory):
        world = world_factory(population_size=800, seed=31)
        world.engine.run_days(10)
        assert world.engine.events == sorted(
            world.engine.events, key=lambda e: e.day
        )

    def test_daily_counts_structure(self, world_factory):
        world = world_factory(population_size=800, seed=32)
        world.engine.run_days(10)
        counts = world.engine.daily_counts()
        for day, per_kind in counts.items():
            assert set(per_kind) == set(BehaviorKind)

    def test_interval_jitter_moves_clock_irregularly(self, world_factory):
        world = world_factory(population_size=50, seed=33)
        world.engine.interval_jitter_hours = 4
        seconds = []
        for _ in range(5):
            before = world.clock.now
            world.engine.run_day()
            seconds.append(world.clock.now - before)
        assert len(set(seconds)) > 1  # 20-30h style variation (§IV-B-3)

    def test_purge_runs_daily(self, world_factory):
        world = world_factory(population_size=200, seed=34)
        cf = world.provider("cloudflare")
        site = next(
            s for s in world.population
            if s.provider is cf
        )
        www = site.www
        site.leave(informed=True)
        assert cf.customer_for(www) is not None
        world.engine.run_days(60)  # past every plan horizon except enterprise
        record = cf.customer_for(www)
        if record is not None:
            from repro.dps.plans import PlanTier
            assert record.plan is PlanTier.ENTERPRISE

    def test_multicdn_sites_flip_cnames(self, world_factory):
        world = world_factory(population_size=2000, seed=35, multicdn_fraction=0.01)
        flagged = [s for s in world.population if s.multicdn]
        if not flagged:
            pytest.skip("no multicdn site drawn at this seed")
        site = flagged[0]
        resolver = world.make_resolver()
        seen = set()
        for _ in range(8):
            resolver.purge_cache()
            result = resolver.resolve(site.www)
            seen.update(str(t).split(".")[-2] for t in result.cname_targets)
            world.engine.run_day()
        assert len(seen) > 1  # provider changes day to day


class TestSimulatedInternet:
    def test_vantage_points_present(self, shared_world):
        for name in PAPER_VANTAGE_REGIONS:
            vp = shared_world.vantage_point(name)
            assert vp.region.name == name
            assert vp.source_ip is not None

    def test_unknown_vantage_point(self, shared_world):
        with pytest.raises(ConfigurationError):
            shared_world.vantage_point("mars")

    def test_unknown_provider(self, shared_world):
        with pytest.raises(ConfigurationError):
            shared_world.provider("notacdn")

    def test_unknown_website(self, shared_world):
        with pytest.raises(ConfigurationError):
            shared_world.website("www.unknown-host.com")

    def test_routeviews_maps_provider_space(self, shared_world):
        cf = shared_world.provider("cloudflare")
        edge_ip = cf.edges[0].ip
        asn = shared_world.routeviews.lookup(edge_ip)
        assert asn in cf.build.as_numbers

    def test_routeviews_maps_hosting_space(self, shared_world):
        site = shared_world.population[0]
        asn = shared_world.routeviews.lookup(site.origin.ip)
        assert shared_world.as_registry.organisation_of(asn).startswith("hostco")

    def test_determinism_same_seed(self):
        a = SimulatedInternet(WorldConfig(population_size=200, seed=77))
        b = SimulatedInternet(WorldConfig(population_size=200, seed=77))
        assert [str(s.apex) for s in a.population] == [str(s.apex) for s in b.population]
        assert {
            p: c for p, c in a.adoption_by_provider().items()
        } == {p: c for p, c in b.adoption_by_provider().items()}

    def test_determinism_events(self):
        def run(seed):
            world = SimulatedInternet(WorldConfig(population_size=300, seed=seed))
            return [
                (e.day, e.website, e.kind.value) for e in world.engine.run_days(15)
            ]
        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_http_client_from_vantage_point(self, shared_world):
        client = shared_world.http_client("tokyo")
        assert client.source_ip == shared_world.vantage_point("tokyo").source_ip

    def test_world_without_multicdn(self):
        world = SimulatedInternet(
            WorldConfig(population_size=100, seed=1), with_multicdn=False
        )
        assert world.multicdn is None
        assert not any(s.multicdn for s in world.population)
