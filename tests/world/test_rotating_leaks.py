"""Tests for multi-homed (round-robin) origins and Table I leak records
at the world level."""

import pytest

from repro.dns.records import RecordType
from repro.dps.portal import ReroutingMethod
from repro.world import SimulatedInternet, WorldConfig


@pytest.fixture
def world(world_factory):
    return world_factory(population_size=400, seed=67, rotating_origin_fraction=0.25)


def _rotating_site(world, unprotected=True):
    for site in world.population:
        if not site.is_rotating or not site.alive or site.multicdn:
            continue
        if unprotected and site.provider is not None:
            continue
        return site
    pytest.skip("no rotating site at this seed")


def _leaky_site(world, dev=True):
    for site in world.population:
        if site.provider is not None or not site.alive or site.multicdn:
            continue
        if dev and site.has_dev_subdomain:
            return site
        if not dev and site.has_mx_leak:
            return site
    pytest.skip("no leaky site at this seed")


class TestRotatingOrigins:
    def test_pool_members_all_serve(self, world):
        site = _rotating_site(world)
        client = world.http_client()
        for ip in site.origin_pool:
            assert client.get(ip, site.www).ok

    def test_public_record_rotates_daily(self, world):
        site = _rotating_site(world)
        resolver = world.make_resolver()
        seen = set()
        for _ in range(2 * len(site.origin_pool)):
            resolver.purge_cache()
            result = resolver.resolve(site.www)
            seen.update(result.addresses)
            world.engine.run_day()
        assert len(seen) > 1
        assert seen <= set(site.origin_pool)

    def test_rotation_stops_while_protected(self, world):
        site = _rotating_site(world)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        resolver = world.make_resolver()
        for _ in range(3):
            world.engine.run_day()
            if site.provider is not cf:  # admin model moved it
                pytest.skip("site changed state during run")
            resolver.purge_cache()
            result = resolver.resolve(site.www)
            assert any(result.addresses[0] in p for p in cf.prefixes)

    def test_stored_record_is_hidden_but_serves(self, world):
        """The Incapsula-profile mechanism: the provider's stored origin
        is usually absent from the day's public answer, yet verifies."""
        site = _rotating_site(world)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        stored = cf.customer_for(site.www).origin_ip
        site.leave(informed=True)
        # Advance to a day where the rotation shows a different member.
        resolver = world.make_resolver()
        for _ in range(len(site.origin_pool) + 1):
            resolver.purge_cache()
            public = resolver.resolve(site.www).addresses
            if stored not in public:
                break
            world.engine.run_day()
        else:
            pytest.skip("rotation never moved off the stored address")
        assert world.http_client().get(stored, site.www).ok  # still serves

    def test_rehost_collapses_pool(self, world):
        site = _rotating_site(world)
        old_pool = list(site.origin_pool)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        site.leave(informed=True, rehost=True)
        assert len(site.origin_pool) == 1
        client = world.http_client()
        for old_ip in old_pool:
            assert client.get(old_ip, site.www) is None

    def test_rotation_at_join_collapses_pool(self, world):
        site = _rotating_site(world)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED, rotate_origin_ip=True)
        assert site.origin_pool == [site.origin.ip]
        # And a later leave/rehost cycle does not crash (regression).
        site.leave(informed=True, rehost=True)

    def test_dead_rotating_site_fully_dark(self, world):
        site = _rotating_site(world)
        pool = list(site.origin_pool)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        site.leave(informed=True, die=True)
        client = world.http_client()
        assert all(client.get(ip, site.www) is None for ip in pool)


class TestLeakRecords:
    def test_dev_record_in_hosting_zone(self, world):
        site = _leaky_site(world, dev=True)
        result = world.make_resolver().resolve(site.apex.child(site.leak_label))
        assert result.ok
        assert site.origin.ip in result.addresses

    def test_mx_chain_resolves_to_origin(self, world):
        site = _leaky_site(world, dev=False)
        resolver = world.make_resolver()
        mx = resolver.resolve(site.apex, RecordType.MX)
        assert mx.ok
        mail_result = resolver.resolve(mx.records[0].target)
        assert site.origin.ip in mail_result.addresses

    def test_ns_join_imports_leak_records(self, world):
        site = _leaky_site(world, dev=True)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        # The dev record now lives in the provider-hosted zone and still
        # resolves to the origin — the Table I subdomain vector.
        result = world.make_resolver().resolve(site.apex.child(site.leak_label))
        assert result.ok
        assert site.origin.ip in result.addresses

    def test_rotation_updates_leak_records(self, world):
        site = _leaky_site(world, dev=True)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED, rotate_origin_ip=True)
        result = world.make_resolver().resolve(site.apex.child(site.leak_label))
        assert result.addresses == [site.origin.ip]

    def test_leak_prevalence_near_config(self, world_factory):
        world = world_factory(population_size=1500, seed=68)
        dev_rate = sum(1 for s in world.population if s.has_dev_subdomain) / 1500
        mx_rate = sum(1 for s in world.population if s.has_mx_leak) / 1500
        assert 0.10 < dev_rate < 0.21   # config 0.15
        assert 0.14 < mx_rate < 0.27    # config 0.20


class TestVerifierStrictness:
    def test_title_only_tolerates_dynamic_meta(self, world_factory):
        from repro.core.htmlverify import HtmlVerifier
        world = world_factory(population_size=300, seed=69)
        site = next(
            s for s in world.population
            if s.dynamic_meta and s.provider is None and s.alive
            and not s.multicdn and not s.firewall_inclined
        )
        cf = world.provider("cloudflare")
        origin_ip = site.origin.ip
        site.join(cf, ReroutingMethod.NS_BASED)
        edge_ip = cf.customer_for(site.www).edge_ip
        strict = HtmlVerifier(world.http_client("oregon"))
        lax = HtmlVerifier(world.http_client("oregon"), strictness="title-only")
        assert not strict.verify(site.www, edge_ip, origin_ip).verified
        assert lax.verify(site.www, edge_ip, origin_ip).verified

    def test_unknown_strictness_rejected(self, world_factory):
        from repro.core.htmlverify import HtmlVerifier
        world = world_factory(population_size=50, seed=70)
        with pytest.raises(ValueError):
            HtmlVerifier(world.http_client(), strictness="anything-goes")
