"""The kill matrix at test scale: every barrier, both modes, plus the
refusal checks, must pass with byte-identical artifacts."""

from repro.checkpoint import run_kill_matrix

from .conftest import POPULATION, SEED, STUDY_DAYS, small_config


class TestKillMatrix:
    def test_full_matrix_passes(self, tmp_path):
        payload = run_kill_matrix(
            tmp_path,
            population=POPULATION,
            seed=SEED,
            config=small_config(),
        )
        # after-commit crashes at 0..D, before-commit at 1..D.
        assert len(payload["cases"]) == 2 * STUDY_DAYS + 1
        assert all(case["crashed"] for case in payload["cases"])
        failed = [case for case in payload["cases"] if not case["passed"]]
        assert failed == [], failed
        refusal_verdicts = {
            check["check"]: check["passed"] for check in payload["refusals"]
        }
        assert refusal_verdicts == {
            "mismatched-seed": True,
            "mismatched-profile": True,
            "mismatched-traffic": True,
            "mismatched-attacks": True,
            "torn-journal-tail": True,
            "corrupt-snapshot": True,
        }
        assert payload["passed"] is True
        assert payload["reference_hash"]

    def test_matrix_passes_under_an_attack_campaign(self, tmp_path):
        payload = run_kill_matrix(
            tmp_path,
            population=POPULATION,
            seed=SEED,
            config=small_config(),
            attack_profile="skirmish",
        )
        assert payload["attack_profile"] == "skirmish"
        assert all(case["passed"] for case in payload["cases"])
        assert all(check["passed"] for check in payload["refusals"])
        assert payload["passed"] is True
