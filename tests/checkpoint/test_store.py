"""Tests for the checkpoint store: manifest, journal, snapshots."""

import json
import shutil

import pytest

from repro.checkpoint.store import (
    SCHEMA_VERSION,
    CheckpointStore,
    canonical_json,
    content_hash,
)
from repro.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointSchemaError,
)

CONFIG = {"study_days": 3, "warmup_days": 8}


def make_store(directory, seed=11, population=150, config=None, profile=None):
    return CheckpointStore.create(
        directory,
        seed=seed,
        population=population,
        config=config if config is not None else dict(CONFIG),
        fault_profile=profile,
    )


class TestManifest:
    def test_round_trip(self, tmp_path):
        created = make_store(tmp_path / "ckpt", profile="lossy-default")
        opened = CheckpointStore.open(tmp_path / "ckpt")
        assert opened.manifest == created.manifest
        assert opened.manifest_hash == created.manifest_hash
        assert opened.manifest["schema_version"] == SCHEMA_VERSION
        assert opened.manifest["fault_profile"] == "lossy-default"

    def test_create_refuses_existing_directory(self, tmp_path):
        make_store(tmp_path / "ckpt")
        with pytest.raises(CheckpointError, match="already holds a manifest"):
            make_store(tmp_path / "ckpt")

    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint manifest"):
            CheckpointStore.open(tmp_path / "nowhere")

    def test_unsupported_schema_version(self, tmp_path):
        store = make_store(tmp_path / "ckpt")
        manifest = dict(store.manifest, schema_version=SCHEMA_VERSION + 1)
        (tmp_path / "ckpt" / "MANIFEST.json").write_text(canonical_json(manifest))
        with pytest.raises(CheckpointSchemaError, match="schema"):
            CheckpointStore.open(tmp_path / "ckpt")

    def test_garbled_manifest_is_corrupt(self, tmp_path):
        make_store(tmp_path / "ckpt")
        (tmp_path / "ckpt" / "MANIFEST.json").write_text("{not json")
        with pytest.raises(CheckpointCorruptError, match="unreadable"):
            CheckpointStore.open(tmp_path / "ckpt")


class TestVerifyInputs:
    @pytest.fixture
    def store(self, tmp_path):
        return make_store(tmp_path / "ckpt", profile="lossy-default")

    def test_matching_inputs_accepted(self, store):
        store.verify_inputs(
            seed=11, population=150, config=dict(CONFIG), fault_profile="lossy-default"
        )

    @pytest.mark.parametrize(
        "override, needle",
        [
            (dict(seed=12), "seed"),
            (dict(population=151), "population"),
            (dict(config={"study_days": 4, "warmup_days": 8}), "config"),
            (dict(fault_profile=None), "fault_profile"),
        ],
    )
    def test_each_mismatch_refused(self, store, override, needle):
        inputs = dict(
            seed=11, population=150, config=dict(CONFIG), fault_profile="lossy-default"
        )
        inputs.update(override)
        with pytest.raises(CheckpointMismatchError, match=needle):
            store.verify_inputs(**inputs)


class TestJournal:
    def append(self, store, barrier, state=None):
        return store.append_barrier(
            barrier=barrier,
            day=10 + barrier,
            clock_now=(10 + barrier) * 86_400,
            state=state if state is not None else {"barrier": barrier},
        )

    def test_append_and_replay(self, tmp_path):
        store = make_store(tmp_path / "ckpt")
        for barrier in range(3):
            self.append(store, barrier)
        records = store.barriers()
        assert [r["barrier"] for r in records] == [0, 1, 2]
        assert store.latest()["barrier"] == 2
        assert store.load_snapshot(records[1]) == {"barrier": 1}

    def test_out_of_order_append_refused(self, tmp_path):
        store = make_store(tmp_path / "ckpt")
        self.append(store, 0)
        with pytest.raises(CheckpointError, match="out of order"):
            self.append(store, 2)

    def test_empty_journal(self, tmp_path):
        store = make_store(tmp_path / "ckpt")
        assert store.barriers() == []
        assert store.latest() is None

    def test_torn_tail_discarded_not_fatal(self, tmp_path):
        store = make_store(tmp_path / "ckpt")
        self.append(store, 0)
        self.append(store, 1)
        with open(store.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"barrier": 2, "tor')
        records = store.barriers()
        assert [r["barrier"] for r in records] == [0, 1]
        assert store.latest()["barrier"] == 1

    def test_valid_json_with_bad_hash_tail_discarded(self, tmp_path):
        store = make_store(tmp_path / "ckpt")
        self.append(store, 0)
        record = dict(store.latest(), barrier=1, record_hash="0" * 32)
        with open(store.journal_path, "a", encoding="utf-8") as handle:
            handle.write(canonical_json(record) + "\n")
        assert [r["barrier"] for r in store.barriers()] == [0]

    def test_mid_journal_damage_is_corruption(self, tmp_path):
        store = make_store(tmp_path / "ckpt")
        for barrier in range(3):
            self.append(store, barrier)
        lines = store.journal_path.read_text().splitlines()
        lines[1] = lines[1][:-10] + "corrupted}"
        store.journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointCorruptError, match="before the tail"):
            store.barriers()

    def test_foreign_journal_refused(self, tmp_path):
        ours = make_store(tmp_path / "ours")
        theirs = make_store(tmp_path / "theirs", seed=12)
        self.append(theirs, 0)
        shutil.copy(theirs.journal_path, ours.journal_path)
        with pytest.raises(CheckpointMismatchError, match="different manifest"):
            ours.barriers()

    def test_corrupted_snapshot_refused(self, tmp_path):
        store = make_store(tmp_path / "ckpt")
        record = self.append(store, 0, state={"payload": list(range(50))})
        path = tmp_path / "ckpt" / record["snapshot"]
        body = bytearray(path.read_bytes())
        body[len(body) // 2] ^= 0xFF
        path.write_bytes(bytes(body))
        with pytest.raises(CheckpointCorruptError, match="refusing to resume"):
            store.load_snapshot(record)

    def test_missing_snapshot_refused(self, tmp_path):
        store = make_store(tmp_path / "ckpt")
        record = self.append(store, 0)
        (tmp_path / "ckpt" / record["snapshot"]).unlink()
        with pytest.raises(CheckpointCorruptError, match="missing snapshot"):
            store.load_snapshot(record)


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
        assert content_hash({"b": 1, "a": 2}) == content_hash({"a": 2, "b": 1})

    def test_round_trips_through_json(self):
        payload = {"nested": [1, 2, {"x": None}], "flag": True}
        assert json.loads(canonical_json(payload)) == payload
