"""Crash/resume equivalence and refusal-path tests."""

import pytest

from repro.checkpoint import (
    canonical_json,
    resume_study,
    run_checkpointed_study,
    study_artifact,
)
from repro.core.study import SixWeekStudy, StudyConfig
from repro.errors import (
    CheckpointError,
    CheckpointMismatchError,
    ConfigurationError,
    SimulatedCrash,
)
from repro.faults.crash import CrashPlan
from repro.world import SimulatedInternet, WorldConfig

from .conftest import POPULATION, SEED, STUDY_DAYS, small_config


def crash_then_resume(directory, inputs, barrier, mode):
    """Run to a simulated crash at (barrier, mode), then resume."""
    with pytest.raises(SimulatedCrash):
        run_checkpointed_study(
            directory,
            crash_plan=CrashPlan(at_barrier=barrier, mode=mode),
            **inputs,
        )
    return canonical_json(study_artifact(resume_study(directory, **inputs)))


class TestCheckpointedRun:
    def test_matches_plain_study(self, tmp_path, study_inputs, reference_artifact):
        world = SimulatedInternet(
            WorldConfig(population_size=POPULATION, seed=SEED)
        )
        plain = SixWeekStudy(world, small_config()).run()
        assert canonical_json(study_artifact(plain)) == reference_artifact

    def test_commits_every_barrier(self, tmp_path, study_inputs):
        from repro.checkpoint import CheckpointStore

        run_checkpointed_study(tmp_path / "ckpt", **study_inputs)
        records = CheckpointStore.open(tmp_path / "ckpt").barriers()
        assert [r["barrier"] for r in records] == list(range(STUDY_DAYS + 1))
        # Barrier clocks move strictly forward, one day apart.
        clocks = [r["clock_now"] for r in records]
        assert clocks == sorted(set(clocks))


class TestCrashResume:
    def test_after_commit_crash_resumes_identically(
        self, tmp_path, study_inputs, reference_artifact
    ):
        resumed = crash_then_resume(
            tmp_path / "ckpt", study_inputs, barrier=1, mode="after-commit"
        )
        assert resumed == reference_artifact

    def test_before_commit_crash_resumes_identically(
        self, tmp_path, study_inputs, reference_artifact
    ):
        # The journal ends one barrier short: day N-1 reruns on resume.
        resumed = crash_then_resume(
            tmp_path / "ckpt", study_inputs, barrier=2, mode="before-commit"
        )
        assert resumed == reference_artifact

    def test_crash_at_final_barrier_resumes_identically(
        self, tmp_path, study_inputs, reference_artifact
    ):
        resumed = crash_then_resume(
            tmp_path / "ckpt", study_inputs, barrier=STUDY_DAYS, mode="after-commit"
        )
        assert resumed == reference_artifact

    def test_resume_of_finished_run_identical(
        self, tmp_path, study_inputs, reference_artifact
    ):
        run_checkpointed_study(tmp_path / "ckpt", **study_inputs)
        resumed = resume_study(tmp_path / "ckpt", **study_inputs)
        assert canonical_json(study_artifact(resumed)) == reference_artifact

    def test_fault_profile_crash_resume_identical(self, tmp_path):
        inputs = dict(
            population=POPULATION,
            seed=SEED,
            config=small_config(),
            fault_profile="lossy-default",
        )
        reference = canonical_json(
            study_artifact(run_checkpointed_study(tmp_path / "ref", **inputs))
        )
        resumed = crash_then_resume(
            tmp_path / "crash", inputs, barrier=2, mode="after-commit"
        )
        assert resumed == reference


class TestResumeRefusals:
    @pytest.fixture
    def crashed_dir(self, tmp_path, study_inputs):
        with pytest.raises(SimulatedCrash):
            run_checkpointed_study(
                tmp_path / "ckpt",
                crash_plan=CrashPlan(at_barrier=1, mode="after-commit"),
                **study_inputs,
            )
        return tmp_path / "ckpt"

    def test_wrong_seed_refused(self, crashed_dir, study_inputs):
        with pytest.raises(CheckpointMismatchError, match="seed"):
            resume_study(crashed_dir, **dict(study_inputs, seed=SEED + 1))

    def test_wrong_population_refused(self, crashed_dir, study_inputs):
        with pytest.raises(CheckpointMismatchError, match="population"):
            resume_study(
                crashed_dir, **dict(study_inputs, population=POPULATION + 1)
            )

    def test_wrong_config_refused(self, crashed_dir, study_inputs):
        other = StudyConfig(warmup_days=8, study_days=STUDY_DAYS + 1)
        with pytest.raises(CheckpointMismatchError, match="config"):
            resume_study(crashed_dir, **dict(study_inputs, config=other))

    def test_wrong_profile_refused(self, crashed_dir, study_inputs):
        with pytest.raises(CheckpointMismatchError, match="fault_profile"):
            resume_study(
                crashed_dir, **dict(study_inputs, fault_profile="heavy-loss")
            )

    def test_empty_journal_refused(self, tmp_path, study_inputs):
        from repro.checkpoint import CheckpointStore, config_to_dict

        CheckpointStore.create(
            tmp_path / "ckpt",
            seed=SEED,
            population=POPULATION,
            config=config_to_dict(study_inputs["config"]),
            fault_profile=None,
        )
        with pytest.raises(CheckpointError, match="no committed barriers"):
            resume_study(tmp_path / "ckpt", **study_inputs)


class TestCrashPlan:
    def test_modes_validated(self):
        with pytest.raises(ConfigurationError, match="unknown crash mode"):
            CrashPlan(at_barrier=1, mode="sideways")

    def test_negative_barrier_refused(self):
        with pytest.raises(ConfigurationError, match="at_barrier"):
            CrashPlan(at_barrier=-1)

    def test_before_commit_at_barrier_zero_refused(self):
        with pytest.raises(ConfigurationError, match="barrier 0"):
            CrashPlan(at_barrier=0, mode="before-commit")

    def test_fires_only_at_its_barrier_and_phase(self):
        plan = CrashPlan(at_barrier=2, mode="after-commit")
        plan.fire_if_due(1, "after-commit")
        plan.fire_if_due(2, "before-commit")
        with pytest.raises(SimulatedCrash, match="barrier 2"):
            plan.fire_if_due(2, "after-commit")
