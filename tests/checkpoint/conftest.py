"""Shared fixtures for the checkpoint-plane tests.

Everything runs at a deliberately tiny scale (150 sites, 8 warm-up
days, 3 study days) — enough for the weekly scan block to fire at
barrier 0 and for world dynamics to plant events, small enough that
the whole pack, including the full kill matrix, stays in seconds.
"""

import pytest

from repro.core.study import StudyConfig

POPULATION = 150
SEED = 11
WARMUP_DAYS = 8
STUDY_DAYS = 3


def small_config() -> StudyConfig:
    return StudyConfig(warmup_days=WARMUP_DAYS, study_days=STUDY_DAYS)


@pytest.fixture
def study_inputs():
    """Keyword arguments shared by every checkpointed run in a test."""
    return dict(population=POPULATION, seed=SEED, config=small_config())


@pytest.fixture(scope="session")
def reference_artifact():
    """One uninterrupted checkpointed run's artifact, shared read-only."""
    import tempfile

    from repro.checkpoint import canonical_json, run_checkpointed_study, study_artifact

    report = run_checkpointed_study(
        tempfile.mkdtemp(prefix="repro-ckpt-ref-"),
        population=POPULATION,
        seed=SEED,
        config=small_config(),
    )
    return canonical_json(study_artifact(report))
