"""Tests for the DNS record collector and the A/CNAME/NS matchers."""

import pytest

from repro.core.collector import DnsRecordCollector
from repro.core.matching import ProviderMatcher
from repro.dns.message import Rcode
from repro.dps.catalog import PAPER_PROVIDERS
from repro.dps.plans import PlanTier
from repro.dps.portal import ReroutingMethod


@pytest.fixture
def world(world_factory):
    return world_factory(population_size=60, seed=13)


@pytest.fixture
def matcher(world):
    return ProviderMatcher(world.specs, world.routeviews)


def _unprotected(world):
    return next(
        s for s in world.population if s.provider is None and s.alive and not s.multicdn
    )


class TestCollector:
    def test_snapshot_fields_for_plain_site(self, world):
        site = _unprotected(world)
        collector = DnsRecordCollector(world.make_resolver())
        snapshot = collector.collect([str(site.www)], day=0)
        record = snapshot.get(site.www)
        assert record.resolved
        assert record.a_records == (site.origin.ip,)
        assert record.cnames == ()
        assert any("hostco" in str(t) for t in record.ns_targets)

    def test_snapshot_for_ns_rerouted_site(self, world):
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        collector = DnsRecordCollector(world.make_resolver())
        record = collector.collect([str(site.www)], day=0).get(site.www)
        assert any(record.a_records[0] in p for p in cf.prefixes)
        assert any("ns.cloudflare" in str(t) for t in record.ns_targets)

    def test_snapshot_for_cname_rerouted_site(self, world):
        site = _unprotected(world)
        inc = world.provider("incapsula")
        site.join(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS)
        collector = DnsRecordCollector(world.make_resolver())
        record = collector.collect([str(site.www)], day=0).get(site.www)
        assert any("incapdns" in str(t) for t in record.cnames)

    def test_dead_site_snapshot(self, world):
        site = _unprotected(world)
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        site.leave(die=True)
        collector = DnsRecordCollector(world.make_resolver())
        record = collector.collect([str(site.www)], day=0).get(site.www)
        assert not record.resolved
        assert record.rcode is Rcode.NXDOMAIN

    def test_cache_purged_between_runs(self, world):
        resolver = world.make_resolver()
        collector = DnsRecordCollector(resolver)
        site = _unprotected(world)
        collector.collect([str(site.www)], day=0)
        assert len(resolver.cache) > 0
        # Move the site; a fresh run must see the new address (no stale A).
        new_ip = site.hosting.move_origin(site.origin)
        site.hosting.set_www_a(site.apex, new_ip)
        record = collector.collect([str(site.www)], day=1).get(site.www)
        assert record.a_records == (new_ip,)

    def test_daily_snapshot_len_and_iter(self, world):
        hostnames = [str(s.www) for s in world.population[:10]]
        collector = DnsRecordCollector(world.make_resolver())
        snapshot = collector.collect(hostnames, day=3)
        assert len(snapshot) == 10
        assert all(d.day == 3 for d in snapshot)


class TestAMatching:
    def test_provider_edge_matches(self, world, matcher):
        cf = world.provider("cloudflare")
        assert matcher.a_match(cf.edges[0].ip) == "cloudflare"

    def test_origin_space_does_not_match(self, world, matcher):
        site = world.population[0]
        assert matcher.a_match(site.origin.ip) is None

    def test_a_match_any_first_hit(self, world, matcher):
        cf = world.provider("cloudflare")
        site = world.population[0]
        assert matcher.a_match_any([site.origin.ip, cf.edges[0].ip]) == "cloudflare"

    def test_in_provider_ranges(self, world, matcher):
        inc = world.provider("incapsula")
        assert matcher.in_provider_ranges(inc.edges[0].ip)
        assert not matcher.in_provider_ranges(world.population[0].origin.ip)

    def test_offnet_edge_does_not_a_match(self, world, matcher):
        akamai = world.provider("akamai")
        if not akamai.offnet_edge_ips:
            pytest.skip("no off-net edges allocated")
        assert matcher.a_match(akamai.offnet_edge_ips[0]) is None


class TestCnameMatching:
    @pytest.mark.parametrize(
        "target,expected",
        [
            ("abc123.incapdns.net", "incapsula"),
            ("x.cloudflare.com", "cloudflare"),
            ("site.edgekey.net", "akamai"),
            ("d111.cloudfront.net", "cloudfront"),
            ("a.llnwd.net", "limelight"),
            ("cdn.hwcdn.net", "stackpath"),
            ("www.example.com", None),
            ("plain.net", None),
        ],
    )
    def test_substring_rules(self, matcher, target, expected):
        assert matcher.cname_match(target) == expected

    def test_single_label_name_no_match(self, matcher):
        assert matcher.cname_match("com") is None

    def test_cname_match_any_chain(self, matcher):
        chain = ["intermediate.example.net", "abc.incapdns.net"]
        assert matcher.cname_match_any(chain) == "incapsula"


class TestNsMatching:
    def test_cloudflare_ns(self, matcher):
        assert matcher.ns_match("kate.ns.cloudflare.com") == "cloudflare"

    def test_hosting_ns_no_match(self, matcher):
        assert matcher.ns_match("ns1.hostco1.net") is None

    def test_ns_match_any(self, matcher):
        assert (
            matcher.ns_match_any(["ns1.hostco1.net", "bob.ns.cloudflare.com"])
            == "cloudflare"
        )

    def test_substring_in_any_label(self, matcher):
        # "akam" appears as a label substring (Table II row for Akamai).
        assert matcher.ns_match("a1-2.akam.net") == "akamai"
