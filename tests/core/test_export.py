"""Tests for study-report JSON export."""

import json

import pytest

from repro.core.export import load_report_dict, report_to_dict, save_report
from repro.core.study import SixWeekStudy, StudyConfig
from repro.world import SimulatedInternet, WorldConfig


@pytest.fixture(scope="module")
def small_report():
    world = SimulatedInternet(WorldConfig(population_size=300, seed=83))
    config = StudyConfig(warmup_days=20, study_days=8)
    return SixWeekStudy(world, config).run()


class TestExport:
    def test_dict_is_json_serialisable(self, small_report):
        payload = report_to_dict(small_report)
        text = json.dumps(payload)  # must not raise
        assert json.loads(text) == payload

    def test_key_artifacts_present(self, small_report):
        payload = report_to_dict(small_report)
        for key in ("fig2", "fig3", "fig5", "fig6", "fig7", "table5",
                    "table6", "fig9"):
            assert key in payload, key
        assert payload["schema_version"] == 3
        assert payload["attacks"] is None
        assert payload["population_size"] == 300

    def test_fig3_includes_ground_truth(self, small_report):
        payload = report_to_dict(small_report)
        assert set(payload["fig3"]["behavior_averages"]) == {
            "JOIN", "LEAVE", "PAUSE", "RESUME", "SWITCH",
        }
        assert set(payload["fig3"]["ground_truth_averages"]) <= {
            "JOIN", "LEAVE", "PAUSE", "RESUME", "SWITCH",
        }

    def test_table6_totals_match_report(self, small_report):
        payload = report_to_dict(small_report)
        assert payload["table6"]["cloudflare_totals"] == small_report.cloudflare_totals

    def test_round_trip_through_disk(self, small_report, tmp_path):
        path = save_report(small_report, tmp_path / "report.json")
        loaded = load_report_dict(path)
        assert loaded == report_to_dict(small_report)

    def test_weekly_scan_rows(self, small_report):
        payload = report_to_dict(small_report)
        weekly = payload["table6"]["cloudflare_weekly"]
        assert len(weekly) == len(small_report.cloudflare_weekly)
        for row in weekly:
            assert row["retrieved"] >= row["hidden"]
