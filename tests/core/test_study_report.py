"""Integration tests for the study orchestrator and report rendering."""

import pytest

from repro.core.report import (
    render_fig2_adoption,
    render_fig3_behaviors,
    render_fig5_pause_cdf,
    render_fig6_cloudflare,
    render_fig7_vantage,
    render_fig9_exposure,
    render_full_report,
    render_table5_ip_unchanged,
    render_table6_residual,
)
from repro.core.study import SixWeekStudy, StudyConfig
from repro.world import SimulatedInternet, WorldConfig
from repro.world.admin import BehaviorKind


@pytest.fixture(scope="module")
def study_result():
    world = SimulatedInternet(WorldConfig(population_size=900, seed=47))
    config = StudyConfig(warmup_days=35, study_days=15, scan_every_days=7)
    report = SixWeekStudy(world, config).run()
    return world, report


class TestStudyRun:
    def test_daily_series_lengths(self, study_result):
        _, report = study_result
        assert len(report.snapshots) == 15
        assert len(report.observations) == 15

    def test_adoption_rate_near_paper(self, study_result):
        _, report = study_result
        assert 0.10 < report.overall_adoption_rate < 0.20

    def test_top_sites_adopt_more(self, study_result):
        _, report = study_result
        assert report.top_sites_adoption_rate > report.overall_adoption_rate

    def test_cloudflare_dominates(self, study_result):
        _, report = study_result
        assert max(
            report.adoption_by_provider, key=report.adoption_by_provider.get
        ) == "cloudflare"

    def test_cloudflare_rerouting_split(self, study_result):
        _, report = study_result
        assert report.cloudflare_ns_share > report.cloudflare_cname_share
        assert report.cloudflare_ns_share + report.cloudflare_cname_share == pytest.approx(1.0)

    def test_weekly_scans_ran(self, study_result):
        _, report = study_result
        assert len(report.cloudflare_weekly) == 3  # days 0, 7, 14
        assert len(report.incapsula_weekly) == 3

    def test_nameservers_harvested(self, study_result):
        _, report = study_result
        assert report.harvested_nameservers > 0

    def test_scan_spread_over_five_pops(self, study_result):
        _, report = study_result
        assert len(report.scan_pop_query_counts) == 5

    def test_ip_change_collected(self, study_result):
        _, report = study_result
        assert report.ip_change is not None

    def test_ground_truth_events_windowed(self, study_result):
        world, report = study_result
        study_start = 35
        assert all(e.day >= study_start for e in report.ground_truth_events)

    def test_measured_behaviors_match_ground_truth_totals(self, study_result):
        """Measurement recovers planted dynamics (within detection limits:
        the final day's events are never observed)."""
        _, report = study_result
        measured = {kind: 0 for kind in BehaviorKind}
        for behavior in report.behaviors:
            measured[behavior.kind] += 1
        truth = {kind: 0 for kind in BehaviorKind}
        observable = {e.day for e in report.ground_truth_events}
        last_day = 35 + 15 - 1
        for event in report.ground_truth_events:
            if event.day < last_day:
                truth[event.kind] += 1
        for kind in (BehaviorKind.JOIN, BehaviorKind.LEAVE):
            assert abs(measured[kind] - truth[kind]) <= max(2, truth[kind] * 0.5)

    def test_exposure_summary_present(self, study_result):
        _, report = study_result
        assert report.cloudflare_exposure is not None
        assert report.cloudflare_exposure.weeks == 3

    def test_usage_dynamics_can_be_disabled(self):
        world = SimulatedInternet(WorldConfig(population_size=150, seed=48))
        config = StudyConfig(
            warmup_days=2, study_days=3, run_usage_dynamics=False,
            run_residual_scans=False,
        )
        report = SixWeekStudy(world, config).run()
        assert report.behaviors == []
        assert report.cloudflare_weekly == []
        assert report.ip_change is None


class TestReportRendering:
    @pytest.mark.parametrize(
        "renderer,needle",
        [
            (render_fig2_adoption, "Fig. 2"),
            (render_fig3_behaviors, "Fig. 3"),
            (render_fig5_pause_cdf, "Fig. 5"),
            (render_fig6_cloudflare, "Fig. 6"),
            (render_fig7_vantage, "Fig. 7"),
            (render_table5_ip_unchanged, "Table V"),
            (render_table6_residual, "Table VI"),
            (render_fig9_exposure, "Fig. 9"),
        ],
    )
    def test_each_renderer(self, study_result, renderer, needle):
        _, report = study_result
        text = renderer(report)
        assert needle in text

    def test_full_report_contains_everything(self, study_result):
        _, report = study_result
        text = render_full_report(report)
        for needle in ("Fig. 2", "Fig. 3", "Fig. 5", "Fig. 6", "Fig. 7",
                       "Table V", "Table VI", "Fig. 9"):
            assert needle in text

    def test_table6_mentions_both_providers(self, study_result):
        _, report = study_result
        text = render_table6_residual(report)
        assert "cloudflare TOTAL" in text
        assert "incapsula TOTAL" in text
