"""Tests for exposure timelines (Fig. 9) and the purge probe (§V-A-3)."""

import pytest

from repro.core.exposure import ExposureTimeline
from repro.core.purge_probe import PurgeProbe
from repro.dps.plans import PlanTier
from repro.world import SimulatedInternet, WorldConfig


class TestExposureTimeline:
    def _timeline(self, weeks):
        timeline = ExposureTimeline()
        for week in weeks:
            timeline.record_week(week)
        return timeline

    def test_all_websites_union(self):
        timeline = self._timeline([{"a", "b"}, {"b", "c"}])
        assert timeline.all_websites() == {"a", "b", "c"}

    def test_always_exposed_intersection(self):
        timeline = self._timeline([{"a", "b"}, {"a", "c"}, {"a"}])
        assert timeline.always_exposed() == {"a"}

    def test_always_exposed_empty_timeline(self):
        assert ExposureTimeline().always_exposed() == set()

    def test_newly_exposed_per_week(self):
        timeline = self._timeline([{"a"}, {"a", "b"}, {"c"}])
        new = timeline.newly_exposed()
        assert new[0] == {"a"}
        assert new[1] == {"b"}
        assert new[2] == {"c"}

    def test_bounded_exposures(self):
        # "b" appears week 1 and disappears after week 1 → bounded.
        timeline = self._timeline([{"a"}, {"a", "b"}, {"a"}])
        assert timeline.bounded_exposures() == {"b"}

    def test_edge_sites_not_bounded(self):
        # Present in week 0 (left-censored) or the last week
        # (right-censored) → not bounded.
        timeline = self._timeline([{"a"}, {"a", "c"}, {"c"}])
        assert timeline.bounded_exposures() == set()

    def test_exposure_spans(self):
        timeline = self._timeline([{"a"}, {"b"}, {"a"}])
        spans = timeline.exposure_spans()
        assert spans["a"] == 3  # first..last inclusive, gaps included
        assert spans["b"] == 1

    def test_summary(self):
        timeline = self._timeline([{"a"}, {"a", "b"}, {"a"}])
        summary = timeline.summary()
        assert summary.weeks == 3
        assert summary.total_distinct == 2
        assert summary.always_exposed == 1
        assert summary.bounded_exposures == 1
        assert summary.new_per_week == {0: 1, 1: 1, 2: 0}
        assert summary.average_new_per_week == pytest.approx(0.5)


@pytest.fixture(scope="module")
def probe_world():
    return SimulatedInternet(WorldConfig(population_size=120, seed=41))


class TestPurgeProbe:
    def test_free_plan_purged_in_fourth_week(self, probe_world):
        """The paper's own-site probe: free-plan records purged at the
        4th week after termination."""
        probe = PurgeProbe(probe_world)
        trial = probe.run_trial(plan=PlanTier.FREE)
        assert trial.purged_in_week == 4
        assert trial.answered_weeks == [1, 2, 3]

    def test_three_trials_consistent(self, probe_world):
        probe = PurgeProbe(probe_world)
        trials = probe.run_trials(count=3, weeks_between=3, plan=PlanTier.FREE)
        assert [t.purged_in_week for t in trials] == [4, 4, 4]

    def test_enterprise_plan_never_purged(self, probe_world):
        probe = PurgeProbe(probe_world, max_weeks=9)
        trial = probe.run_trial(plan=PlanTier.ENTERPRISE)
        assert trial.purged_in_week is None
        assert trial.answered_weeks == list(range(1, 10))

    def test_business_plan_longer_horizon(self, probe_world):
        probe = PurgeProbe(probe_world, max_weeks=12)
        trial = probe.run_trial(plan=PlanTier.BUSINESS)
        assert trial.purged_in_week is not None
        assert trial.purged_in_week > 4  # longer than the free plan
