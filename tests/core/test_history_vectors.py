"""Tests for the passive-DNS database and the Table I attack vectors."""

import pytest

from repro.core.collector import DnsRecordCollector
from repro.core.history import PassiveDnsDb
from repro.core.htmlverify import HtmlVerifier
from repro.core.matching import ProviderMatcher
from repro.core.vectors import OriginExposureScanner
from repro.dps.portal import ReroutingMethod


@pytest.fixture
def world(world_factory):
    return world_factory(population_size=120, seed=61)


@pytest.fixture
def matcher(world):
    return ProviderMatcher(world.specs, world.routeviews)


@pytest.fixture
def scanner(world, matcher):
    return OriginExposureScanner(
        world.make_resolver(), matcher, HtmlVerifier(world.http_client("oregon"))
    )


def _site(world, dev=None, mx=None):
    for site in world.population:
        if site.provider is not None or not site.alive or site.multicdn:
            continue
        if site.dynamic_meta or site.firewall_inclined:
            continue
        if dev is not None and site.has_dev_subdomain != dev:
            continue
        if mx is not None and site.has_mx_leak != mx:
            continue
        return site
    pytest.skip("no matching site at this seed")


def _collect(world, sites, day=0):
    collector = DnsRecordCollector(world.make_resolver())
    return collector.collect([str(s.www) for s in sites], day=day)


class TestPassiveDns:
    def test_observes_resolutions(self, world):
        site = _site(world)
        db = PassiveDnsDb()
        db.observe(_collect(world, [site]))
        [entry] = db.history(site.www)
        assert site.origin.ip in entry.addresses

    def test_deduplicates_unchanged_days(self, world):
        site = _site(world)
        db = PassiveDnsDb()
        db.observe(_collect(world, [site], day=0))
        db.observe(_collect(world, [site], day=1))
        assert len(db.history(site.www)) == 1

    def test_records_change_points(self, world):
        site = _site(world)
        db = PassiveDnsDb()
        db.observe(_collect(world, [site], day=0))
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        db.observe(_collect(world, [site], day=1))
        history = db.history(site.www)
        assert len(history) == 2
        assert history[0].day == 0

    def test_candidate_origins_excludes_provider_space(self, world, matcher):
        site = _site(world)
        db = PassiveDnsDb()
        db.observe(_collect(world, [site], day=0))
        origin_ip = site.origin.ip
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        db.observe(_collect(world, [site], day=1))
        candidates = db.candidate_origins(site.www, matcher)
        assert candidates == [origin_ip]

    def test_before_day_cutoff(self, world, matcher):
        site = _site(world)
        db = PassiveDnsDb()
        db.observe(_collect(world, [site], day=5))
        assert db.candidate_origins(site.www, matcher, before_day=5) == []
        assert db.candidate_origins(site.www, matcher, before_day=6)

    def test_unresolved_sites_not_recorded(self, world):
        db = PassiveDnsDb()
        site = _site(world)
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        site.leave(die=True)
        db.observe(_collect(world, [site]))
        assert db.history(site.www) == []
        assert len(db) == 0


class TestIpHistoryVector:
    def test_pre_dps_history_exposes_unrotated_origin(self, world, matcher, scanner):
        """Table I row 1 + §IV-C-3's point: joining without rotating the
        origin leaves the old address exploitable."""
        site = _site(world)
        db = PassiveDnsDb()
        db.observe(_collect(world, [site], day=0))
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED,
                  rotate_origin_ip=False)
        finding = scanner.ip_history(site.www, db)
        assert finding.exposed
        assert site.origin.ip in finding.verified_origins

    def test_rotation_defeats_ip_history(self, world, scanner):
        site = _site(world)
        db = PassiveDnsDb()
        db.observe(_collect(world, [site], day=0))
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED,
                  rotate_origin_ip=True)
        finding = scanner.ip_history(site.www, db)
        assert not finding.exposed  # the historical address is dead


class TestSubdomainVector:
    def test_dev_subdomain_exposes_origin(self, world, scanner):
        site = _site(world, dev=True)
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        finding = scanner.subdomains(site.www)
        assert finding.exposed
        assert site.origin.ip in finding.verified_origins

    def test_site_without_leak_is_clean(self, world, scanner):
        site = _site(world, dev=False, mx=False)
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        assert not scanner.subdomains(site.www).exposed
        assert not scanner.mx_records(site.www).exposed

    def test_subdomain_survives_cname_rerouting(self, world, scanner):
        # CNAME rerouting only repoints www; the hosting zone keeps dev.
        site = _site(world, dev=True)
        site.join(world.provider("fastly"), ReroutingMethod.CNAME_BASED)
        assert scanner.subdomains(site.www).exposed


class TestMxVector:
    def test_mx_exposes_shared_mail_host(self, world, scanner):
        site = _site(world, mx=True)
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        finding = scanner.mx_records(site.www)
        assert finding.exposed
        assert site.origin.ip in finding.verified_origins


class TestSweep:
    def test_scan_site_runs_all_vectors(self, world, scanner):
        site = _site(world)
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        db = PassiveDnsDb()
        findings = scanner.scan_site(site.www, db)
        assert [f.vector for f in findings] == ["ip-history", "subdomains", "mx-records"]

    def test_exposed_by_any(self, world, scanner):
        site = _site(world, dev=True)
        db = PassiveDnsDb()
        db.observe(_collect(world, [site], day=0))
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        assert scanner.exposed_by_any(site.www, db)

    def test_firewalled_site_resists_all_vectors(self, world, matcher):
        site = next(
            (s for s in world.population
             if s.firewall_inclined and s.provider is None and s.alive
             and not s.multicdn),
            None,
        )
        if site is None:
            pytest.skip("no firewalled site at this seed")
        db = PassiveDnsDb()
        db.observe(_collect(world, [site], day=0))
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        scanner = OriginExposureScanner(
            world.make_resolver(), matcher,
            HtmlVerifier(world.http_client("oregon")),
        )
        # Candidates may be found, but none verify: the firewall drops
        # the direct probes.
        assert not scanner.exposed_by_any(site.www, db)
