"""Tests for Table III status determination and Table IV behaviour
detection, using hand-built snapshots plus live-world checks."""

import pytest

from repro.core.behaviors import BehaviorDetector, MultiCdnFilter
from repro.core.collector import DnsRecordCollector, DomainSnapshot
from repro.core.matching import ProviderMatcher
from repro.core.status import DpsObservation, DpsStatus, StatusDeterminer
from repro.dns.name import DomainName
from repro.dps.plans import PlanTier
from repro.dps.portal import ReroutingMethod
from repro.world.admin import BehaviorKind


@pytest.fixture
def world(world_factory):
    return world_factory(population_size=60, seed=17)


@pytest.fixture
def determiner(world):
    matcher = ProviderMatcher(world.specs, world.routeviews)
    shared = frozenset(
        ip for p in world.providers.values() for ip in p.offnet_edge_ips
    )
    return StatusDeterminer(matcher, shared)


def _observe(world, determiner, site):
    collector = DnsRecordCollector(world.make_resolver())
    snapshot = collector.collect([str(site.www)], day=world.clock.day)
    return determiner.observe(snapshot.get(site.www))


def _unprotected(world):
    return next(
        s for s in world.population if s.provider is None and s.alive and not s.multicdn
    )


class TestStatusDetermination:
    def test_none_for_plain_site(self, world, determiner):
        observation = _observe(world, determiner, _unprotected(world))
        assert observation.status == DpsStatus.NONE
        assert observation.provider is None

    def test_on_for_ns_customer(self, world, determiner):
        site = _unprotected(world)
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        observation = _observe(world, determiner, site)
        assert observation.status == DpsStatus.ON
        assert observation.provider == "cloudflare"
        assert observation.rerouting is ReroutingMethod.NS_BASED

    def test_on_for_cname_customer(self, world, determiner):
        site = _unprotected(world)
        site.join(world.provider("fastly"), ReroutingMethod.CNAME_BASED)
        observation = _observe(world, determiner, site)
        assert observation.status == DpsStatus.ON
        assert observation.provider == "fastly"
        assert observation.rerouting is ReroutingMethod.CNAME_BASED

    def test_off_for_paused_ns_customer(self, world, determiner):
        site = _unprotected(world)
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        site.pause(day=world.clock.day, resume_on_day=None)
        observation = _observe(world, determiner, site)
        assert observation.status == DpsStatus.OFF
        assert observation.provider == "cloudflare"

    def test_off_for_paused_cname_customer(self, world, determiner):
        site = _unprotected(world)
        site.join(world.provider("incapsula"), ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS)
        site.pause(day=world.clock.day, resume_on_day=None)
        observation = _observe(world, determiner, site)
        assert observation.status == DpsStatus.OFF
        assert observation.provider == "incapsula"

    def test_a_based_customer_is_on_with_a_rerouting(self, world, determiner):
        site = _unprotected(world)
        site.join(world.provider("dosarrest"), ReroutingMethod.A_BASED)
        observation = _observe(world, determiner, site)
        assert observation.status == DpsStatus.ON
        assert observation.rerouting is ReroutingMethod.A_BASED

    def test_after_leave_is_none(self, world, determiner):
        site = _unprotected(world)
        site.join(world.provider("cloudflare"), ReroutingMethod.NS_BASED)
        site.leave()
        assert _observe(world, determiner, site).status == DpsStatus.NONE

    def test_shared_edge_correction(self, world, determiner):
        """Footnote 6: off-net Akamai edge + known-IP set → ON."""
        akamai = world.provider("akamai")
        if not akamai.offnet_edge_ips:
            pytest.skip("no off-net edges at this configuration")
        snapshot = DomainSnapshot(
            day=0,
            www=DomainName("www.quirk.com"),
            a_records=(akamai.offnet_edge_ips[0],),
            cnames=(DomainName("site.edgekey.net"),),
            ns_targets=(),
        )
        observation = determiner.observe(snapshot)
        assert observation.status == DpsStatus.ON
        assert observation.provider == "akamai"

    def test_shared_edge_without_correction_reads_off(self, world):
        matcher = ProviderMatcher(world.specs, world.routeviews)
        naive = StatusDeterminer(matcher)  # no shared-IP knowledge
        akamai = world.provider("akamai")
        if not akamai.offnet_edge_ips:
            pytest.skip("no off-net edges at this configuration")
        snapshot = DomainSnapshot(
            day=0,
            www=DomainName("www.quirk.com"),
            a_records=(akamai.offnet_edge_ips[0],),
            cnames=(DomainName("site.edgekey.net"),),
            ns_targets=(),
        )
        assert naive.observe(snapshot).status == DpsStatus.OFF


def _obs(www, status, provider=None, day=0):
    return DpsObservation(www=www, day=day, status=status, provider=provider)


class TestBehaviorDetector:
    @pytest.mark.parametrize(
        "prev,curr,expected",
        [
            ((DpsStatus.NONE, None), (DpsStatus.ON, "cloudflare"), [BehaviorKind.JOIN]),
            ((DpsStatus.ON, "cloudflare"), (DpsStatus.NONE, None), [BehaviorKind.LEAVE]),
            ((DpsStatus.OFF, "cloudflare"), (DpsStatus.NONE, None), [BehaviorKind.LEAVE]),
            ((DpsStatus.ON, "cloudflare"), (DpsStatus.OFF, "cloudflare"), [BehaviorKind.PAUSE]),
            ((DpsStatus.OFF, "cloudflare"), (DpsStatus.ON, "cloudflare"), [BehaviorKind.RESUME]),
            ((DpsStatus.ON, "cloudflare"), (DpsStatus.ON, "incapsula"), [BehaviorKind.SWITCH]),
            ((DpsStatus.OFF, "cloudflare"), (DpsStatus.ON, "incapsula"), [BehaviorKind.SWITCH]),
            ((DpsStatus.NONE, None), (DpsStatus.OFF, "cloudflare"),
             [BehaviorKind.JOIN, BehaviorKind.PAUSE]),
            ((DpsStatus.ON, "cloudflare"), (DpsStatus.OFF, "incapsula"),
             [BehaviorKind.SWITCH, BehaviorKind.PAUSE]),
            ((DpsStatus.ON, "cloudflare"), (DpsStatus.ON, "cloudflare"), []),
            ((DpsStatus.NONE, None), (DpsStatus.NONE, None), []),
        ],
    )
    def test_transitions(self, prev, curr, expected):
        detector = BehaviorDetector()
        behaviors = detector.diff_pair(
            {"www.x.com": _obs("www.x.com", *prev)},
            {"www.x.com": _obs("www.x.com", *curr)},
            day=1,
        )
        assert [b.kind for b in behaviors] == expected

    def test_providers_recorded(self):
        detector = BehaviorDetector()
        [behavior] = detector.diff_pair(
            {"w": _obs("w", DpsStatus.ON, "cloudflare")},
            {"w": _obs("w", DpsStatus.ON, "incapsula")},
            day=4,
        )
        assert behavior.from_provider == "cloudflare"
        assert behavior.to_provider == "incapsula"
        assert behavior.day == 4

    def test_excluded_sites_skipped(self):
        detector = BehaviorDetector(excluded=["w"])
        behaviors = detector.diff_pair(
            {"w": _obs("w", DpsStatus.NONE)},
            {"w": _obs("w", DpsStatus.ON, "fastly")},
            day=1,
        )
        assert behaviors == []

    def test_new_site_in_current_day_ignored(self):
        detector = BehaviorDetector()
        behaviors = detector.diff_pair(
            {},
            {"w": _obs("w", DpsStatus.ON, "fastly")},
            day=1,
        )
        assert behaviors == []

    def test_diff_series_day_labels(self):
        detector = BehaviorDetector()
        days = [
            {"w": _obs("w", DpsStatus.NONE)},
            {"w": _obs("w", DpsStatus.ON, "fastly")},
            {"w": _obs("w", DpsStatus.NONE)},
        ]
        behaviors = detector.diff_series(days, first_day=10)
        assert [(b.kind, b.day) for b in behaviors] == [
            (BehaviorKind.JOIN, 10),
            (BehaviorKind.LEAVE, 11),
        ]

    def test_daily_counts_and_averages(self):
        detector = BehaviorDetector()
        days = [
            {"w": _obs("w", DpsStatus.NONE)},
            {"w": _obs("w", DpsStatus.ON, "fastly")},
            {"w": _obs("w", DpsStatus.ON, "fastly")},
        ]
        behaviors = detector.diff_series(days, first_day=1)
        counts = BehaviorDetector.daily_counts(behaviors)
        assert counts[1][BehaviorKind.JOIN] == 1
        averages = BehaviorDetector.average_per_day(behaviors, num_days=2)
        assert averages[BehaviorKind.JOIN] == pytest.approx(0.5)


class TestMultiCdnFilter:
    def _days(self, providers):
        return [
            {"w": _obs("w", DpsStatus.ON, provider, day=i)}
            for i, provider in enumerate(providers)
        ]

    def test_flags_frequent_flippers(self):
        days = self._days(["fastly", "akamai", "fastly", "cloudfront", "akamai"])
        assert MultiCdnFilter(flip_threshold=3).flagged(days) == {"w"}

    def test_single_switch_not_flagged(self):
        days = self._days(["fastly", "akamai", "akamai", "akamai", "akamai"])
        assert MultiCdnFilter(flip_threshold=3).flagged(days) == set()

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            MultiCdnFilter(flip_threshold=0)

    def test_live_multicdn_sites_get_flagged(self, world_factory):
        world = world_factory(population_size=1200, seed=19, multicdn_fraction=0.02)
        flagged_sites = [s for s in world.population if s.multicdn]
        if not flagged_sites:
            pytest.skip("no multicdn site at this seed")
        matcher = ProviderMatcher(world.specs, world.routeviews)
        determiner = StatusDeterminer(matcher)
        collector = DnsRecordCollector(world.make_resolver())
        hostnames = [str(s.www) for s in flagged_sites]
        observation_days = []
        for _ in range(8):
            snapshot = collector.collect(hostnames, world.clock.day)
            observation_days.append(
                {www: determiner.observe(snapshot.get(www)) for www in hostnames}
            )
            world.engine.run_day()
        flagged = MultiCdnFilter(flip_threshold=3).flagged(observation_days)
        assert flagged  # at least one multi-CDN site detected
