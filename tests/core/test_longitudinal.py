"""Tests for the longitudinal adoption-growth harness."""

import pytest

from repro.core.longitudinal import (
    AdoptionPoint,
    LongitudinalStudy,
    predicted_growth_factor,
)
from repro.world import SimulatedInternet, WorldConfig


class TestPrediction:
    def test_grows_with_horizon(self):
        assert predicted_growth_factor(0) == pytest.approx(1.0)
        assert predicted_growth_factor(42) > 1.0
        assert predicted_growth_factor(547) > predicted_growth_factor(42)

    def test_matches_jonker_scale(self):
        # Jonker et al.: 1.24x over ~1.5 years.  The behaviour model's
        # closed form lands in the same regime.
        factor = predicted_growth_factor(547)
        assert 1.10 < factor < 1.35

    def test_paper_six_week_growth(self):
        # The paper's own +1.17% over six weeks.
        factor = predicted_growth_factor(42)
        assert 1.005 < factor < 1.03


class TestMeasurement:
    @pytest.fixture(scope="class")
    def trajectory(self):
        world = SimulatedInternet(WorldConfig(population_size=2500, seed=113))
        study = LongitudinalStudy(world, sample_every_days=28)
        return study.run(total_days=112)  # 16 weeks

    def test_point_structure(self, trajectory):
        assert len(trajectory) == 5  # day 0 + 4 samples
        assert trajectory[0].day == 0
        assert all(p.population == 2500 for p in trajectory)
        days = [p.day for p in trajectory]
        assert days == sorted(days)

    def test_growth_direction(self, trajectory):
        factor = LongitudinalStudy.growth_factor(trajectory)
        # Net inflow is planted; over 16 weeks at n=2500 the signal is
        # small but the direction must not invert badly.
        assert factor > 0.93

    def test_growth_magnitude_vs_prediction(self, trajectory):
        measured = LongitudinalStudy.growth_factor(trajectory)
        predicted = predicted_growth_factor(112)
        # Poisson noise on ~370 adopters over 112 days: allow a generous
        # band around the closed form.
        assert abs(measured - predicted) < 0.12

    def test_rate_property(self):
        point = AdoptionPoint(day=0, adopted=150, population=1000)
        assert point.rate == pytest.approx(0.15)
        assert AdoptionPoint(day=0, adopted=0, population=0).rate == 0.0

    def test_invalid_interval(self):
        world = SimulatedInternet(WorldConfig(population_size=60, seed=1))
        with pytest.raises(ValueError):
            LongitudinalStudy(world, sample_every_days=0)

    def test_growth_factor_degenerate(self):
        assert LongitudinalStudy.growth_factor([]) == 1.0
        single = [AdoptionPoint(0, 10, 100)]
        assert LongitudinalStudy.growth_factor(single) == 1.0
