"""Tests for the calibration-statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.stats import (
    CalibrationCheck,
    count_zscore,
    ks_distance,
    poisson_interval,
    proportion_zscore,
    wilson_interval,
)


class TestWilson:
    def test_symmetric_at_half(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert abs((0.5 - low) - (high - 0.5)) < 1e-9

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_extremes_stay_in_unit_interval(self):
        low, high = wilson_interval(0, 10)
        assert low == 0.0 and high < 0.5
        low, high = wilson_interval(10, 10)
        assert high == 1.0 and low > 0.5

    def test_narrows_with_more_trials(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    @given(st.integers(0, 200), st.integers(0, 200))
    def test_contains_point_estimate(self, successes, extra):
        trials = successes + extra
        if trials == 0:
            return
        low, high = wilson_interval(successes, trials)
        assert low <= successes / trials <= high


class TestPoisson:
    def test_zero_count(self):
        low, high = poisson_interval(0)
        assert low == 0.0 and high > 0

    def test_contains_count(self):
        for count in (1, 5, 50, 500):
            low, high = poisson_interval(count)
            assert low <= count <= high

    def test_relative_width_shrinks(self):
        def rel_width(count):
            low, high = poisson_interval(count)
            return (high - low) / count
        assert rel_width(400) < rel_width(16)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            poisson_interval(-1)


class TestZscores:
    def test_count_zscore_zero_at_expectation(self):
        assert count_zscore(25, 25.0) == 0.0

    def test_count_zscore_scale(self):
        assert count_zscore(30, 25.0) == pytest.approx(1.0)

    def test_count_zscore_zero_expectation(self):
        assert count_zscore(0, 0.0) == 0.0
        assert math.isinf(count_zscore(1, 0.0))

    def test_proportion_zscore_sign(self):
        assert proportion_zscore(70, 100, 0.5) > 0
        assert proportion_zscore(30, 100, 0.5) < 0
        assert proportion_zscore(50, 100, 0.5) == pytest.approx(0.0)

    def test_proportion_zscore_empty(self):
        assert proportion_zscore(0, 0, 0.5) == 0.0


class TestKsDistance:
    def test_identical_samples(self):
        assert ks_distance([1, 2, 3], [1, 2, 3]) == pytest.approx(0.0)

    def test_disjoint_samples(self):
        assert ks_distance([1, 2, 3], [10, 11, 12]) == pytest.approx(1.0)

    def test_empty_sample(self):
        assert ks_distance([], [1, 2]) == 0.0

    def test_symmetry(self):
        a, b = [1, 2, 2, 5], [2, 3, 4]
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    @given(
        st.lists(st.integers(0, 20), min_size=1, max_size=30),
        st.lists(st.integers(0, 20), min_size=1, max_size=30),
    )
    def test_bounded_zero_one(self, a, b):
        d = ks_distance(a, b)
        assert 0.0 <= d <= 1.0

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=30))
    def test_self_distance_zero(self, a):
        assert ks_distance(a, a) == pytest.approx(0.0)


class TestCalibrationCheck:
    def test_within_noise(self):
        assert CalibrationCheck("x", 1.0, 1.1, zscore=1.5).within_noise
        assert not CalibrationCheck("x", 1.0, 3.0, zscore=4.2).within_noise
