"""Tests for the usage FSM (Fig. 4) and the pause analysis (Fig. 5)."""

import pytest

from repro.core.behaviors import BehaviorDetector, MeasuredBehavior
from repro.core.fsm import DpsUsageFsm, FsmState
from repro.core.pause import PauseAnalyzer, empirical_cdf
from repro.core.status import DpsObservation, DpsStatus
from repro.errors import MeasurementError
from repro.world.admin import BehaviorKind


def _obs(status, provider=None, www="w", day=0):
    return DpsObservation(www=www, day=day, status=status, provider=provider)


class TestFsmStates:
    def test_none_state_has_no_provider(self):
        with pytest.raises(MeasurementError):
            FsmState(DpsStatus.NONE, "P1")

    def test_on_state_requires_provider(self):
        with pytest.raises(MeasurementError):
            FsmState(DpsStatus.ON, None)

    def test_state_of_observation(self):
        assert DpsUsageFsm.state_of(_obs(DpsStatus.NONE)) == FsmState(DpsStatus.NONE, None)
        assert DpsUsageFsm.state_of(_obs(DpsStatus.ON, "cf")) == FsmState(DpsStatus.ON, "P1")


class TestFsmClassification:
    @pytest.mark.parametrize(
        "prev,curr,label",
        [
            ((DpsStatus.NONE, None), (DpsStatus.ON, "a"), (BehaviorKind.JOIN,)),
            ((DpsStatus.NONE, None), (DpsStatus.OFF, "a"),
             (BehaviorKind.JOIN, BehaviorKind.PAUSE)),
            ((DpsStatus.ON, "a"), (DpsStatus.NONE, None), (BehaviorKind.LEAVE,)),
            ((DpsStatus.ON, "a"), (DpsStatus.OFF, "a"), (BehaviorKind.PAUSE,)),
            ((DpsStatus.OFF, "a"), (DpsStatus.ON, "a"), (BehaviorKind.RESUME,)),
            ((DpsStatus.ON, "a"), (DpsStatus.ON, "b"), (BehaviorKind.SWITCH,)),
            ((DpsStatus.ON, "a"), (DpsStatus.OFF, "b"),
             (BehaviorKind.SWITCH, BehaviorKind.PAUSE)),
            ((DpsStatus.ON, "a"), (DpsStatus.ON, "a"), ()),
        ],
    )
    def test_edge_labels(self, prev, curr, label):
        assert DpsUsageFsm.classify(_obs(*prev), _obs(*curr)) == label

    def test_fsm_agrees_with_detector(self):
        """Every detector output must match the FSM edge label."""
        statuses = [
            (DpsStatus.NONE, None),
            (DpsStatus.ON, "a"), (DpsStatus.OFF, "a"),
            (DpsStatus.ON, "b"), (DpsStatus.OFF, "b"),
        ]
        detector = BehaviorDetector()
        for prev in statuses:
            for curr in statuses:
                prev_obs, curr_obs = _obs(*prev), _obs(*curr)
                measured = detector.diff_pair(
                    {"w": prev_obs}, {"w": curr_obs}, day=1
                )
                assert tuple(b.kind for b in measured) == DpsUsageFsm.classify(
                    prev_obs, curr_obs
                )

    def test_validate_sequence(self):
        sequence = [
            _obs(DpsStatus.NONE, day=0),
            _obs(DpsStatus.ON, "a", day=1),
            _obs(DpsStatus.OFF, "a", day=2),
            _obs(DpsStatus.ON, "a", day=3),
            _obs(DpsStatus.NONE, day=4),
        ]
        labels = DpsUsageFsm.validate_sequence(sequence)
        assert labels == [
            (BehaviorKind.JOIN,),
            (BehaviorKind.PAUSE,),
            (BehaviorKind.RESUME,),
            (BehaviorKind.LEAVE,),
        ]

    def test_validate_sequence_rejects_mixed_sites(self):
        with pytest.raises(MeasurementError):
            DpsUsageFsm.validate_sequence(
                [_obs(DpsStatus.NONE, www="a"), _obs(DpsStatus.NONE, www="b")]
            )


def _behavior(kind, day, www="w", from_provider=None, to_provider=None):
    return MeasuredBehavior(
        day=day, www=www, kind=kind,
        from_provider=from_provider, to_provider=to_provider,
    )


class TestPauseAnalyzer:
    def test_pairs_pause_with_next_resume(self):
        behaviors = [
            _behavior(BehaviorKind.PAUSE, 3, from_provider="cloudflare"),
            _behavior(BehaviorKind.RESUME, 8, to_provider="cloudflare"),
        ]
        [window] = PauseAnalyzer().windows(behaviors)
        assert window.duration_days == 5
        assert window.same_provider

    def test_unpaired_pause_produces_no_window(self):
        behaviors = [_behavior(BehaviorKind.PAUSE, 3, from_provider="cloudflare")]
        assert PauseAnalyzer().windows(behaviors) == []

    def test_multiple_windows_per_site(self):
        behaviors = [
            _behavior(BehaviorKind.PAUSE, 1, from_provider="cloudflare"),
            _behavior(BehaviorKind.RESUME, 2, to_provider="cloudflare"),
            _behavior(BehaviorKind.PAUSE, 5, from_provider="cloudflare"),
            _behavior(BehaviorKind.RESUME, 12, to_provider="cloudflare"),
        ]
        windows = PauseAnalyzer().windows(behaviors)
        assert sorted(w.duration_days for w in windows) == [1, 7]

    def test_cross_provider_window_in_overall_only(self):
        behaviors = [
            _behavior(BehaviorKind.PAUSE, 1, from_provider="cloudflare"),
            _behavior(BehaviorKind.RESUME, 4, to_provider="incapsula"),
        ]
        analyzer = PauseAnalyzer()
        assert analyzer.durations(behaviors) == [3]  # overall includes it
        assert analyzer.durations(behaviors, provider="cloudflare") == []
        assert analyzer.durations(behaviors, provider="incapsula") == []

    def test_out_of_order_events_sorted(self):
        behaviors = [
            _behavior(BehaviorKind.RESUME, 9, to_provider="cloudflare"),
            _behavior(BehaviorKind.PAUSE, 2, from_provider="cloudflare"),
        ]
        [window] = PauseAnalyzer().windows(behaviors)
        assert window.duration_days == 7

    def test_fraction_longer_than(self):
        durations = [1, 1, 2, 6, 10]
        assert PauseAnalyzer.fraction_longer_than(durations, 5) == pytest.approx(0.4)
        assert PauseAnalyzer.fraction_longer_than([], 5) == 0.0


class TestEmpiricalCdf:
    def test_monotone_and_ends_at_one(self):
        cdf = empirical_cdf([3, 1, 2, 2, 5])
        values = [v for v, _ in cdf]
        fractions = [f for _, f in cdf]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_duplicate_values_collapse(self):
        cdf = empirical_cdf([1, 1, 1])
        assert cdf == [(1, 1.0)]

    def test_empty(self):
        assert empirical_cdf([]) == []

    def test_step_fractions(self):
        cdf = empirical_cdf([1, 2, 3, 4])
        assert cdf == [(1, 0.25), (2, 0.5), (3, 0.75), (4, 1.0)]
