"""Tests for the standalone (definitional) table renderers and the
ground-truth validation renderer."""

import pytest

from repro.core.report import (
    render_ground_truth_validation,
    render_table2_providers,
    render_table3_status,
    render_table4_behaviors,
)
from repro.core.study import SixWeekStudy, StudyConfig
from repro.world import SimulatedInternet, WorldConfig


class TestDefinitionalTables:
    def test_table2_lists_all_eleven_providers(self):
        text = render_table2_providers()
        for name in ("akamai", "cloudflare", "cloudfront", "cdn77",
                     "cdnetworks", "dosarrest", "edgecast", "fastly",
                     "incapsula", "limelight", "stackpath"):
            assert name in text

    def test_table2_substrings_present(self):
        text = render_table2_providers()
        assert "edgekey" in text
        assert "incapdns" in text
        assert "13335" in text

    def test_table3_statuses(self):
        text = render_table3_status()
        for status in ("ON", "OFF", "NONE"):
            assert status in text
        assert "A-matched" in text

    def test_table4_behaviours(self):
        text = render_table4_behaviors()
        for marker in ("JOIN", "LEAVE", "PAUSE", "RESUME", "SWITCH", "NULL"):
            assert marker in text


class TestValidationRenderer:
    @pytest.fixture(scope="class")
    def report(self):
        world = SimulatedInternet(WorldConfig(population_size=300, seed=93))
        return SixWeekStudy(world, StudyConfig(warmup_days=10, study_days=10)).run()

    def test_contains_all_kinds(self, report):
        text = render_ground_truth_validation(report)
        for kind in ("JOIN", "LEAVE", "PAUSE", "RESUME", "SWITCH"):
            assert kind in text

    def test_has_measured_and_planted_columns(self, report):
        text = render_ground_truth_validation(report)
        assert "measured" in text and "planted" in text
