"""Report-layer regressions the sharded-merge audit surfaced.

Three bugs, one test class each:

* the weekly Cloudflare sweep silently dropped a scan week when the
  harvest was *empty* (only the resolve-failure path recorded the skip);
* ``adoption_growth`` stayed ``0.0`` forever when day 0 happened to
  have zero adopters, even if adoption then grew from a later baseline;
* the ground-truth event window included the final run-day's events —
  which no snapshot diff can ever observe — while the daily-average
  divisor assumed ``study_days - 1`` observable days.
"""

import pytest

from repro.core.status import DpsObservation, DpsStatus
from repro.core.study import SixWeekStudy, StudyConfig, StudyReport
from repro.world import SimulatedInternet, WorldConfig
from repro.world.admin import BehaviorEvent, BehaviorKind


def _small_world(**overrides) -> SimulatedInternet:
    defaults = dict(population_size=120, seed=17)
    defaults.update(overrides)
    return SimulatedInternet(WorldConfig(**defaults))


class TestSkippedScanWeekRecording:
    def test_empty_harvest_records_the_skip(self):
        """Scan day with nothing harvested: the week must appear in
        ``skipped_scan_weeks``, not silently vanish from the series."""
        world = _small_world()
        study = SixWeekStudy(
            world, StudyConfig(warmup_days=3, study_days=7)
        )
        runtime = study.begin()
        # No collection has run, so the harvest is empty — the state the
        # first scan day sees when no cloudflare delegation was observed.
        assert len(runtime.harvest) == 0
        study.scan_day(runtime)
        assert runtime.report.skipped_scan_weeks == [0]
        assert runtime.report.cloudflare_weekly == []

    def test_unresolvable_harvest_records_the_skip(self):
        """Harvested names that all fail to resolve are the *other*
        skip path; both must record the week."""
        world = _small_world()
        study = SixWeekStudy(
            world, StudyConfig(warmup_days=3, study_days=7)
        )
        runtime = study.begin()
        runtime.harvest.restore_state(
            ["ns1.no-such-provider.invalid", "ns2.no-such-provider.invalid"]
        )
        assert len(runtime.harvest) == 2
        study.scan_day(runtime)
        assert runtime.report.skipped_scan_weeks == [0]
        assert runtime.report.cloudflare_weekly == []


class TestAdoptionGrowthBaseline:
    def _analyse(self, adopted_per_day):
        """Run ``_analyse_adoption`` over a synthetic adoption series:
        one observation dict per day, ``n`` adopters each."""
        world = _small_world(population_size=40)
        study = SixWeekStudy(world)
        report = StudyReport(
            config=StudyConfig(), population_size=10, scale_factor=1.0
        )
        for day, adopted in enumerate(adopted_per_day):
            observations = {}
            for index in range(5):
                provider = "cloudflare" if index < adopted else None
                status = DpsStatus.ON if provider else DpsStatus.NONE
                observations[f"www.site{index}.test"] = DpsObservation(
                    www=f"www.site{index}.test",
                    day=day,
                    status=status,
                    provider=provider,
                )
            report.observations.append(observations)
        study._analyse_adoption(report)
        return report

    def test_growth_measured_from_first_nonzero_baseline(self):
        report = self._analyse([0, 2, 3])
        assert report.adoption_growth == pytest.approx((3 - 2) / 2)

    def test_growth_is_none_when_nothing_ever_adopted(self):
        report = self._analyse([0, 0, 0])
        assert report.adoption_growth is None

    def test_growth_against_day_zero_when_it_has_adopters(self):
        report = self._analyse([2, 2, 4])
        assert report.adoption_growth == pytest.approx((4 - 2) / 2)


class TestGroundTruthWindow:
    def test_window_pins_both_ends(self):
        """Only events a snapshot diff could observe belong to the
        ground truth: stamped on days ``[start, start + study_days - 1)``
        — warm-up events and final-run-day events are both out."""
        config = StudyConfig(
            warmup_days=4,
            study_days=4,
            run_usage_dynamics=False,
            run_residual_scans=False,
        )
        world = _small_world(population_size=60)
        study = SixWeekStudy(world, config)
        runtime = study.begin()
        start = runtime.study_start_day
        while not runtime.finished:
            study.run_day(runtime)
        # The world sits one day past the study; advance it further to
        # prove post-study dynamics cannot leak in either.
        world.engine.run_day()

        marker = "pinned.example"
        stamped_days = {
            "warmup-last": start - 1,          # before the window
            "first-study-day": start,          # first observable day
            "last-observable": start + config.study_days - 2,
            "final-run-day": start + config.study_days - 1,  # unobservable
            "post-study": start + config.study_days,
        }
        for label, day in stamped_days.items():
            world.engine.events.append(
                BehaviorEvent(
                    day=day,
                    website=f"{label}.{marker}",
                    kind=BehaviorKind.JOIN,
                )
            )
        report = study.finalise(runtime)
        pinned = sorted(
            event.website.split(".")[0]
            for event in report.ground_truth_events
            if event.website.endswith(marker)
        )
        assert pinned == ["first-study-day", "last-observable"]

    def test_window_matches_the_daily_average_divisor(self):
        """The window spans exactly the ``study_days - 1`` observable
        days the average divides by."""
        config = StudyConfig(warmup_days=2, study_days=5)
        start = 7  # arbitrary study start
        window_days = [
            day
            for day in range(start - 2, start + config.study_days + 2)
            if start <= day < start + config.study_days - 1
        ]
        report = StudyReport(
            config=config, population_size=1, scale_factor=1.0
        )
        report.ground_truth_events = [
            BehaviorEvent(day=day, website="w.test", kind=BehaviorKind.LEAVE)
            for day in window_days
        ]
        average = report.ground_truth_daily_average()
        assert len(window_days) == config.study_days - 1
        assert average[BehaviorKind.LEAVE] == pytest.approx(1.0)
