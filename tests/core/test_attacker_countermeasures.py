"""Tests for the attacker model (Fig. 1) and the countermeasures (§VI-B)."""

import pytest

from repro.core.attacker import DdosSimulator, ResidualResolutionAttacker
from repro.core.countermeasures import (
    leave_with_fake_a,
    silent_termination,
    switch_then_rotate,
    track_and_compare,
)
from repro.core.matching import ProviderMatcher
from repro.dps.plans import PlanTier
from repro.dps.portal import ReroutingMethod


@pytest.fixture
def world(world_factory):
    return world_factory(population_size=60, seed=43)


@pytest.fixture
def matcher(world):
    return ProviderMatcher(world.specs, world.routeviews)


def _unprotected(world):
    return next(
        s for s in world.population
        if s.provider is None and s.alive and not s.multicdn
    )


def _switch_away(world, site):
    """Join Cloudflare, then switch to Incapsula; returns the origin IP."""
    cf, inc = world.provider("cloudflare"), world.provider("incapsula")
    site.join(cf, ReroutingMethod.NS_BASED)
    origin_ip = site.origin.ip
    site.switch(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS, informed=True)
    return origin_ip


class TestDiscovery:
    def test_ns_probe_discovers_origin(self, world, matcher):
        site = _unprotected(world)
        origin_ip = _switch_away(world, site)
        cf = world.provider("cloudflare")
        attacker = ResidualResolutionAttacker(world.dns_client("london"), matcher)
        result = attacker.probe_nameservers(
            site.www, cf.customer_fleet.all_addresses()[:10]
        )
        assert result.succeeded
        assert origin_ip in result.candidate_origins

    def test_probe_filters_edge_answers(self, world, matcher):
        # Uninformed departure: provider still answers with its own edge
        # address — the attacker learns nothing.
        site = _unprotected(world)
        cf, inc = world.provider("cloudflare"), world.provider("incapsula")
        site.join(cf, ReroutingMethod.NS_BASED)
        site.switch(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS, informed=False)
        attacker = ResidualResolutionAttacker(world.dns_client("london"), matcher)
        result = attacker.probe_nameservers(
            site.www, cf.customer_fleet.all_addresses()[:10]
        )
        assert not result.succeeded

    def test_probe_respects_max_attempts(self, world, matcher):
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        attacker = ResidualResolutionAttacker(world.dns_client(), matcher)
        result = attacker.probe_nameservers(
            site.www, cf.customer_fleet.all_addresses(), max_attempts=3
        )
        assert result.queried_nameservers == 3

    def test_canonical_probe_after_incapsula_leave(self, world, matcher):
        site = _unprotected(world)
        inc = world.provider("incapsula")
        instructions = inc.onboard(site.www, site.origin.ip, ReroutingMethod.CNAME_BASED)
        site.hosting.set_www_cname(site.apex, instructions.cname)
        site.provider = inc
        site.rerouting = ReroutingMethod.CNAME_BASED
        from repro.world.website import GroundTruthStatus
        site.status = GroundTruthStatus.ON
        origin_ip = site.origin.ip
        site.leave(informed=True)
        attacker = ResidualResolutionAttacker(world.dns_client(), matcher)
        result = attacker.probe_canonical(
            site.www, instructions.cname, world.make_resolver()
        )
        assert result.succeeded
        assert origin_ip in result.candidate_origins


class TestDdosSimulator:
    def test_attack_on_edge_is_absorbed(self, world, matcher):
        """Fig. 1a: malicious traffic rerouted and scrubbed."""
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        edge_ip = cf.customer_for(site.www).edge_ip
        simulator = DdosSimulator(world.providers, matcher)
        outcome = simulator.attack(edge_ip, attack_gbps=800.0)
        assert outcome.path == "scrubbed"
        assert not outcome.attack_succeeded
        assert outcome.origin_availability > 0.9

    def test_attack_on_residual_origin_succeeds(self, world, matcher):
        """Fig. 1b: the discovered origin is attacked directly and the
        new DPS never sees the traffic."""
        site = _unprotected(world)
        origin_ip = _switch_away(world, site)
        simulator = DdosSimulator(world.providers, matcher)
        outcome = simulator.attack(origin_ip, attack_gbps=800.0)
        assert outcome.path == "direct"
        assert outcome.attack_succeeded
        assert outcome.origin_saturated

    def test_full_kill_chain(self, world, matcher):
        """Discovery → direct attack, end to end."""
        site = _unprotected(world)
        _switch_away(world, site)
        cf = world.provider("cloudflare")
        attacker = ResidualResolutionAttacker(world.dns_client("sydney"), matcher)
        discovery = attacker.probe_nameservers(
            site.www, cf.customer_fleet.all_addresses()[:10]
        )
        assert discovery.succeeded
        simulator = DdosSimulator(world.providers, matcher)
        outcome = simulator.attack(discovery.candidate_origins[0], attack_gbps=500.0)
        assert outcome.attack_succeeded

    def test_overwhelming_attack_saturates_even_scrubbers(self, world, matcher):
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        edge_ip = cf.customer_for(site.www).edge_ip
        simulator = DdosSimulator(world.providers, matcher)
        total_capacity = cf.scrubbing.total_capacity_gbps
        outcome = simulator.attack(edge_ip, attack_gbps=total_capacity * 20)
        assert outcome.origin_availability < 1.0


class TestProviderCountermeasures:
    def test_silent_termination_blocks_discovery(self, world, matcher):
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        silent_termination(cf)
        _switch_away(world, site)
        attacker = ResidualResolutionAttacker(world.dns_client(), matcher)
        result = attacker.probe_nameservers(
            site.www, cf.customer_fleet.all_addresses()[:10]
        )
        assert not result.succeeded

    def test_track_and_compare_blocks_moved_customer(self, world, matcher):
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        track_and_compare(cf)
        _switch_away(world, site)  # public resolution now → Incapsula edge
        attacker = ResidualResolutionAttacker(world.dns_client(), matcher)
        result = attacker.probe_nameservers(
            site.www, cf.customer_fleet.all_addresses()[:10]
        )
        assert not result.succeeded

    def test_track_and_compare_preserves_continuity_for_unmoved(self, world):
        """The §VI-B nuance: a leaver still serving from the same origin
        keeps getting answers (service continuity) — no new exposure,
        because the address is public anyway."""
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        track_and_compare(cf)
        site.join(cf, ReroutingMethod.NS_BASED)
        origin_ip = site.origin.ip
        site.leave(informed=True)  # same origin, publicly visible
        client = world.dns_client()
        response = client.query(cf.customer_fleet.all_addresses()[0], site.www)
        assert response.is_answer
        assert response.answers[0].address == origin_ip

    def test_policy_swap_returns_previous(self, world):
        cf = world.provider("cloudflare")
        previous = silent_termination(cf)
        assert previous.name == "answer-with-origin"


class TestCustomerCountermeasures:
    def test_fake_a_record_poisons_residual_answer(self, world, matcher):
        site = _unprotected(world)
        cf, inc = world.provider("cloudflare"), world.provider("incapsula")
        site.join(cf, ReroutingMethod.NS_BASED)
        real_origin = site.origin.ip
        decoy = world.vantage_point("tokyo").source_ip  # any non-origin IP
        # Switch manually with the decoy planted first.
        leave_with_fake_a(site, decoy)
        site.join(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS)
        attacker = ResidualResolutionAttacker(world.dns_client(), matcher)
        result = attacker.probe_nameservers(
            site.www, cf.customer_fleet.all_addresses()[:10]
        )
        # The provider leaks only the decoy, never the real origin.
        assert real_origin not in result.candidate_origins
        if result.candidate_origins:
            assert result.candidate_origins[0] == decoy

    def test_fake_a_requires_membership(self, world):
        site = _unprotected(world)
        with pytest.raises(ValueError):
            leave_with_fake_a(site, "198.18.0.1")

    def test_switch_then_rotate_kills_residual_pointer(self, world, matcher):
        site = _unprotected(world)
        cf, inc = world.provider("cloudflare"), world.provider("incapsula")
        site.join(cf, ReroutingMethod.NS_BASED)
        old_origin = site.origin.ip
        switch_then_rotate(
            site, inc, ReroutingMethod.CNAME_BASED, plan=PlanTier.BUSINESS
        )
        assert site.origin.ip != old_origin
        attacker = ResidualResolutionAttacker(world.dns_client(), matcher)
        result = attacker.probe_nameservers(
            site.www, cf.customer_fleet.all_addresses()[:10]
        )
        # Residual answer points at the dead old address; a direct attack
        # there hits nothing.
        assert site.origin.ip not in result.candidate_origins
        if result.candidate_origins:
            stale = result.candidate_origins[0]
            assert stale == old_origin
            assert world.http_client().get(stale, site.www) is None
