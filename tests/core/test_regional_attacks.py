"""Tests for geographically concentrated attacks (anycast catchment
overload — the Crossfire-style concentration of §VII's related work)."""

import pytest

from repro.core.attacker import DdosSimulator
from repro.core.matching import ProviderMatcher
from repro.dps.portal import ReroutingMethod
from repro.dps.scrubbing import ScrubbingCenter, ScrubbingNetwork
from repro.errors import ConfigurationError
from repro.net.traffic import TrafficFlow


class TestScrubWeighted:
    def _network(self):
        return ScrubbingNetwork(
            [ScrubbingCenter(f"pop-{i}", 100.0) for i in range(10)]
        )

    def test_even_shares_match_distributed(self):
        network = self._network()
        flow = TrafficFlow(legitimate_gbps=10.0, attack_gbps=500.0)
        even = {f"pop-{i}": 0.1 for i in range(10)}
        a = network.scrub_distributed(flow)
        b = network.scrub_weighted(even, flow)
        assert a.saturated == b.saturated
        assert a.origin_bound_gbps == pytest.approx(b.origin_bound_gbps)

    def test_concentration_saturates_below_aggregate_capacity(self):
        """600 Gbps into a 1,000 Gbps network: absorbed when diffused,
        devastating when one PoP catches it all."""
        network = self._network()
        flow = TrafficFlow(legitimate_gbps=10.0, attack_gbps=600.0)
        diffuse = network.scrub_distributed(flow)
        concentrated = network.scrub_weighted({"pop-0": 1.0}, flow)
        assert not diffuse.saturated
        assert concentrated.saturated
        assert concentrated.forwarded.attack_gbps > 0.0

    def test_shares_must_sum_to_one(self):
        network = self._network()
        with pytest.raises(ConfigurationError):
            network.scrub_weighted({"pop-0": 0.4}, TrafficFlow(1.0, 1.0))

    def test_unknown_pop_rejected(self):
        network = self._network()
        with pytest.raises(ConfigurationError):
            network.scrub_weighted({"nowhere": 1.0}, TrafficFlow(1.0, 1.0))


class TestRegionalAttack:
    @pytest.fixture
    def setup(self, world_factory):
        world = world_factory(population_size=120, seed=79)
        site = next(
            s for s in world.population
            if s.provider is None and s.alive and not s.multicdn
        )
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        matcher = ProviderMatcher(world.specs, world.routeviews)
        simulator = DdosSimulator(world.providers, matcher)
        edge_ip = cf.customer_for(site.www).edge_ip
        return world, cf, simulator, edge_ip

    def test_global_botnet_is_absorbed(self, setup):
        world, cf, simulator, edge_ip = setup
        volume = cf.scrubbing.total_capacity_gbps * 0.5
        outcome = simulator.attack(edge_ip, attack_gbps=volume)
        assert not outcome.attack_succeeded

    def test_concentrated_botnet_degrades_service(self, setup):
        """The same volume, from a single-region botnet, overloads one
        catchment centre."""
        world, cf, simulator, edge_ip = setup
        volume = cf.scrubbing.total_capacity_gbps * 0.5
        one_region = [cf.pops[0].region] * 50  # all bots in one metro
        outcome = simulator.attack(edge_ip, attack_gbps=volume,
                                   bot_regions=one_region)
        diffuse = simulator.attack(edge_ip, attack_gbps=volume)
        assert outcome.origin_availability < diffuse.origin_availability
        assert outcome.attack_gbps_reaching_origin > 0.0

    def test_multi_region_botnet_spreads_load(self, setup):
        world, cf, simulator, edge_ip = setup
        volume = cf.scrubbing.total_capacity_gbps * 0.5
        all_regions = [pop.region for pop in cf.pops]
        outcome = simulator.attack(edge_ip, attack_gbps=volume,
                                   bot_regions=all_regions)
        assert not outcome.attack_succeeded

    def test_empty_bot_regions_falls_back_to_diffuse(self, setup):
        world, cf, simulator, edge_ip = setup
        a = simulator.attack(edge_ip, attack_gbps=100.0, bot_regions=[])
        b = simulator.attack(edge_ip, attack_gbps=100.0)
        assert a.origin_availability == pytest.approx(b.origin_availability)
