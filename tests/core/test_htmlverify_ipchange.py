"""Tests for HTML verification and the Table V experiment."""

import pytest

from repro.core.behaviors import MeasuredBehavior
from repro.core.collector import DailySnapshot, DnsRecordCollector, DomainSnapshot
from repro.core.htmlverify import HtmlVerifier
from repro.core.ip_change import IpChangeExperiment
from repro.dns.name import DomainName
from repro.dps.portal import ReroutingMethod
from repro.world.admin import BehaviorKind


@pytest.fixture
def world(world_factory):
    return world_factory(population_size=60, seed=29)


def _unprotected(world, want_dynamic=False, want_firewall=False):
    for site in world.population:
        if site.provider is not None or not site.alive or site.multicdn:
            continue
        if site.dynamic_meta != want_dynamic:
            continue
        if site.firewall_inclined != want_firewall:
            continue
        return site
    pytest.skip("no matching site at this seed")


class TestHtmlVerifier:
    def test_verifies_same_origin_through_edge(self, world):
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        origin_ip = site.origin.ip
        site.join(cf, ReroutingMethod.NS_BASED)
        edge_ip = cf.customer_for(site.www).edge_ip
        verifier = HtmlVerifier(world.http_client("oregon"))
        outcome = verifier.verify(site.www, edge_ip, origin_ip)
        assert outcome.verified
        assert outcome.reason == "match"

    def test_rejects_unrelated_candidate(self, world):
        site = _unprotected(world)
        other = next(
            s for s in world.population
            if s is not site and s.provider is None and s.alive and not s.multicdn
        )
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        edge_ip = cf.customer_for(site.www).edge_ip
        verifier = HtmlVerifier(world.http_client("oregon"))
        outcome = verifier.verify(site.www, edge_ip, other.origin.ip)
        assert not outcome.verified
        assert outcome.reason == "content-mismatch"

    def test_dynamic_meta_is_false_negative(self, world):
        """§IV-C-3: dynamic meta attributes make true origins unverifiable
        — the lower-bound property."""
        site = _unprotected(world, want_dynamic=True)
        cf = world.provider("cloudflare")
        origin_ip = site.origin.ip
        site.join(cf, ReroutingMethod.NS_BASED)
        edge_ip = cf.customer_for(site.www).edge_ip
        verifier = HtmlVerifier(world.http_client("oregon"))
        outcome = verifier.verify(site.www, edge_ip, origin_ip)
        assert not outcome.verified
        assert outcome.reason == "meta-mismatch"

    def test_firewalled_origin_is_false_negative(self, world):
        site = _unprotected(world, want_firewall=True)
        cf = world.provider("cloudflare")
        origin_ip = site.origin.ip
        site.join(cf, ReroutingMethod.NS_BASED)
        edge_ip = cf.customer_for(site.www).edge_ip
        verifier = HtmlVerifier(world.http_client("oregon"))
        outcome = verifier.verify(site.www, edge_ip, origin_ip)
        assert not outcome.verified
        assert outcome.reason == "candidate-unreachable"

    def test_unreachable_reference_fails(self, world):
        site = _unprotected(world)
        verifier = HtmlVerifier(world.http_client("oregon"))
        dark_ip = "198.18.63.254"  # unassigned cloud address
        outcome = verifier.verify(site.www, dark_ip, site.origin.ip)
        assert not outcome.verified
        assert outcome.reason == "reference-fetch-failed"

    def test_attempt_counter(self, world):
        site = _unprotected(world)
        verifier = HtmlVerifier(world.http_client("oregon"))
        verifier.verify(site.www, site.origin.ip, site.origin.ip)
        assert verifier.attempts == 1


class TestIpChangeExperiment:
    def _run_join(self, world, rotate):
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        collector = DnsRecordCollector(world.make_resolver())
        www = str(site.www)
        before = collector.collect([www], day=0)
        site.join(cf, ReroutingMethod.NS_BASED, rotate_origin_ip=rotate)
        after = collector.collect([www], day=1)
        behaviors = [
            MeasuredBehavior(day=1, www=www, kind=BehaviorKind.JOIN, to_provider="cloudflare")
        ]
        verifier = HtmlVerifier(world.http_client("oregon"))
        return IpChangeExperiment(verifier).run(behaviors, [before, after], first_day=0)

    def test_unchanged_ip_detected(self, world):
        result = self._run_join(world, rotate=False)
        row = result.rows["cloudflare"]
        assert row.join_resume == 1
        assert row.unchanged == 1
        assert row.percentage == pytest.approx(1.0)

    def test_rotated_ip_detected_as_changed(self, world):
        result = self._run_join(world, rotate=True)
        row = result.rows["cloudflare"]
        assert row.join_resume == 1
        assert row.unchanged == 0

    def test_switch_events_excluded(self, world):
        behaviors = [
            MeasuredBehavior(
                day=1, www="www.x.com", kind=BehaviorKind.SWITCH,
                from_provider="cloudflare", to_provider="incapsula",
            )
        ]
        verifier = HtmlVerifier(world.http_client("oregon"))
        empty = DailySnapshot(day=0)
        result = IpChangeExperiment(verifier).run(behaviors, [empty])
        assert result.rows == {}

    def test_missing_prior_snapshot_skipped(self, world):
        behaviors = [
            MeasuredBehavior(day=5, www="www.x.com", kind=BehaviorKind.JOIN,
                             to_provider="fastly")
        ]
        verifier = HtmlVerifier(world.http_client("oregon"))
        result = IpChangeExperiment(verifier).run(behaviors, [DailySnapshot(day=5)])
        assert result.total.join_resume == 0

    def test_total_row_aggregates(self, world):
        result = self._run_join(world, rotate=False)
        assert result.total.join_resume == sum(
            row.join_resume for row in result.rows.values()
        )

    def test_percentage_zero_when_empty(self):
        from repro.core.ip_change import IpUnchangedRow
        assert IpUnchangedRow("x").percentage == 0.0
