"""Targeted tests for small public APIs not covered elsewhere."""

import pytest

from repro.core.exposure import ExposureTimeline
from repro.core.history import PassiveDnsDb
from repro.core.report import (
    render_fig5_pause_cdf,
    render_fig9_exposure,
    render_table5_ip_unchanged,
)
from repro.core.study import StudyConfig, StudyReport


def _empty_report() -> StudyReport:
    return StudyReport(
        config=StudyConfig(study_days=5),
        population_size=100,
        scale_factor=10_000.0,
    )


class TestRendererEdgeCases:
    def test_table5_not_collected(self):
        assert "not collected" in render_table5_ip_unchanged(_empty_report())

    def test_fig9_not_collected(self):
        assert "not collected" in render_fig9_exposure(_empty_report())

    def test_fig5_no_pauses(self):
        text = render_fig5_pause_cdf(_empty_report())
        assert "no completed pauses observed" in text

    def test_empty_report_totals(self):
        report = _empty_report()
        assert report.cloudflare_totals == {"hidden": 0, "verified": 0}
        assert report.incapsula_totals == {"hidden": 0, "verified": 0}

    def test_ground_truth_average_empty(self):
        averages = _empty_report().ground_truth_daily_average()
        assert all(value == 0.0 for value in averages.values())


class TestExposureAccessors:
    def test_week_accessor_copies(self):
        timeline = ExposureTimeline()
        timeline.record_week({"a"})
        week = timeline.week(0)
        week.add("b")
        assert timeline.week(0) == {"a"}

    def test_num_weeks(self):
        timeline = ExposureTimeline()
        assert timeline.num_weeks == 0
        timeline.record_week(set())
        assert timeline.num_weeks == 1

    def test_summary_of_empty_timeline(self):
        summary = ExposureTimeline().summary()
        assert summary.total_distinct == 0
        assert summary.average_new_per_week == 0.0


class TestPassiveDnsAccessors:
    def test_first_seen_none_when_empty(self):
        assert PassiveDnsDb().first_seen("www.x.com") is None

    def test_first_seen_returns_oldest(self, world_factory):
        from repro.core.collector import DnsRecordCollector

        world = world_factory(population_size=40, seed=95)
        site = next(
            s for s in world.population if s.alive and not s.multicdn
        )
        db = PassiveDnsDb()
        collector = DnsRecordCollector(world.make_resolver())
        db.observe(collector.collect([str(site.www)], day=3))
        new_ip = site.hosting.move_origin(site.origin)
        site.hosting.set_www_a(site.apex, new_ip)
        db.observe(collector.collect([str(site.www)], day=9))
        first = db.first_seen(site.www)
        assert first is not None and first.day == 3
        assert len(db.history(site.www)) == 2


class TestCliFailurePaths:
    def test_scan_without_customers(self, capsys):
        from repro.cli import main

        # A population too small to produce any Cloudflare NS customer.
        code = main(["scan", "--population", "12", "--seed", "1",
                     "--warmup", "1"])
        out = capsys.readouterr().out
        if code == 1:
            assert "no nameservers harvested" in out
        else:
            assert "hidden=" in out
