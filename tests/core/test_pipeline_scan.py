"""Tests for the Fig. 8 filter pipeline and the §V scanners."""

import pytest

from repro.core.htmlverify import HtmlVerifier
from repro.core.matching import ProviderMatcher
from repro.core.pipeline import FilterPipeline, RetrievedRecord
from repro.core.residual_scan import (
    CloudflareScanner,
    IncapsulaScanner,
    NameserverHarvest,
)
from repro.core.collector import DnsRecordCollector
from repro.dps.plans import PlanTier
from repro.dps.portal import ReroutingMethod
from repro.net.ipaddr import IPv4Address
from repro.rng import SeededRng


@pytest.fixture
def world(world_factory):
    return world_factory(population_size=80, seed=37)


def _unprotected(world):
    for site in world.population:
        if (
            site.provider is None and site.alive and not site.multicdn
            and not site.dynamic_meta and not site.firewall_inclined
        ):
            return site
    pytest.skip("no plain unprotected site")


def _pipeline(world, provider="cloudflare"):
    verifier = HtmlVerifier(world.http_client("oregon"))
    return FilterPipeline(
        world.provider(provider).prefixes, world.make_resolver(), verifier
    )


class TestFilterPipeline:
    def test_active_customer_record_ip_filtered(self, world):
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        record = RetrievedRecord(
            www=str(site.www), provider="cloudflare",
            addresses=(cf.customer_for(site.www).edge_ip,),
        )
        report = _pipeline(world).run([record], "cloudflare", week=0)
        assert report.dropped_ip_filter == 1
        assert report.hidden_count == 0

    def test_publicly_visible_record_a_filtered(self, world):
        # A leaver who stayed at the same origin: the stored record
        # equals the public record → not hidden.
        site = _unprotected(world)
        record = RetrievedRecord(
            www=str(site.www), provider="cloudflare",
            addresses=(site.origin.ip,),
        )
        report = _pipeline(world).run([record], "cloudflare", week=0)
        assert report.dropped_a_filter == 1
        assert report.hidden_count == 0

    def test_switcher_record_is_hidden_and_verified(self, world):
        """The canonical Table VI case."""
        site = _unprotected(world)
        cf, inc = world.provider("cloudflare"), world.provider("incapsula")
        site.join(cf, ReroutingMethod.NS_BASED)
        origin_ip = site.origin.ip
        site.switch(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS)
        record = RetrievedRecord(
            www=str(site.www), provider="cloudflare", addresses=(origin_ip,)
        )
        report = _pipeline(world).run([record], "cloudflare", week=0)
        assert report.hidden_count == 1
        assert report.verified_count == 1
        assert report.verified_fraction == pytest.approx(1.0)

    def test_rehosted_leaver_is_hidden_unverified(self, world):
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        old_origin = site.origin.ip
        site.leave(informed=True, rehost=True)
        record = RetrievedRecord(
            www=str(site.www), provider="cloudflare", addresses=(old_origin,)
        )
        report = _pipeline(world).run([record], "cloudflare", week=0)
        assert report.hidden_count == 1
        assert report.verified_count == 0

    def test_dead_site_record_unverifiable(self, world):
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        old_origin = site.origin.ip
        site.leave(informed=True, die=True)
        record = RetrievedRecord(
            www=str(site.www), provider="cloudflare", addresses=(old_origin,)
        )
        report = _pipeline(world).run([record], "cloudflare", week=0)
        assert report.hidden_count == 1
        [hidden] = report.hidden
        assert hidden.reason == "no-public-resolution"

    def test_stage_counters_sum(self, world):
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        records = [
            RetrievedRecord(str(site.www), "cloudflare", (cf.edges[0].ip,)),
            RetrievedRecord(str(site.www), "cloudflare", (site.origin.ip,)),
        ]
        report = _pipeline(world).run(records, "cloudflare", week=0)
        assert report.retrieved == 2
        assert report.dropped_ip_filter + report.dropped_a_filter + report.hidden_count == 2


class TestDuplicateAddressDedup:
    """Regression: a provider answering with a repeated address must not
    inflate stage counters or emit duplicate hidden records."""

    def test_duplicates_counted_once(self, world):
        site = _unprotected(world)
        cf, inc = world.provider("cloudflare"), world.provider("incapsula")
        site.join(cf, ReroutingMethod.NS_BASED)
        origin_ip = site.origin.ip
        site.switch(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS)
        record = RetrievedRecord(
            www=str(site.www), provider="cloudflare",
            addresses=(origin_ip, origin_ip, origin_ip),
        )
        report = _pipeline(world).run([record], "cloudflare", week=0)
        assert report.retrieved == 1
        assert report.hidden_count == 1
        pairs = [(r.www, r.address) for r in report.hidden]
        assert len(set(pairs)) == len(pairs)

    def test_mixed_duplicates_across_stages(self, world):
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        edge_ip = cf.customer_for(site.www).edge_ip
        record = RetrievedRecord(
            www=str(site.www), provider="cloudflare",
            addresses=(edge_ip, edge_ip, IPv4Address("198.51.100.201")),
        )
        report = _pipeline(world).run([record], "cloudflare", week=0)
        assert report.retrieved == 2
        assert report.dropped_ip_filter == 1
        assert report.hidden_count == 1

    def test_dedup_preserves_first_seen_order(self, world):
        site = _unprotected(world)
        first = IPv4Address("198.51.100.202")
        second = IPv4Address("198.51.100.201")
        record = RetrievedRecord(
            www=str(site.www), provider="cloudflare",
            addresses=(first, second, first, second),
        )
        report = _pipeline(world).run([record], "cloudflare", week=0)
        assert [r.address for r in report.hidden] == [first, second]


class TestNameserverHarvest:
    def test_harvests_cloudflare_ns_names(self, world):
        customers = [
            s for s in world.population
            if s.provider is not None and s.provider.name == "cloudflare"
            and s.rerouting is ReroutingMethod.NS_BASED
        ]
        assert customers, "need at least one NS customer"
        collector = DnsRecordCollector(world.make_resolver())
        snapshot = collector.collect([str(s.www) for s in customers], day=0)
        harvest = NameserverHarvest()
        harvest.ingest([snapshot])
        assert len(harvest) >= 2
        assert all("ns.cloudflare" in str(h) for h in harvest.hostnames)

    def test_ignores_other_nameservers(self, world):
        site = _unprotected(world)
        collector = DnsRecordCollector(world.make_resolver())
        snapshot = collector.collect([str(site.www)], day=0)
        harvest = NameserverHarvest()
        harvest.ingest([snapshot])
        assert len(harvest) == 0

    def test_resolve_addresses(self, world):
        customers = [
            s for s in world.population
            if s.provider is not None and s.provider.name == "cloudflare"
            and s.rerouting is ReroutingMethod.NS_BASED
        ]
        collector = DnsRecordCollector(world.make_resolver())
        snapshot = collector.collect([str(s.www) for s in customers], day=0)
        harvest = NameserverHarvest()
        harvest.ingest([snapshot])
        ips = harvest.resolve_addresses(world.make_resolver())
        assert len(ips) == len(harvest)


class TestCloudflareScanner:
    def _scanner(self, world):
        cf = world.provider("cloudflare")
        ns_ips = cf.customer_fleet.all_addresses()[:5]
        clients = [world.dns_client(r) for r in ("oregon", "london", "tokyo")]
        return CloudflareScanner(ns_ips, clients)

    def test_scan_returns_records_for_known_sites(self, world):
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        scanner = self._scanner(world)
        hostnames = [str(s.www) for s in world.population]
        retrieved = scanner.scan(hostnames)
        assert any(r.www == str(site.www) for r in retrieved)

    def test_non_customers_ignored(self, world):
        scanner = self._scanner(world)
        site = _unprotected(world)
        retrieved = scanner.scan([str(site.www)])
        assert retrieved == []
        assert scanner.queries_ignored == 1

    def test_needs_nameservers_and_clients(self, world):
        with pytest.raises(ValueError):
            CloudflareScanner([], [world.dns_client()])
        with pytest.raises(ValueError):
            CloudflareScanner(["10.0.0.1"], [])

    def test_terminated_customer_scanned_to_origin(self, world):
        site = _unprotected(world)
        cf = world.provider("cloudflare")
        origin_ip = site.origin.ip
        site.join(cf, ReroutingMethod.NS_BASED)
        site.leave(informed=True)
        retrieved = self._scanner(world).scan([str(site.www)])
        assert len(retrieved) == 1
        assert retrieved[0].addresses == (origin_ip,)


class _RecordingClient:
    """Stub vantage client recording which nameserver it was told to query."""

    def __init__(self):
        self.queried = []

    def query(self, server_ip, name, rtype):
        self.queried.append(IPv4Address(server_ip))
        return None


class TestScannerPairingDecorrelation:
    """Regression: when the fleet size divides evenly by the vantage
    count, the old aligned ``index % len`` strides locked each vantage
    point to a fixed nameserver subset (2 of 10 with 5 clients)."""

    @staticmethod
    def _scan(seed, clients=5, nameservers=10, hostnames=100):
        ns_ips = [f"10.9.0.{i + 1}" for i in range(nameservers)]
        vantages = [_RecordingClient() for _ in range(clients)]
        scanner = CloudflareScanner(ns_ips, vantages, rng=SeededRng(seed))
        scanner.scan([f"site{i}.test" for i in range(hostnames)])
        return vantages

    def test_each_vantage_reaches_beyond_aligned_subset(self):
        for vantage in self._scan(seed=99):
            assert len(vantage.queried) == 20  # rotation intact: 100 / 5
            # The old stride gave each vantage exactly 2 distinct
            # nameservers here; independent choice spreads further.
            assert len(set(vantage.queried)) > 2

    def test_pairing_deterministic_for_equal_rng(self):
        first = [v.queried for v in self._scan(seed=7)]
        second = [v.queried for v in self._scan(seed=7)]
        assert first == second

    def test_default_rng_is_deterministic(self):
        ns_ips = [f"10.9.0.{i + 1}" for i in range(4)]
        runs = []
        for _ in range(2):
            vantage = _RecordingClient()
            CloudflareScanner(ns_ips, [vantage]).scan(
                [f"site{i}.test" for i in range(12)]
            )
            runs.append(vantage.queried)
        assert runs[0] == runs[1]


class TestIncapsulaScanner:
    def _with_incap_customer(self, world):
        site = _unprotected(world)
        inc = world.provider("incapsula")
        site.join(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS)
        return site, inc

    def _ingest(self, world, scanner, sites):
        collector = DnsRecordCollector(world.make_resolver())
        snapshot = collector.collect([str(s.www) for s in sites], day=0)
        scanner.ingest([snapshot])

    def test_collects_canonicals_while_active(self, world):
        site, inc = self._with_incap_customer(world)
        matcher = ProviderMatcher(world.specs, world.routeviews)
        scanner = IncapsulaScanner(world.make_resolver(), matcher)
        self._ingest(world, scanner, [site])
        assert len(scanner.known_canonicals) == 1
        assert list(scanner.known_canonicals.values()) == [str(site.www)]

    def test_scan_after_leave_returns_origin(self, world):
        site, inc = self._with_incap_customer(world)
        matcher = ProviderMatcher(world.specs, world.routeviews)
        scanner = IncapsulaScanner(world.make_resolver(), matcher)
        self._ingest(world, scanner, [site])
        origin_ip = site.origin.ip
        site.leave(informed=True)
        retrieved = scanner.scan()
        assert len(retrieved) == 1
        assert retrieved[0].addresses == (origin_ip,)
        assert retrieved[0].www == str(site.www)

    def test_cname_not_collectable_after_leave(self, world):
        """§III-B: canonical names must be harvested while active."""
        site, inc = self._with_incap_customer(world)
        site.leave(informed=True)
        matcher = ProviderMatcher(world.specs, world.routeviews)
        scanner = IncapsulaScanner(world.make_resolver(), matcher)
        self._ingest(world, scanner, [site])
        assert len(scanner.known_canonicals) == 0

    def test_purged_canonical_disappears_from_scan(self, world):
        site, inc = self._with_incap_customer(world)
        matcher = ProviderMatcher(world.specs, world.routeviews)
        scanner = IncapsulaScanner(world.make_resolver(), matcher)
        self._ingest(world, scanner, [site])
        site.leave(informed=True)
        world.clock.advance_days(100)
        inc.purge_expired()
        assert scanner.scan() == []
