"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.NetworkError,
            errors.AddressError,
            errors.AllocationError,
            errors.RoutingError,
            errors.DnsError,
            errors.NameError_,
            errors.ZoneError,
            errors.ResolutionError,
            errors.WebError,
            errors.ConnectionRefused,
            errors.BadGateway,
            errors.DpsError,
            errors.PortalError,
            errors.PlanError,
            errors.SimulationError,
            errors.MeasurementError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_subsystem_bases(self):
        assert issubclass(errors.AddressError, errors.NetworkError)
        assert issubclass(errors.AllocationError, errors.NetworkError)
        assert issubclass(errors.ZoneError, errors.DnsError)
        assert issubclass(errors.ResolutionError, errors.DnsError)
        assert issubclass(errors.PortalError, errors.DpsError)
        assert issubclass(errors.PlanError, errors.DpsError)
        assert issubclass(errors.ConnectionRefused, errors.WebError)

    def test_one_catch_all_at_api_boundary(self):
        with pytest.raises(errors.ReproError):
            raise errors.PortalError("not a customer")

    def test_name_error_does_not_shadow_builtin(self):
        # The trailing underscore keeps Python's NameError intact.
        assert errors.NameError_ is not NameError
        assert not issubclass(errors.NameError_, NameError)
