"""REP070-REP073: the purity decade over declared @pure_function code.

Mirrors ``test_shardrules.py``: every fixture declares the contract the
way real code does (``@pure_function`` on verdict helpers,
``@merge_point`` on combiners), and with no declaration the decade must
be inert.  The seeded-mutation tests stage a copy of the *real*
``traffic/plane.py`` and inject the regression class REP072 exists for:
an ``admit_dns`` that consults module state not passed as a parameter.
"""

import json
import pathlib

import pytest

from repro.analysis import Analyzer
from repro.analysis.cache import ruleset_signature
from repro.analysis.effects import (
    AmbientStateReadRule,
    ImpureMergeHelperRule,
    PureFunctionEffectRule,
    TransitiveImpurityRule,
)
from repro.analysis.findings import Severity
from repro.analysis.sarif import sarif_payload

from .test_graph import write_package
from .test_graphrules import by_rule, lint_package

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
PLANE = REPO_ROOT / "src" / "repro" / "traffic" / "plane.py"

DECADE = ["REP070", "REP071", "REP072", "REP073"]


class TestRuleDecade:
    def test_rule_ids_titles_and_severities(self):
        assert PureFunctionEffectRule.rule_id == "REP070"
        assert TransitiveImpurityRule.rule_id == "REP071"
        assert AmbientStateReadRule.rule_id == "REP072"
        assert ImpureMergeHelperRule.rule_id == "REP073"
        for rule in (
            PureFunctionEffectRule,
            TransitiveImpurityRule,
            AmbientStateReadRule,
            ImpureMergeHelperRule,
        ):
            assert rule.title
            assert rule.severity is Severity.ERROR

    def test_decade_is_inert_without_declarations(self, tmp_path):
        # Every effect in the lattice, but nothing declared pure and no
        # merge point: zero findings.
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/work.py": """
                import random

                LEDGER = []


                def chaos(value):
                    LEDGER.append(random.random())
                    print(value)
                    return LEDGER
            """,
        }, select=DECADE)
        assert findings == []


class TestRep070DirectEffects:
    def test_global_write_is_anchored_at_the_statement(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/verdict.py": """
                from repro.markers import pure_function

                LEDGER = []


                @pure_function
                def decide(value):
                    LEDGER.append(value)
                    return value > 0
            """,
        }, select=DECADE)
        flagged = by_rule(findings, "REP070")
        assert len(flagged) == 1
        assert "writes-global" in flagged[0].message
        assert "decide" in flagged[0].message
        assert "LEDGER" in flagged[0].source

    def test_rng_draw_inside_pure_function(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/verdict.py": """
                import random

                from repro.markers import pure_function


                @pure_function
                def decide(value):
                    return value + random.random() > 1.0
            """,
        }, select=DECADE)
        flagged = by_rule(findings, "REP070")
        assert len(flagged) == 1
        assert "draws-rng" in flagged[0].message

    def test_injected_rng_parameter_is_not_flagged(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/verdict.py": """
                from repro.markers import pure_function


                @pure_function
                def decide(rng, value):
                    return value + rng.uniform(0.0, 1.0) > 1.0
            """,
        }, select=DECADE)
        assert findings == []

    def test_inline_suppression_silences_the_finding(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/verdict.py": """
                from repro.markers import pure_function

                LEDGER = []


                @pure_function
                def decide(value):
                    LEDGER.append(value)  # repro: allow[REP070] -- fixture exception
                    return value > 0
            """,
        }, select=DECADE)
        assert by_rule(findings, "REP070") == []


class TestRep071TransitiveImpurity:
    def test_impure_callee_reported_with_call_chain(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/verdict.py": """
                from repro.markers import pure_function

                LEDGER = []


                def _note(value):
                    LEDGER.append(value)


                def _relay(value):
                    _note(value)


                @pure_function
                def decide(value):
                    _relay(value)
                    return value > 0
            """,
        }, select=DECADE)
        flagged = by_rule(findings, "REP071")
        assert len(flagged) == 1
        message = flagged[0].message
        assert "decide -> " in message and "_note" in message
        assert "writes-global" in message
        # The direct carrier is not declared pure, so REP070 stays quiet.
        assert by_rule(findings, "REP070") == []


class TestRep072AmbientReads:
    def test_direct_read_of_module_state(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/verdict.py": """
                from repro.markers import pure_function

                OVERRIDES = {}


                @pure_function
                def decide(value):
                    return OVERRIDES.get(value, value > 0)
            """,
        }, select=DECADE)
        flagged = by_rule(findings, "REP072")
        assert len(flagged) == 1
        assert "OVERRIDES" in flagged[0].message
        assert "not passed as a parameter" in flagged[0].message

    def test_read_through_a_helper_carries_the_chain(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/verdict.py": """
                from repro.markers import pure_function

                OVERRIDES = {}


                def _consult(value):
                    return OVERRIDES.get(value)


                @pure_function
                def decide(value):
                    return _consult(value) or value > 0
            """,
        }, select=DECADE)
        flagged = by_rule(findings, "REP072")
        assert len(flagged) == 1
        assert "through a helper" in flagged[0].message
        assert "decide -> " in flagged[0].message

    def test_reading_a_frozen_constant_is_clean(self, tmp_path):
        # resolve_global only tracks *mutable* module state; a frozen
        # tuple threshold is configuration, not ambient state.
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/verdict.py": """
                from repro.markers import pure_function

                TIERS = ("normal", "high", "critical")


                @pure_function
                def decide(tier):
                    return TIERS.index(tier)
            """,
        }, select=DECADE)
        assert by_rule(findings, "REP072") == []


class TestRep073MergeHelpers:
    def test_helper_writing_a_global_escapes_the_merge(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/combine.py": """
                from repro.markers import merge_point

                SEEN = []


                def _tally(payload):
                    SEEN.append(payload)
                    return len(SEEN)


                @merge_point
                def merge(payloads):
                    return [_tally(payload) for payload in payloads]
            """,
        }, select=DECADE)
        flagged = by_rule(findings, "REP073")
        assert len(flagged) == 1
        message = flagged[0].message
        assert "merge" in message and "_tally" in message
        assert "escape the merge" in message

    def test_merge_points_own_direct_write_is_not_rep073(self, tmp_path):
        # A merge point mutating a global itself is REP060/REP070
        # territory; REP073 audits only the helpers it calls.
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/combine.py": """
                from repro.markers import merge_point

                SEEN = []


                @merge_point
                def merge(payloads):
                    SEEN.extend(payloads)
                    return list(SEEN)
            """,
        }, select=DECADE)
        assert by_rule(findings, "REP073") == []


class TestSeededMutation:
    """Stage the real admit_dns and inject the REP072 regression class."""

    def stage(self, tmp_path, mutate=None):
        source = PLANE.read_text(encoding="utf-8")
        anchor = "        provider = self._provider_of.get(address)"
        assert anchor in source
        if mutate is not None:
            source = source.replace(
                "from .defense import AdaptiveLimiter",
                "_ADMIT_OVERRIDES = {}\n\nfrom .defense import AdaptiveLimiter",
                1,
            )
            source = source.replace(anchor, mutate + "\n" + anchor, 1)
        staged_pkg = tmp_path / "traffic"
        staged_pkg.mkdir()
        staged = staged_pkg / "plane.py"
        staged.write_text(source, encoding="utf-8")
        return staged, source

    def run(self, tmp_path, staged):
        return Analyzer(root=str(tmp_path), select=DECADE).run([str(staged)])

    def test_unmutated_admit_dns_is_clean(self, tmp_path):
        staged, _ = self.stage(tmp_path)
        assert self.run(tmp_path, staged) == []

    def test_injected_ambient_read_is_rep072_with_witness(self, tmp_path):
        mutation = (
            "        if str(address) in _ADMIT_OVERRIDES:\n"
            "            return _ADMIT_OVERRIDES[str(address)]"
        )
        staged, _ = self.stage(tmp_path, mutate=mutation)
        findings = self.run(tmp_path, staged)
        flagged = by_rule(findings, "REP072")
        assert len(flagged) == 1
        finding = flagged[0]
        assert finding.path == "traffic/plane.py"
        assert "admit_dns" in finding.message
        assert "_ADMIT_OVERRIDES" in finding.message

    def test_injected_global_write_is_rep070_at_the_statement(self, tmp_path):
        mutation = "        _ADMIT_OVERRIDES[str(address)] = region"
        staged, source = self.stage(tmp_path, mutate=mutation)
        findings = self.run(tmp_path, staged)
        flagged = by_rule(findings, "REP070")
        assert len(flagged) == 1
        finding = flagged[0]
        assert "writes-global" in finding.message
        expected_line = source.splitlines().index(mutation.splitlines()[0]) + 1
        assert finding.line == expected_line


FIXTURE = {
    "pkg/__init__.py": "",
    "pkg/verdict.py": """
        from repro.markers import pure_function

        LEDGER = []


        @pure_function
        def decide(value):
            LEDGER.append(value)
            return value > 0
    """,
}


def fingerprints(findings):
    return [(f.rule_id, f.fingerprint, f.line, f.message) for f in findings]


class TestDeterminism:
    def test_warm_cache_run_is_byte_identical(self, tmp_path):
        write_package(tmp_path, FIXTURE)
        cache = str(tmp_path / "cache.json")
        target = [str(tmp_path / "pkg")]
        cold = Analyzer(
            root=str(tmp_path), select=DECADE, cache_path=cache
        ).analyze(target)
        warm = Analyzer(
            root=str(tmp_path), select=DECADE, cache_path=cache
        ).analyze(target)
        assert warm.stats.parsed == 0
        assert fingerprints(warm.findings) == fingerprints(cold.findings)
        # The fixture's LEDGER.append both reads and writes the global.
        assert {f.rule_id for f in warm.findings} == {"REP070", "REP072"}

    def test_parallel_run_is_byte_identical(self, tmp_path):
        write_package(tmp_path, FIXTURE)
        target = [str(tmp_path / "pkg")]
        serial = Analyzer(root=str(tmp_path), select=DECADE).run(target)
        parallel = Analyzer(
            root=str(tmp_path), select=DECADE, jobs=2
        ).run(target)
        assert fingerprints(parallel) == fingerprints(serial)

    def test_pre_rep07x_cache_is_fully_discarded(self, tmp_path):
        # A cache written before the purity decade carries summaries
        # without effect sites; the signature (schema v2 + the 21-rule
        # pack) can never match today's, so the run re-parses fully.
        write_package(tmp_path, FIXTURE)
        cache_path = tmp_path / "cache.json"
        target = [str(tmp_path / "pkg")]
        Analyzer(root=str(tmp_path), cache_path=str(cache_path)).analyze(
            target
        )
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
        pre_decade_rules = [
            rule.rule_id
            for rule in Analyzer(root=str(tmp_path)).rules
            if not rule.rule_id.startswith("REP07")
        ]
        payload["signature"] = ruleset_signature(pre_decade_rules)
        cache_path.write_text(json.dumps(payload), encoding="utf-8")
        result = Analyzer(
            root=str(tmp_path), cache_path=str(cache_path)
        ).analyze(target)
        assert result.stats.cache_hits == 0
        assert result.stats.parsed == 2


class TestSarif:
    def test_rep07x_findings_validate_against_2_1_0_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        write_package(tmp_path, FIXTURE)
        result = Analyzer(root=str(tmp_path), select=DECADE).analyze(
            [str(tmp_path / "pkg")]
        )
        assert result.findings
        payload = sarif_payload(
            result.findings, (), None,
            inline_suppressed=result.inline_suppressed,
            stats=result.stats.to_dict(),
        )
        schema = {
            "type": "object",
            "required": ["version", "runs"],
            "properties": {
                "version": {"const": "2.1.0"},
                "runs": {
                    "type": "array",
                    "minItems": 1,
                    "items": {
                        "type": "object",
                        "required": ["tool", "results"],
                        "properties": {
                            "results": {
                                "type": "array",
                                "items": {
                                    "type": "object",
                                    "required": ["ruleId", "message"],
                                    "properties": {
                                        "message": {
                                            "type": "object",
                                            "required": ["text"],
                                        },
                                        "level": {
                                            "enum": [
                                                "none", "note",
                                                "warning", "error",
                                            ],
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        }
        jsonschema.validate(payload, schema)
        results = payload["runs"][0]["results"]
        assert {r["ruleId"] for r in results} == {"REP070", "REP072"}
        assert all(r["level"] == "error" for r in results)
        rules = payload["runs"][0]["tool"]["driver"]["rules"]
        assert {"REP070", "REP071", "REP072", "REP073"} <= {
            r["id"] for r in rules
        }
