"""SARIF 2.1.0 reporter: structure, suppressions, and schema validity."""

import json
import textwrap

import pytest

from repro.analysis import Analyzer, Baseline, render_sarif
from repro.analysis.sarif import sarif_payload


@pytest.fixture
def run(tmp_path):
    """Lint a two-finding snippet and return (payload, result, baseline)."""
    path = tmp_path / "snippet.py"
    path.write_text(
        textwrap.dedent(
            """
            import random
            import time

            x = time.time()  # repro: allow[REP002] -- fixture exception
            """
        ),
        encoding="utf-8",
    )
    analyzer = Analyzer(
        root=str(tmp_path), select=["REP001", "REP002", "REP050"]
    )
    result = analyzer.analyze([str(path)])
    baseline = Baseline.from_findings(result.findings[:1])
    new, suppressed = baseline.split(result.findings)
    payload = sarif_payload(
        new,
        suppressed,
        baseline,
        inline_suppressed=result.inline_suppressed,
        stats=result.stats.to_dict(),
    )
    return payload, result, baseline


class TestStructure:
    def test_log_shape(self, run):
        payload, _, _ = run
        assert payload["version"] == "2.1.0"
        assert payload["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(payload["runs"]) == 1
        driver = payload["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert "REP001" in rule_ids and "REP040" in rule_ids

    def test_results_carry_location_and_fingerprint(self, run):
        payload, result, _ = run
        results = payload["runs"][0]["results"]
        live = [r for r in results if "suppressions" not in r]
        assert len(live) == 0  # the REP001 finding was baselined
        baselined = [
            r for r in results
            if r.get("suppressions", [{}])[0].get("kind") == "external"
        ]
        assert len(baselined) == 1
        location = baselined[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "snippet.py"
        assert location["region"]["startLine"] >= 1
        assert location["region"]["startColumn"] >= 1
        fingerprints = baselined[0]["partialFingerprints"]
        assert fingerprints["reproLint/v1"] in {
            f.fingerprint for f in result.findings
        }

    def test_inline_suppressions_are_in_source(self, run):
        payload, result, _ = run
        results = payload["runs"][0]["results"]
        in_source = [
            r for r in results
            if r.get("suppressions", [{}])[0].get("kind") == "inSource"
        ]
        assert len(in_source) == len(result.inline_suppressed) == 1

    def test_rule_index_points_at_driver_rules(self, run):
        payload, _, _ = run
        run_obj = payload["runs"][0]
        rules = run_obj["tool"]["driver"]["rules"]
        for result in run_obj["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_cache_stats_ride_in_run_properties(self, run):
        payload, result, _ = run
        stats = payload["runs"][0]["properties"]["cacheStats"]
        assert stats == result.stats.to_dict()
        assert stats["parsed"] == 1
        assert stats["cache_enabled"] is False

    def test_levels_map_severities(self, run):
        payload, _, _ = run
        levels = {r["level"] for r in payload["runs"][0]["results"]}
        assert levels <= {"error", "warning"}

    def test_render_is_valid_json(self, run):
        _, result, baseline = run
        new, suppressed = baseline.split(result.findings)
        text = render_sarif(
            new, suppressed, baseline,
            inline_suppressed=result.inline_suppressed,
            stats=result.stats.to_dict(),
        )
        assert json.loads(text)["version"] == "2.1.0"


class TestSchemaValidation:
    def test_validates_against_sarif_2_1_0_schema(self, run):
        jsonschema = pytest.importorskip("jsonschema")
        payload, _, _ = run
        # The spec's structural core, expressed as JSON Schema: the
        # subset that upload-sarif actually rejects on.  (The full OASIS
        # schema is not vendored; no network in CI.)
        schema = {
            "type": "object",
            "required": ["version", "runs"],
            "properties": {
                "version": {"const": "2.1.0"},
                "runs": {
                    "type": "array",
                    "minItems": 1,
                    "items": {
                        "type": "object",
                        "required": ["tool", "results"],
                        "properties": {
                            "tool": {
                                "type": "object",
                                "required": ["driver"],
                                "properties": {
                                    "driver": {
                                        "type": "object",
                                        "required": ["name"],
                                    },
                                },
                            },
                            "results": {
                                "type": "array",
                                "items": {
                                    "type": "object",
                                    "required": ["message"],
                                    "properties": {
                                        "message": {
                                            "type": "object",
                                            "required": ["text"],
                                        },
                                        "level": {
                                            "enum": [
                                                "none", "note",
                                                "warning", "error",
                                            ],
                                        },
                                        "suppressions": {
                                            "type": "array",
                                            "items": {
                                                "type": "object",
                                                "required": ["kind"],
                                                "properties": {
                                                    "kind": {
                                                        "enum": [
                                                            "inSource",
                                                            "external",
                                                        ],
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        }
        jsonschema.validate(payload, schema)
