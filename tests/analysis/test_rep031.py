"""Tests for REP031 (direct file writes bypassing atomic helpers)."""

from repro.analysis.robustness import DirectStateWriteRule

from .conftest import rule_ids


class TestDirectOpenWrites:
    def test_write_mode_flagged(self, lint):
        findings = lint(
            """
            def save(path, text):
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(text)
            """,
            select=["REP031"],
        )
        assert rule_ids(findings) == ["REP031"]
        assert "atomic_write_text" in findings[0].message

    def test_append_mode_flagged(self, lint):
        findings = lint(
            """
            def log(path, line):
                with open(path, "a") as handle:
                    handle.write(line)
            """,
            select=["REP031"],
        )
        assert rule_ids(findings) == ["REP031"]

    def test_mode_keyword_flagged(self, lint):
        findings = lint(
            """
            def save(path):
                return open(path, mode="w+")
            """,
            select=["REP031"],
        )
        assert rule_ids(findings) == ["REP031"]

    def test_read_modes_ignored(self, lint):
        findings = lint(
            """
            def load(path):
                with open(path, "r", encoding="utf-8") as handle:
                    return handle.read()

            def load_default(path):
                with open(path) as handle:
                    return handle.read()

            def load_bytes(path):
                with open(path, "rb") as handle:
                    return handle.read()
            """,
            select=["REP031"],
        )
        assert findings == []

    def test_os_fdopen_not_confused_with_open(self, lint):
        findings = lint(
            """
            import os

            def inner(fd):
                with os.fdopen(fd, "w") as handle:
                    handle.write("x")
            """,
            select=["REP031"],
        )
        assert findings == []


class TestPathWriters:
    def test_write_text_flagged(self, lint):
        findings = lint(
            """
            def save(target, text):
                target.write_text(text)
            """,
            select=["REP031"],
        )
        assert rule_ids(findings) == ["REP031"]
        assert "write_text" in findings[0].message

    def test_write_bytes_flagged(self, lint):
        findings = lint(
            """
            def save(target, blob):
                target.write_bytes(blob)
            """,
            select=["REP031"],
        )
        assert rule_ids(findings) == ["REP031"]

    def test_read_text_ignored(self, lint):
        findings = lint(
            """
            def load(target):
                return target.read_text()
            """,
            select=["REP031"],
        )
        assert findings == []


class TestSuppression:
    def test_inline_suppression_honoured(self, lint):
        findings = lint(
            """
            def journal(path, line):
                with open(path, "a") as handle:  # repro: allow[REP031] -- sanctioned append
                    handle.write(line)
            """,
            select=["REP031"],
        )
        assert findings == []

    def test_rule_metadata(self):
        assert DirectStateWriteRule.rule_id == "REP031"
        assert "atomic" in DirectStateWriteRule.title
