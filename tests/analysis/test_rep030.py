"""Tests for the robustness rule pack (REP030)."""

from .conftest import rule_ids


class TestUnboundedRetryLoop:
    def test_while_true_around_network_call_flagged(self, lint):
        findings = lint(
            """
            def probe(client, ip, name):
                while True:
                    response = client.query(ip, name)
                    if response is not None:
                        return response
            """,
            select=["REP030"],
        )
        assert rule_ids(findings) == ["REP030"]
        assert "while True" in findings[0].message

    def test_attempt_bound_exempts_loop(self, lint):
        findings = lint(
            """
            def probe(client, ip, name):
                attempt = 0
                while True:
                    attempt += 1
                    if attempt > 4:
                        return None
                    response = client.query(ip, name)
                    if response is not None:
                        return response
            """,
            select=["REP030"],
        )
        assert findings == []

    def test_budget_identifier_exempts_loop(self, lint):
        findings = lint(
            """
            def probe(client, ip, name, budget):
                while True:
                    if budget.exhausted:
                        return None
                    response = client.query(ip, name)
            """,
            select=["REP030"],
        )
        assert findings == []

    def test_non_network_while_true_ignored(self, lint):
        findings = lint(
            """
            def drain(queue):
                while True:
                    item = queue.pop()
                    if item is None:
                        break
            """,
            select=["REP030"],
        )
        assert findings == []

    def test_bounded_for_loop_ignored(self, lint):
        findings = lint(
            """
            def probe(client, ip, name):
                for attempt in range(4):
                    response = client.query(ip, name)
                    if response is not None:
                        return response
            """,
            select=["REP030"],
        )
        assert findings == []


class TestSwallowedFailure:
    def test_except_exception_pass_flagged(self, lint):
        findings = lint(
            """
            def fetch(client, ip):
                try:
                    return client.get(ip, "example.com")
                except Exception:
                    pass
            """,
            select=["REP030"],
        )
        assert rule_ids(findings) == ["REP030"]

    def test_bare_except_continue_flagged(self, lint):
        findings = lint(
            """
            def sweep(client, addresses):
                for ip in addresses:
                    try:
                        client.get(ip, "example.com")
                    except:
                        continue
            """,
            select=["REP030"],
        )
        assert rule_ids(findings) == ["REP030"]

    def test_narrow_exception_pass_allowed(self, lint):
        findings = lint(
            """
            def fetch(client, ip):
                try:
                    return client.get(ip, "example.com")
                except ValueError:
                    pass
            """,
            select=["REP030"],
        )
        assert findings == []

    def test_broad_except_with_handling_allowed(self, lint):
        findings = lint(
            """
            def fetch(client, ip, metrics):
                try:
                    return client.get(ip, "example.com")
                except Exception:
                    metrics.incr("fetch.failed")
                    return None
            """,
            select=["REP030"],
        )
        assert findings == []

    def test_exception_tuple_pass_flagged(self, lint):
        findings = lint(
            """
            def fetch(client, ip):
                try:
                    return client.get(ip, "example.com")
                except (ValueError, Exception):
                    pass
            """,
            select=["REP030"],
        )
        assert rule_ids(findings) == ["REP030"]
