"""REP041/REP042/REP043: the injection-contract and surface rules."""

from repro.analysis import Analyzer
from repro.analysis.graphrules import (
    CorrelatedStreamsRule,
    DeadExportRule,
    ShadowedInjectionRule,
    TransitiveNondeterminismRule,
)

from .test_graph import write_package


def lint_package(tmp_path, files, select=None, reference_roots=None):
    write_package(tmp_path, files)
    analyzer = Analyzer(
        root=str(tmp_path), select=select, reference_roots=reference_roots
    )
    return analyzer.run([str(tmp_path / "pkg")])


def by_rule(findings, rule_id):
    return [f for f in findings if f.rule_id == rule_id]


class TestRuleDecade:
    def test_rule_ids_and_severities(self):
        assert TransitiveNondeterminismRule.rule_id == "REP040"
        assert CorrelatedStreamsRule.rule_id == "REP041"
        assert ShadowedInjectionRule.rule_id == "REP042"
        assert DeadExportRule.rule_id == "REP043"


class TestRep041CorrelatedStreams:
    def test_duplicate_fork_labels_across_modules(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """
                def setup_a(rng):
                    return rng.fork("worker")
            """,
            "pkg/b.py": """
                def setup_b(rng):
                    return rng.fork("worker")
            """,
        }, select=["REP041"])
        flagged = by_rule(findings, "REP041")
        assert {f.path for f in flagged} == {"pkg/a.py", "pkg/b.py"}
        assert all("worker" in f.message for f in flagged)

    def test_unique_labels_are_clean(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """
                def setup(rng):
                    east = rng.fork("east")
                    west = rng.fork("west")
                    return east, west
            """,
        }, select=["REP041"])
        assert by_rule(findings, "REP041") == []

    def test_unforked_stream_passed_to_multiple_consumers(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """
                def wire(rng, east, west):
                    east.attach(rng)
                    west.attach(rng)
            """,
        }, select=["REP041"])
        flagged = by_rule(findings, "REP041")
        assert len(flagged) == 1
        assert "'rng'" in flagged[0].message

    def test_forked_children_are_clean(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """
                def wire(rng, east, west):
                    east.attach(rng.fork("east"))
                    west.attach(rng.fork("west"))
            """,
        }, select=["REP041"])
        assert by_rule(findings, "REP041") == []


class TestRep042ShadowedInjection:
    def test_if_none_fallback(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """
                from repro.rng import SeededRng


                class Scanner:
                    def __init__(self, rng=None):
                        if rng is None:
                            rng = SeededRng(7)
                        self._rng = rng
            """,
        }, select=["REP042"])
        flagged = by_rule(findings, "REP042")
        assert len(flagged) == 1
        assert "'rng'" in flagged[0].message

    def test_conditional_expression_fallback(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """
                from repro.rng import SeededRng


                class Scanner:
                    def __init__(self, rng=None):
                        self._rng = rng if rng is not None else SeededRng(7)
            """,
        }, select=["REP042"])
        assert len(by_rule(findings, "REP042")) == 1

    def test_or_fallback(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """
                from repro.rng import SeededRng


                def configure(rng=None):
                    rng = rng or SeededRng(7)
                    return rng
            """,
        }, select=["REP042"])
        assert len(by_rule(findings, "REP042")) == 1

    def test_required_injection_is_clean(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """
                class Scanner:
                    def __init__(self, rng):
                        self._rng = rng
            """,
        }, select=["REP042"])
        assert by_rule(findings, "REP042") == []


class TestRep043DeadExport:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/mod.py": """
            __all__ = ["used", "unused"]


            def used():
                return 1


            def unused():
                return 2
        """,
        "pkg/consumer.py": """
            from pkg.mod import used


            def go():
                return used()
        """,
    }

    def test_unreferenced_export_is_flagged(self, tmp_path):
        findings = lint_package(tmp_path, self.FILES, select=["REP043"])
        flagged = by_rule(findings, "REP043")
        assert len(flagged) == 1
        assert "'unused'" in flagged[0].message
        assert flagged[0].path == "pkg/mod.py"

    def test_reference_roots_keep_exports_alive(self, tmp_path):
        write_package(tmp_path, {
            "refs/test_usage.py": "from pkg.mod import unused\n",
        })
        findings = lint_package(
            tmp_path, self.FILES, select=["REP043"],
            reference_roots=[str(tmp_path / "refs")],
        )
        assert by_rule(findings, "REP043") == []

    def test_own_module_use_keeps_export_alive(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                __all__ = ["helper"]


                def helper():
                    return 1


                def _internal():
                    return helper()
            """,
        }, select=["REP043"])
        assert by_rule(findings, "REP043") == []

    def test_star_import_in_reference_root_keeps_exports_alive(self, tmp_path):
        # ``from pkg.mod import *`` binds every __all__ name without
        # mentioning any of them; the whole export list is live.
        write_package(tmp_path, {
            "refs/test_star.py": "from pkg.mod import *\n\n\ndef go():\n    return used()\n",
        })
        findings = lint_package(
            tmp_path, self.FILES, select=["REP043"],
            reference_roots=[str(tmp_path / "refs")],
        )
        assert by_rule(findings, "REP043") == []

    def test_star_import_of_other_module_does_not_shield(self, tmp_path):
        write_package(tmp_path, {
            "refs/test_star.py": "from pkg.other import *\n",
        })
        findings = lint_package(
            tmp_path, self.FILES, select=["REP043"],
            reference_roots=[str(tmp_path / "refs")],
        )
        flagged = by_rule(findings, "REP043")
        assert len(flagged) == 1
        assert "'unused'" in flagged[0].message
