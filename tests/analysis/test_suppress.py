"""Inline ``# repro: allow[...]`` suppressions and the REP050 rule."""

import textwrap

from repro.analysis import Analyzer, Suppression, scan_suppressions


def analyze_snippet(tmp_path, source, filename="snippet.py", **kwargs):
    path = tmp_path / filename
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    analyzer = Analyzer(root=str(tmp_path), **kwargs)
    return analyzer.analyze([str(path)])


class TestScanner:
    def test_parses_ids_and_reason(self):
        [s] = scan_suppressions([
            "x = 1  # repro: allow[REP001,REP002] -- fixture justification",
        ])
        assert isinstance(s, Suppression)
        assert s.line == 1
        assert s.rule_ids == ("REP001", "REP002")
        assert s.reason == "fixture justification"

    def test_reason_is_optional_at_parse_time(self):
        [s] = scan_suppressions(["x = 1  # repro: allow[REP001]"])
        assert s.rule_ids == ("REP001",)
        assert s.reason == ""

    def test_quoted_syntax_in_strings_is_not_a_suppression(self):
        assert scan_suppressions([
            'doc = "use # repro: allow[REP001] -- like this"',
        ]) == []

    def test_docstring_examples_do_not_count(self):
        lines = [
            "def f():",
            '    """Example:',
            "",
            "        x  # repro: allow[REP001] -- quoted",
            '    """',
        ]
        assert scan_suppressions(lines) == []

    def test_directive_must_start_the_comment(self):
        assert scan_suppressions([
            "x = 1  #: docs mention ``# repro: allow[REP001] -- r`` inline",
        ]) == []


class TestApplication:
    def test_matching_finding_is_suppressed(self, tmp_path):
        result = analyze_snippet(
            tmp_path,
            "import random  # repro: allow[REP001] -- fixture exception\n",
            select=["REP001", "REP050"],
        )
        assert result.findings == []
        assert [f.rule_id for f in result.inline_suppressed] == ["REP001"]

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        result = analyze_snippet(
            tmp_path,
            "import random  # repro: allow[REP002] -- wrong rule\n",
            select=["REP001", "REP050"],
        )
        rule_ids = [f.rule_id for f in result.findings]
        assert "REP001" in rule_ids  # the finding survives
        assert "REP050" in rule_ids  # and the suppression is stale

    def test_stale_suppression_is_reported(self, tmp_path):
        result = analyze_snippet(
            tmp_path,
            "x = 1  # repro: allow[REP001] -- nothing here\n",
            select=["REP001", "REP050"],
        )
        assert [f.rule_id for f in result.findings] == ["REP050"]
        assert "matches no finding" in result.findings[0].message

    def test_missing_reason_is_reported(self, tmp_path):
        result = analyze_snippet(
            tmp_path,
            "import random  # repro: allow[REP001]\n",
            select=["REP001", "REP050"],
        )
        assert [f.rule_id for f in result.findings] == ["REP050"]
        assert "reason" in result.findings[0].message
        assert [f.rule_id for f in result.inline_suppressed] == ["REP001"]

    def test_ignore_unused_suppressions_escape_hatch(self, tmp_path):
        result = analyze_snippet(
            tmp_path,
            "x = 1  # repro: allow[REP001] -- nothing here\n",
            select=["REP001", "REP050"],
            ignore_unused_suppressions=True,
        )
        assert result.findings == []

    def test_suppressing_rep050_via_ignore(self, tmp_path):
        result = analyze_snippet(
            tmp_path,
            "x = 1  # repro: allow[REP001] -- nothing here\n",
            select=["REP001"],
        )
        # REP050 not selected: no stale-suppression reporting at all.
        assert result.findings == []

    def test_multi_id_suppression_matches_each_rule(self, tmp_path):
        result = analyze_snippet(
            tmp_path,
            "import random  # repro: allow[REP001] -- fixture\n"
            "import time\n"
            "x = random.random() + time.time()"
            "  # repro: allow[REP001,REP002] -- fixture\n",
            select=["REP001", "REP002", "REP050"],
        )
        assert result.findings == []
        multi = [f for f in result.inline_suppressed if f.line == 3]
        assert sorted(f.rule_id for f in multi) == ["REP001", "REP002"]


class TestFingerprintStability:
    def test_identical_suppressed_lines_get_distinct_occurrences(
        self, tmp_path
    ):
        # The union (live + suppressed) is occurrence-numbered before
        # partitioning, so two byte-identical suppressed lines keep
        # distinct fingerprints — exactly like baselined duplicates.
        line = "import random  # repro: allow[REP001] -- fixture\n"
        result = analyze_snippet(
            tmp_path, line + line, select=["REP001", "REP050"]
        )
        assert result.findings == []
        assert [f.occurrence for f in result.inline_suppressed] == [0, 1]
        fingerprints = {f.fingerprint for f in result.inline_suppressed}
        assert len(fingerprints) == 2
