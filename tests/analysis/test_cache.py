"""The incremental cache: warm-run zero re-parses, precise invalidation."""

import json

from repro.analysis import Analyzer, LintResult, LintStats
from repro.analysis.cache import LintCache, content_hash, ruleset_signature

from .test_graph import write_package

FILES = {
    "pkg/__init__.py": "",
    "pkg/clean.py": """
        def double(x):
            return x * 2
    """,
    "pkg/dirty.py": """
        import random
    """,
}


def make_analyzer(tmp_path, **kwargs):
    kwargs.setdefault("cache_path", str(tmp_path / "cache.json"))
    return Analyzer(root=str(tmp_path), **kwargs)


class TestWarmRuns:
    def test_cold_run_parses_everything(self, tmp_path):
        write_package(tmp_path, FILES)
        result = make_analyzer(tmp_path).analyze([str(tmp_path / "pkg")])
        assert isinstance(result, LintResult)
        stats = result.stats
        assert isinstance(stats, LintStats)
        assert stats.cache_enabled
        assert stats.files == 3
        assert stats.parsed == 3
        assert stats.cache_hits == 0

    def test_warm_run_performs_zero_reparses(self, tmp_path):
        write_package(tmp_path, FILES)
        cold = make_analyzer(tmp_path).analyze([str(tmp_path / "pkg")])
        warm = make_analyzer(tmp_path).analyze([str(tmp_path / "pkg")])
        assert warm.stats.parsed == 0
        assert warm.stats.cache_hits == 3
        assert warm.stats.cache_misses == 0
        # Identical findings, fingerprints included.
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]

    def test_edit_invalidates_only_the_edited_file(self, tmp_path):
        write_package(tmp_path, FILES)
        make_analyzer(tmp_path).analyze([str(tmp_path / "pkg")])
        (tmp_path / "pkg" / "clean.py").write_text(
            "def triple(x):\n    return x * 3\n", encoding="utf-8"
        )
        result = make_analyzer(tmp_path).analyze([str(tmp_path / "pkg")])
        assert result.stats.parsed == 1
        assert result.stats.cache_hits == 2

    def test_project_rules_still_fire_from_cached_summaries(self, tmp_path):
        write_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/helper.py": """
                import time


                def read_clock():
                    return time.time()
            """,
            "pkg/entry.py": """
                from pkg.helper import read_clock


                def simulate():
                    return read_clock()
            """,
        })
        cold = make_analyzer(tmp_path, select=["REP040"]).analyze(
            [str(tmp_path / "pkg")]
        )
        warm = make_analyzer(tmp_path, select=["REP040"]).analyze(
            [str(tmp_path / "pkg")]
        )
        assert warm.stats.parsed == 0
        assert [f.rule_id for f in cold.findings] == ["REP040"]
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]

    def test_ruleset_change_invalidates(self, tmp_path):
        write_package(tmp_path, FILES)
        make_analyzer(tmp_path, select=["REP001"]).analyze(
            [str(tmp_path / "pkg")]
        )
        result = make_analyzer(tmp_path, select=["REP002"]).analyze(
            [str(tmp_path / "pkg")]
        )
        assert result.stats.parsed == 3

    def test_pre_rep06x_cache_is_fully_discarded(self, tmp_path):
        # A cache written before the REP06x decade existed carries
        # summaries without the shard-safety evidence.  Its signature
        # (schema v1 + the 17-rule pack) can never match today's, so
        # the whole file must be discarded — zero hits, full re-parse.
        write_package(tmp_path, FILES)
        cache_path = tmp_path / "cache.json"
        make_analyzer(tmp_path).analyze([str(tmp_path / "pkg")])
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
        pre_decade_rules = [
            rule.rule_id for rule in Analyzer(root=str(tmp_path)).rules
            if not rule.rule_id.startswith("REP06")
        ]
        payload["signature"] = ruleset_signature(pre_decade_rules)
        cache_path.write_text(json.dumps(payload), encoding="utf-8")
        result = make_analyzer(tmp_path).analyze([str(tmp_path / "pkg")])
        assert result.stats.cache_hits == 0
        assert result.stats.parsed == 3
        # ... and the run rewrote the cache under the current signature.
        warm = make_analyzer(tmp_path).analyze([str(tmp_path / "pkg")])
        assert warm.stats.parsed == 0

    def test_warm_run_stays_hit_after_schema_bump(self, tmp_path):
        # The acceptance check for the schema bump: once a cache has
        # been written by the current (v2) engine, a second run over an
        # unchanged tree performs zero re-parses even with the full
        # default pack (REP06x included).
        write_package(tmp_path, FILES)
        make_analyzer(tmp_path).analyze([str(tmp_path / "pkg")])
        warm = make_analyzer(tmp_path).analyze([str(tmp_path / "pkg")])
        assert warm.stats.cache_hits == 3
        assert warm.stats.parsed == 0

    def test_cache_disabled_by_default(self, tmp_path):
        write_package(tmp_path, FILES)
        analyzer = Analyzer(root=str(tmp_path))
        result = analyzer.analyze([str(tmp_path / "pkg")])
        assert not result.stats.cache_enabled
        assert result.stats.parsed == 3


class TestCacheFile:
    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        write_package(tmp_path, FILES)
        cache_path = tmp_path / "cache.json"
        make_analyzer(tmp_path).analyze([str(tmp_path / "pkg")])
        cache_path.write_text("{not json", encoding="utf-8")
        result = make_analyzer(tmp_path).analyze([str(tmp_path / "pkg")])
        assert result.stats.parsed == 3
        # ... and the run repaired the cache for the next one.
        repaired = make_analyzer(tmp_path).analyze([str(tmp_path / "pkg")])
        assert repaired.stats.parsed == 0

    def test_deleted_files_are_pruned(self, tmp_path):
        write_package(tmp_path, FILES)
        cache_path = tmp_path / "cache.json"
        make_analyzer(tmp_path).analyze([str(tmp_path / "pkg")])
        (tmp_path / "pkg" / "dirty.py").unlink()
        make_analyzer(tmp_path).analyze([str(tmp_path / "pkg")])
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
        assert "pkg/dirty.py" not in payload["entries"]

    def test_signature_mismatch_is_empty(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = LintCache(path, ruleset_signature(["REP001"]))
        digest = content_hash(b"x = 1\n")
        cache.put("mod.py", digest, [], _dummy_summary())
        cache.save()
        other = LintCache.load(path, ruleset_signature(["REP002"]))
        assert other.get("mod.py", digest) is None
        same = LintCache.load(path, ruleset_signature(["REP001"]))
        assert same.get("mod.py", digest) is not None

    def test_content_hash_mismatch_misses(self, tmp_path):
        path = str(tmp_path / "cache.json")
        signature = ruleset_signature(["REP001"])
        cache = LintCache(path, signature)
        cache.put("mod.py", content_hash(b"x = 1\n"), [], _dummy_summary())
        assert cache.get("mod.py", content_hash(b"x = 2\n")) is None


def _dummy_summary():
    from repro.analysis import ModuleSummary

    return ModuleSummary(module="mod", path="mod.py", basename="mod.py")
