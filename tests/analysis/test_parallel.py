"""``--jobs``: parallel cold-start parsing, byte-identical output.

The worker pool only does the embarrassingly parallel part (parse +
per-module rules + summarize); project rules and suppression handling
stay in the parent.  Results are merged back in discovery order, so a
parallel run must be indistinguishable from a serial one — fingerprints,
occurrence numbers, and summaries included.
"""

from repro.analysis import Analyzer

from .test_graph import write_package

FILES = {
    "pkg/__init__.py": "",
    "pkg/clean.py": """
        def double(x):
            return x * 2
    """,
    "pkg/dirty.py": """
        import random


        def roll():
            return random.random()
    """,
    "pkg/helper.py": """
        import time


        def read_clock():
            return time.time()
    """,
    "pkg/caller.py": """
        from pkg.helper import read_clock


        def simulate():
            return read_clock()
    """,
}


def analyze(tmp_path, **kwargs):
    analyzer = Analyzer(root=str(tmp_path), **kwargs)
    return analyzer.analyze([str(tmp_path / "pkg")])


class TestJobsParity:
    def test_parallel_findings_identical_to_serial(self, tmp_path):
        write_package(tmp_path, FILES)
        serial = analyze(tmp_path, jobs=1)
        parallel = analyze(tmp_path, jobs=2)
        assert [f.to_dict() for f in parallel.findings] == [
            f.to_dict() for f in serial.findings
        ]
        assert [s.to_dict() for s in parallel.summaries] == [
            s.to_dict() for s in serial.summaries
        ]
        # Both modes flagged something, so the parity is non-vacuous —
        # including the REP040 chain that needs cross-file summaries.
        assert any(f.rule_id == "REP040" for f in serial.findings)

    def test_jobs_zero_means_one_per_cpu(self, tmp_path):
        write_package(tmp_path, FILES)
        serial = analyze(tmp_path, jobs=1)
        auto = analyze(tmp_path, jobs=0)
        assert [f.to_dict() for f in auto.findings] == [
            f.to_dict() for f in serial.findings
        ]

    def test_parallel_run_populates_cache_for_serial_warm_run(self, tmp_path):
        write_package(tmp_path, FILES)
        cache_path = str(tmp_path / "cache.json")
        cold = analyze(tmp_path, jobs=2, cache_path=cache_path)
        assert cold.stats.parsed == len(FILES)
        warm = analyze(tmp_path, jobs=1, cache_path=cache_path)
        assert warm.stats.parsed == 0
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]

    def test_single_miss_stays_serial(self, tmp_path):
        # One cache miss is not worth a pool; the engine must not even
        # try to spawn workers (observable only as "it still works").
        write_package(tmp_path, FILES)
        cache_path = str(tmp_path / "cache.json")
        analyze(tmp_path, jobs=4, cache_path=cache_path)
        (tmp_path / "pkg" / "clean.py").write_text(
            "def triple(x):\n    return x * 3\n", encoding="utf-8"
        )
        result = analyze(tmp_path, jobs=4, cache_path=cache_path)
        assert result.stats.parsed == 1
        assert result.stats.cache_hits == len(FILES) - 1
