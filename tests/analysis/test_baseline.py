"""Baseline (allowlist) round-trip, suppression, and staleness."""

import pytest

from repro.analysis import Analyzer, Baseline, BaselineEntry
from repro.errors import AnalysisError


def findings_for(tmp_path, source="import random\nx = 86400\n"):
    path = tmp_path / "mod.py"
    path.write_text(source, encoding="utf-8")
    return Analyzer(
        root=str(tmp_path), select=["REP001", "REP010"]
    ).run([str(path)])


class TestRoundTrip:
    def test_write_reload_suppress(self, tmp_path):
        findings = findings_for(tmp_path)
        assert findings
        baseline = Baseline.from_findings(findings)
        baseline_path = tmp_path / "baseline.txt"
        baseline.save(str(baseline_path))

        reloaded = Baseline.load(str(baseline_path))
        assert len(reloaded) == len(findings)
        new, suppressed = reloaded.split(findings)
        assert new == []
        assert len(suppressed) == len(findings)

    def test_comments_survive_regeneration(self, tmp_path):
        findings = findings_for(tmp_path)
        first = Baseline.from_findings(findings)
        hand_edited = Baseline(
            [
                BaselineEntry(
                    entry.rule_id,
                    entry.path,
                    entry.fingerprint,
                    "reviewed by a human",
                )
                for entry in first.entries()
            ]
        )
        regenerated = Baseline.from_findings(findings, previous=hand_edited)
        assert all(
            entry.comment == "reviewed by a human"
            for entry in regenerated.entries()
        )

    def test_render_parse_identity(self, tmp_path):
        baseline = Baseline.from_findings(findings_for(tmp_path))
        assert Baseline.parse(baseline.render()).entries() == (
            baseline.entries()
        )


class TestSuppression:
    def test_unrelated_edit_keeps_entry_alive(self, tmp_path):
        findings = findings_for(tmp_path, "import random\n")
        baseline = Baseline.from_findings(findings)
        # Insert a line above: line numbers shift, text does not.
        moved = findings_for(tmp_path, "'''doc'''\nimport random\n")
        new, suppressed = baseline.split(moved)
        assert new == []
        assert len(suppressed) == 1

    def test_editing_violating_line_orphans_entry(self, tmp_path):
        findings = findings_for(tmp_path, "import random\n")
        baseline = Baseline.from_findings(findings)
        changed = findings_for(tmp_path, "import random as rnd\n")
        new, _ = baseline.split(changed)
        assert len(new) == 1
        assert baseline.stale_entries(changed)

    def test_stale_entries_reported_when_violation_removed(self, tmp_path):
        findings = findings_for(tmp_path)
        baseline = Baseline.from_findings(findings)
        clean = findings_for(tmp_path, "x = 1\n")
        assert clean == []
        assert len(baseline.stale_entries(clean)) == len(findings)


class TestDualCoverage:
    """A finding must not be excused twice (inline + baseline)."""

    def analyze(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import random  # repro: allow[REP001] -- fixture exception\n",
            encoding="utf-8",
        )
        return Analyzer(root=str(tmp_path), select=["REP001"]).analyze(
            [str(path)]
        )

    def test_inline_covered_entry_is_stale_with_reason(self, tmp_path):
        result = self.analyze(tmp_path)
        assert result.findings == []
        assert len(result.inline_suppressed) == 1
        covered = result.inline_suppressed[0]
        baseline = Baseline([
            BaselineEntry(
                covered.rule_id, covered.path, covered.fingerprint,
                "redundant copy of the inline justification",
            ),
        ])
        reasons = baseline.stale_reasons(
            result.findings, result.inline_suppressed
        )
        assert [(e.fingerprint, r) for e, r in reasons] == [
            (covered.fingerprint, "inline"),
        ]

    def test_gone_and_inline_reasons_are_distinguished(self, tmp_path):
        result = self.analyze(tmp_path)
        covered = result.inline_suppressed[0]
        baseline = Baseline([
            BaselineEntry(covered.rule_id, covered.path,
                          covered.fingerprint, "inline-covered"),
            BaselineEntry("REP010", "mod.py", "feedfacefeedface",
                          "violation long since fixed"),
        ])
        reasons = dict(
            (entry.fingerprint, reason)
            for entry, reason in baseline.stale_reasons(
                result.findings, result.inline_suppressed
            )
        )
        assert reasons == {
            covered.fingerprint: "inline",
            "feedfacefeedface": "gone",
        }

    def test_update_baseline_drops_the_dual_covered_entry(self, tmp_path):
        # from_findings only covers live findings, so the regenerated
        # baseline can never retain an inline-covered entry.
        result = self.analyze(tmp_path)
        covered = result.inline_suppressed[0]
        stale = Baseline([
            BaselineEntry(covered.rule_id, covered.path,
                          covered.fingerprint, "dual-covered"),
        ])
        updated = Baseline.from_findings(result.findings, previous=stale)
        assert covered.fingerprint not in updated
        assert len(updated) == 0


class TestFileFormat:
    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(str(tmp_path / "absent.txt"))
        assert len(baseline) == 0

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("REP001 only-two-fields\n", encoding="utf-8")
        with pytest.raises(AnalysisError):
            Baseline.load(str(path))

    def test_comments_and_blank_lines_ignored(self):
        baseline = Baseline.parse("# header\n\n# another comment\n")
        assert len(baseline) == 0

    def test_entry_comment_parsed(self):
        baseline = Baseline.parse(
            "REP001 src/mod.py 00deadbeef00cafe  # intentional\n"
        )
        assert baseline.comment_for("00deadbeef00cafe") == "intentional"


class TestDuplicateLines:
    """Satellite regression: two identical violating lines must never
    collapse into one baseline key (the occurrence index keeps their
    fingerprints distinct)."""

    SOURCE = "import random\nimport random\n"

    def test_duplicate_violations_get_distinct_entries(self, tmp_path):
        findings = findings_for(tmp_path, self.SOURCE)
        assert [f.line for f in findings] == [1, 2]
        assert [f.occurrence for f in findings] == [0, 1]
        baseline = Baseline.from_findings(findings)
        assert len(baseline) == 2

    def test_baselining_one_duplicate_leaves_the_other_reported(
        self, tmp_path
    ):
        findings = findings_for(tmp_path, self.SOURCE)
        baseline = Baseline.from_findings(findings[:1])
        new, suppressed = baseline.split(findings)
        assert len(suppressed) == 1
        assert len(new) == 1
        assert new[0].line == 2

    def test_duplicate_entries_round_trip_through_the_file(self, tmp_path):
        findings = findings_for(tmp_path, self.SOURCE)
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.txt"
        baseline.save(str(path))
        reloaded = Baseline.load(str(path))
        assert len(reloaded) == 2
        new, suppressed = reloaded.split(findings)
        assert new == [] and len(suppressed) == 2
