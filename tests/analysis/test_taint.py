"""The determinism taint fixpoint and the REP040 acceptance fixture.

The load-bearing acceptance case: a clean caller that reaches
``time.time()`` through a helper in *another module* is flagged REP040,
while the same shape with an injected ``SimulationClock`` parameter is
not.
"""

from repro.analysis import Analyzer, TaintResult, propagate_taint
from repro.analysis.graph import ProjectGraph
from repro.analysis.taint import TaintTrace
from repro.markers import nondeterministic

from .test_graph import build_graph, write_package


def lint_package(tmp_path, files, select=None):
    write_package(tmp_path, files)
    analyzer = Analyzer(root=str(tmp_path), select=select)
    return analyzer.run([str(tmp_path)])


def rep040(findings):
    return [f for f in findings if f.rule_id == "REP040"]


class TestAcceptanceFixture:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/helper.py": """
            import time


            def read_clock():
                return time.time()
        """,
        "pkg/entry.py": """
            from pkg.helper import read_clock


            def simulate(population):
                return read_clock() + population
        """,
    }

    def test_transitive_chain_is_flagged_across_modules(self, tmp_path):
        findings = lint_package(tmp_path, self.FILES, select=["REP040"])
        flagged = rep040(findings)
        assert len(flagged) == 1
        finding = flagged[0]
        assert finding.path == "pkg/entry.py"
        assert "simulate" in finding.message
        assert "read_clock" in finding.message
        assert "time.time" in finding.message

    def test_injected_clock_parameter_sanitizes_the_chain(self, tmp_path):
        files = dict(self.FILES)
        files["pkg/entry.py"] = """
            from repro.clock import SimulationClock


            def simulate(population, clock: SimulationClock):
                return clock.now() + population
        """
        findings = lint_package(tmp_path, files, select=["REP040"])
        assert rep040(findings) == []

    def test_direct_source_is_not_rep040(self, tmp_path):
        # The helper itself is the per-file rules' problem (REP002),
        # not a transitive finding.
        findings = lint_package(tmp_path, self.FILES, select=["REP040"])
        assert all(f.path != "pkg/helper.py" for f in rep040(findings))


class TestFixpoint:
    def test_mutual_recursion_converges(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """
                import time
                from pkg.b import pong


                def ping(n):
                    if n <= 0:
                        return time.time()
                    return pong(n - 1)
            """,
            "pkg/b.py": """
                from pkg.a import ping


                def pong(n):
                    return ping(n)
            """,
        })
        result = propagate_taint(graph)
        assert isinstance(result, TaintResult)
        assert ("pkg.a", "ping") in result.tainted
        assert ("pkg.b", "pong") in result.tainted
        trace = result.trace(("pkg.b", "pong"))
        assert isinstance(trace, TaintTrace)
        assert trace.source == ("pkg.a", "ping")

    def test_three_hop_chain_records_witness_path(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """
                import os


                def entropy():
                    return os.urandom(8)
            """,
            "pkg/b.py": """
                from pkg.a import entropy


                def middle():
                    return entropy()
            """,
            "pkg/c.py": """
                from pkg.b import middle


                def top():
                    return middle()
            """,
        })
        result = propagate_taint(graph)
        trace = result.trace(("pkg.c", "top"))
        assert trace.chain == (
            ("pkg.c", "top"), ("pkg.b", "middle"), ("pkg.a", "entropy"),
        )
        assert trace.reasons[0].kind == "os-entropy"
        assert not trace.is_direct
        assert result.trace(("pkg.a", "entropy")).is_direct

    def test_marker_decorator_seeds_taint(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/ext.py": """
                from repro.markers import nondeterministic


                @nondeterministic
                def read_sensor():
                    return 0.0
            """,
            "pkg/use.py": """
                from pkg.ext import read_sensor


                def consume():
                    return read_sensor() * 2
            """,
        }, select=["REP040"])
        flagged = rep040(findings)
        assert [f.path for f in flagged] == ["pkg/use.py"]
        assert "@nondeterministic" in flagged[0].message

    def test_sanctioned_modules_never_seed(self, tmp_path):
        # A module literally named rng.py defines the sanctioned
        # wrapper; its internal entropy must not taint its callers.
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/rng.py": """
                import random


                def draw():
                    return random.random()
            """,
            "pkg/use.py": """
                from pkg.rng import draw


                def consume():
                    return draw()
            """,
        }, select=["REP040"])
        assert rep040(findings) == []

    def test_rng_method_call_is_sanitized(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/use.py": """
                from repro.rng import SeededRng


                def consume(rng: SeededRng):
                    return rng.random()
            """,
        }, select=["REP040"])
        assert rep040(findings) == []


class TestMarkerRuntime:
    def test_decorator_is_identity(self):
        def probe():
            return 41

        assert nondeterministic(probe) is probe
        assert nondeterministic(probe)() == 41
