"""Per-rule positive/negative fixtures for the REP0xx rule pack."""

import pytest

from repro.analysis import Analyzer, RuleRegistry, Severity, default_registry
from repro.analysis.rules import Rule
from repro.errors import AnalysisError

from .conftest import rule_ids


class TestRep001AmbientRandom:
    def test_import_random(self, lint):
        findings = lint("import random\n", select=["REP001"])
        assert rule_ids(findings) == ["REP001"]
        assert findings[0].line == 1

    def test_from_random_import(self, lint):
        assert rule_ids(
            lint("from random import choice\n", select=["REP001"])
        ) == ["REP001"]

    def test_numpy_random(self, lint):
        assert rule_ids(
            lint("import numpy.random\n", select=["REP001"])
        ) == ["REP001"]

    def test_attribute_use(self, lint):
        findings = lint(
            "import random\nx = random.random()\n", select=["REP001"]
        )
        assert rule_ids(findings) == ["REP001", "REP001"]
        assert findings[1].line == 2

    def test_seeded_rng_is_clean(self, lint):
        source = """
        from repro.rng import SeededRng

        def draw(rng):
            return rng.random()
        """
        assert lint(source, select=["REP001"]) == []


class TestRep002WallClock:
    @pytest.mark.parametrize(
        "expr",
        [
            "time.time()",
            "time.monotonic()",
            "time.perf_counter_ns()",
            "datetime.now()",
            "datetime.utcnow()",
            "date.today()",
            "datetime.datetime.now()",
        ],
    )
    def test_wall_clock_reads(self, lint, expr):
        assert rule_ids(
            lint(f"x = {expr}\n", select=["REP002"])
        ) == ["REP002"]

    def test_from_time_import(self, lint):
        assert rule_ids(
            lint("from time import monotonic\n", select=["REP002"])
        ) == ["REP002"]

    def test_simulation_clock_is_clean(self, lint):
        source = """
        def sample(clock):
            return clock.now
        """
        assert lint(source, select=["REP002"]) == []

    def test_unrelated_now_attribute_is_clean(self, lint):
        assert lint("x = clock.now\n", select=["REP002"]) == []


class TestRep003UnorderedSetIteration:
    def test_for_over_set_call(self, lint):
        source = """
        def f(items):
            for x in set(items):
                print(x)
        """
        assert rule_ids(lint(source, select=["REP003"])) == ["REP003"]

    def test_comprehension_over_set_literal(self, lint):
        assert rule_ids(
            lint("out = [x for x in {3, 1, 2}]\n", select=["REP003"])
        ) == ["REP003"]

    def test_set_comprehension_iterable(self, lint):
        assert rule_ids(
            lint("out = [y for y in {x for x in range(3)}]\n",
                 select=["REP003"])
        ) == ["REP003"]

    def test_call_to_set_annotated_method(self, lint):
        source = """
        from typing import Set

        class Timeline:
            def all_websites(self) -> Set[str]:
                return set()

            def spans(self):
                return {site: 1 for site in self.all_websites()}
        """
        findings = lint(source, select=["REP003"])
        assert rule_ids(findings) == ["REP003"]

    def test_sorted_wrapper_is_clean(self, lint):
        source = """
        def f(items):
            for x in sorted(set(items)):
                print(x)
        """
        assert lint(source, select=["REP003"]) == []

    def test_list_iteration_is_clean(self, lint):
        source = """
        def f(items):
            for x in list(items):
                print(x)
        """
        assert lint(source, select=["REP003"]) == []


class TestRep004SaltedHash:
    def test_hash_outside_dunder(self, lint):
        assert rule_ids(
            lint("bucket = hash('example.com') % 16\n", select=["REP004"])
        ) == ["REP004"]

    def test_hash_in_helper_function(self, lint):
        source = """
        def bucket_of(name):
            return hash(name) % 4
        """
        assert rule_ids(lint(source, select=["REP004"])) == ["REP004"]

    def test_hash_inside_dunder_hash_is_clean(self, lint):
        source = """
        class Name:
            def __hash__(self):
                return hash(self.labels)
        """
        assert lint(source, select=["REP004"]) == []

    def test_stable_hash_is_clean(self, lint):
        source = """
        from repro.rng import stable_hash

        def bucket_of(name):
            return stable_hash(name) % 4
        """
        assert lint(source, select=["REP004"]) == []


class TestRep005OsEntropy:
    @pytest.mark.parametrize(
        "source",
        [
            "import os\nx = os.urandom(8)\n",
            "from os import urandom\n",
            "import uuid\nx = uuid.uuid4()\n",
            "from uuid import uuid4\n",
            "import secrets\n",
            "from secrets import token_hex\n",
        ],
    )
    def test_entropy_sources(self, lint, source):
        assert "REP005" in rule_ids(lint(source, select=["REP005"]))

    def test_uuid5_is_clean(self, lint):
        # uuid5 is deterministic (namespace + name), so it is allowed.
        assert lint(
            "import uuid\nx = uuid.uuid5(ns, 'name')\n", select=["REP005"]
        ) == []


class TestRep010MagicTimeLiteral:
    @pytest.mark.parametrize("literal", ["3600", "86400", "604800"])
    def test_magic_literals(self, lint, literal):
        findings = lint(f"ttl = {literal}\n", select=["REP010"])
        assert rule_ids(findings) == ["REP010"]
        assert findings[0].severity is Severity.WARNING

    def test_clock_module_is_exempt(self, lint):
        assert lint(
            "SECONDS_PER_DAY = 86400\n", filename="clock.py",
            select=["REP010"],
        ) == []

    def test_named_constant_is_clean(self, lint):
        assert lint(
            "from repro.clock import SECONDS_PER_DAY\nttl = SECONDS_PER_DAY\n",
            select=["REP010"],
        ) == []

    def test_private_now_access(self, lint):
        assert rule_ids(
            lint("t = clock._now\n", select=["REP010"])
        ) == ["REP010"]

    def test_self_now_is_clean(self, lint):
        source = """
        class Clock:
            def read(self):
                return self._now
        """
        assert lint(source, select=["REP010"]) == []

    def test_boolean_literal_not_confused_with_int(self, lint):
        assert lint("flag = True\n", select=["REP010"]) == []


class TestRep011RawTimestamp:
    def test_timestamp_parameter(self, lint):
        source = """
        def record(timestamp):
            return timestamp
        """
        assert rule_ids(lint(source, select=["REP011"])) == ["REP011"]

    def test_keyword_only_epoch_seconds(self, lint):
        source = """
        def record(*, epoch_seconds):
            return epoch_seconds
        """
        assert rule_ids(lint(source, select=["REP011"])) == ["REP011"]

    def test_clock_module_is_exempt(self, lint):
        source = """
        def advance_to(self, timestamp):
            return timestamp
        """
        assert lint(source, filename="clock.py", select=["REP011"]) == []

    def test_day_index_is_clean(self, lint):
        source = """
        def record(day):
            return day
        """
        assert lint(source, select=["REP011"]) == []


class TestRep020MutableDefault:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "list()", "dict()", "{1, 2}"]
    )
    def test_mutable_defaults(self, lint, default):
        source = f"""
        def f(seen={default}):
            return seen
        """
        assert rule_ids(lint(source, select=["REP020"])) == ["REP020"]

    def test_keyword_only_mutable_default(self, lint):
        source = """
        def f(*, seen=[]):
            return seen
        """
        assert rule_ids(lint(source, select=["REP020"])) == ["REP020"]

    def test_none_default_is_clean(self, lint):
        source = """
        def f(seen=None):
            return seen or []
        """
        assert lint(source, select=["REP020"]) == []

    def test_tuple_default_is_clean(self, lint):
        source = """
        def f(seen=()):
            return seen
        """
        assert lint(source, select=["REP020"]) == []


class TestRep021OverBroadExcept:
    def test_bare_except(self, lint):
        source = """
        try:
            step()
        except:
            pass
        """
        assert rule_ids(lint(source, select=["REP021"])) == ["REP021"]

    @pytest.mark.parametrize("exc", ["Exception", "BaseException"])
    def test_broad_classes(self, lint, exc):
        source = f"""
        try:
            step()
        except {exc}:
            pass
        """
        assert rule_ids(lint(source, select=["REP021"])) == ["REP021"]

    def test_broad_class_in_tuple(self, lint):
        source = """
        try:
            step()
        except (ValueError, Exception):
            pass
        """
        assert rule_ids(lint(source, select=["REP021"])) == ["REP021"]

    def test_narrow_class_is_clean(self, lint):
        source = """
        try:
            step()
        except ValueError:
            pass
        """
        assert lint(source, select=["REP021"]) == []


class TestRep022MissingAll:
    def test_public_module_without_all(self, lint):
        source = """
        def api():
            return 1
        """
        assert rule_ids(lint(source, select=["REP022"])) == ["REP022"]

    def test_module_with_all_is_clean(self, lint):
        source = """
        __all__ = ["api"]

        def api():
            return 1
        """
        assert lint(source, select=["REP022"]) == []

    def test_main_module_is_exempt(self, lint):
        source = """
        def run():
            return 1
        """
        assert lint(source, filename="__main__.py", select=["REP022"]) == []

    def test_private_module_is_exempt(self, lint):
        source = """
        def helper():
            return 1
        """
        assert lint(source, filename="_internal.py", select=["REP022"]) == []

    def test_module_defining_nothing_public_is_clean(self, lint):
        assert lint("import os\n_cache = {}\n", select=["REP022"]) == []


class TestRegistry:
    def test_default_pack_has_twenty_five_rules(self):
        # 10 per-module REP00x/01x/02x, REP030/REP031, the four REP04x
        # project rules, REP050 (stale inline suppression), the four
        # REP06x shard-safety project rules, and the four REP07x
        # purity/effect project rules.
        assert len(default_registry()) == 25

    def test_unknown_select_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            Analyzer(select=["REP999"], root=str(tmp_path))

    def test_unknown_ignore_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            Analyzer(ignore=["NOPE"], root=str(tmp_path))

    def test_ignore_filters_rule_out(self, lint):
        findings = lint("import random\n", ignore=["REP001", "REP022"])
        assert "REP001" not in rule_ids(findings)

    def test_duplicate_rule_id_rejected(self):
        registry = RuleRegistry()

        class A(Rule):
            rule_id = "REP900"

            def check(self, module):
                return iter(())

        class B(Rule):
            rule_id = "REP900"

            def check(self, module):
                return iter(())

        registry.add(A)
        with pytest.raises(AnalysisError):
            registry.add(B)

    def test_rule_without_id_rejected(self):
        class Anonymous(Rule):
            def check(self, module):
                return iter(())

        with pytest.raises(AnalysisError):
            RuleRegistry().add(Anonymous)


class TestEngine:
    def test_findings_sorted_and_deterministic(self, lint):
        source = """
        import random
        x = 86400
        y = 3600
        """
        first = lint(source)
        second = lint(source)
        assert [f.sort_key for f in first] == [f.sort_key for f in second]
        assert first == sorted(first, key=lambda f: f.sort_key)

    def test_duplicate_lines_get_distinct_fingerprints(self, lint):
        source = """
        a = 86400
        a = 86400
        """
        findings = lint(source, select=["REP010"])
        assert len(findings) == 2
        assert findings[0].fingerprint != findings[1].fingerprint
        assert findings[0].occurrence == 0
        assert findings[1].occurrence == 1

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            Analyzer(root=str(tmp_path)).run([str(tmp_path / "absent.py")])

    def test_syntax_error_raises(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n", encoding="utf-8")
        with pytest.raises(AnalysisError):
            Analyzer(root=str(tmp_path)).run([str(bad)])

    def test_directory_discovery_skips_pycache(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "mod.py").write_text("import random\n", encoding="utf-8")
        cache = package / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("import random\n", encoding="utf-8")
        findings = Analyzer(root=str(tmp_path), select=["REP001"]).run(
            [str(package)]
        )
        assert [f.path for f in findings] == ["pkg/mod.py"]
