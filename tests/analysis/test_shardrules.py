"""REP060-REP063: the shard-safety decade over declared boundaries.

The boundary spec is the pair of no-op decorators in
:mod:`repro.markers`; every fixture declares it the way real code does
(``@shard_entry`` on the per-shard unit of work, ``@merge_point`` on
the combiner).  With no declared boundary the decade must be inert.
"""

from repro.analysis.shardrules import (
    OrderSensitiveMergeRule,
    RngStreamEscapeRule,
    SharedMutableStateRule,
    UnregisteredCheckpointStateRule,
)
from repro.checkpoint.serde import SERDE_REGISTRY

from .test_graphrules import by_rule, lint_package


class TestRuleDecade:
    def test_rule_ids_and_titles(self):
        assert SharedMutableStateRule.rule_id == "REP060"
        assert OrderSensitiveMergeRule.rule_id == "REP061"
        assert RngStreamEscapeRule.rule_id == "REP062"
        assert UnregisteredCheckpointStateRule.rule_id == "REP063"
        for rule in (
            SharedMutableStateRule,
            OrderSensitiveMergeRule,
            RngStreamEscapeRule,
            UnregisteredCheckpointStateRule,
        ):
            assert rule.title

    def test_decade_is_inert_without_declared_boundary(self, tmp_path):
        # Worst-case shard hazards everywhere, but nothing is declared
        # an entry or merge point: zero findings.
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/work.py": """
                CACHE = {}

                SERDE_REGISTRY = frozenset({"Nothing"})


                class Tracker:
                    seen = []

                    def bump(self):
                        self.total += 1


                def run(shard, acc=[]):
                    acc.append(CACHE.get(shard))
                    return acc
            """,
        }, select=["REP060", "REP061", "REP062", "REP063"])
        assert findings == []


class TestRep060SharedMutableState:
    def test_module_global_read_inside_boundary(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/state.py": """
                CACHE = {}
            """,
            "pkg/work.py": """
                from repro.markers import shard_entry

                from pkg.state import CACHE


                @shard_entry
                def run(shard):
                    return CACHE.get(shard)
            """,
        }, select=["REP060"])
        flagged = by_rule(findings, "REP060")
        assert len(flagged) == 1
        assert flagged[0].path == "pkg/state.py"
        assert "'CACHE'" in flagged[0].message
        # The witness chain starts at the declared entry point.
        assert "pkg.work.run" in flagged[0].message

    def test_global_reached_through_helper_call(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/work.py": """
                from repro.markers import shard_entry

                SEEN = set()


                def record(shard):
                    return shard in SEEN


                @shard_entry
                def run(shard):
                    return record(shard)
            """,
        }, select=["REP060"])
        flagged = by_rule(findings, "REP060")
        assert len(flagged) == 1
        assert "pkg.work.run -> pkg.work.record" in flagged[0].message

    def test_class_level_mutable_attr_on_entry_class(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/work.py": """
                from repro.markers import shard_entry


                class Shard:
                    buffer = []

                    @shard_entry
                    def run(self):
                        return self.buffer
            """,
        }, select=["REP060"])
        flagged = by_rule(findings, "REP060")
        assert len(flagged) == 1
        assert "Shard.buffer" in flagged[0].message

    def test_mutable_default_on_reachable_function(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/work.py": """
                from repro.markers import shard_entry


                @shard_entry
                def run(items, acc=[]):
                    acc.extend(items)
                    return acc
            """,
        }, select=["REP060"])
        flagged = by_rule(findings, "REP060")
        assert len(flagged) == 1
        assert "'acc'" in flagged[0].message

    def test_immutable_global_and_unreachable_state_are_clean(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/work.py": """
                from repro.markers import shard_entry

                LIMIT = 42

                ELSEWHERE = {}


                @shard_entry
                def run(shard):
                    return shard * LIMIT


                def other():
                    return ELSEWHERE
            """,
        }, select=["REP060"])
        assert by_rule(findings, "REP060") == []


class TestRep061OrderSensitiveMerge:
    def test_unsorted_dict_iteration_in_merge_point(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/merge.py": """
                from repro.markers import merge_point


                @merge_point
                def combine(counts):
                    out = 0
                    for name, value in counts.items():
                        out = out * 31 + value
                    return out
            """,
        }, select=["REP061"])
        flagged = by_rule(findings, "REP061")
        assert len(flagged) == 1
        assert "unsorted-dict-iteration" in flagged[0].message
        assert "'combine'" in flagged[0].message

    def test_arrival_order_fold_in_merge_point(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/merge.py": """
                from repro.markers import merge_point


                @merge_point
                def combine(results):
                    out = []
                    for result in results:
                        out.append(result)
                    return out
            """,
        }, select=["REP061"])
        flagged = by_rule(findings, "REP061")
        assert len(flagged) == 1
        assert "arrival-order-fold" in flagged[0].message

    def test_sorted_iteration_is_clean(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/merge.py": """
                from repro.markers import merge_point


                @merge_point
                def combine(counts, results):
                    out = []
                    for name in sorted(counts):
                        out.append(counts[name])
                    for result in sorted(results):
                        out.append(result)
                    return out
            """,
        }, select=["REP061"])
        assert by_rule(findings, "REP061") == []

    def test_same_body_outside_merge_point_is_clean(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/merge.py": """
                def combine(counts):
                    out = 0
                    for name, value in counts.items():
                        out = out * 31 + value
                    return out
            """,
        }, select=["REP061"])
        assert by_rule(findings, "REP061") == []


class TestRep062RngStreamEscape:
    def test_fork_shared_by_two_entry_points(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/work.py": """
                from repro.markers import shard_entry


                @shard_entry
                def run_east(rng):
                    return seed_stream(rng)


                @shard_entry
                def run_west(rng):
                    return seed_stream(rng)


                def seed_stream(rng):
                    return rng.fork("shared-stream")
            """,
        }, select=["REP062"])
        flagged = by_rule(findings, "REP062")
        assert len(flagged) == 1
        assert "'shared-stream'" in flagged[0].message
        assert "2 shard entry points" in flagged[0].message
        assert "pkg.work.run_east" in flagged[0].message
        assert "pkg.work.run_west" in flagged[0].message

    def test_shard_owned_fork_flowing_into_merge_code(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/work.py": """
                from repro.markers import merge_point, shard_entry


                @shard_entry
                def run(rng):
                    return jitter(rng)


                @merge_point
                def combine(rng, results):
                    return jitter(rng), sorted(results)


                def jitter(rng):
                    return rng.fork("probe-jitter")
            """,
        }, select=["REP062"])
        flagged = by_rule(findings, "REP062")
        assert len(flagged) == 1
        assert "'probe-jitter'" in flagged[0].message
        assert "flows into merge code" in flagged[0].message

    def test_private_per_entry_forks_are_clean(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/work.py": """
                from repro.markers import merge_point, shard_entry


                @shard_entry
                def run_east(rng):
                    return rng.fork("east-stream")


                @shard_entry
                def run_west(rng):
                    return rng.fork("west-stream")


                @merge_point
                def combine(results):
                    return sorted(results)
            """,
        }, select=["REP062"])
        assert by_rule(findings, "REP062") == []


REP063_REGISTRY = """
SERDE_REGISTRY = frozenset({"Tracker"})
"""

REP063_WORK_PREFIX = """
from repro.markers import shard_entry


class Tracker:
    def __init__(self):
        self.total = 0

    def bump(self):
        self.total += 1


class Rogue:
    def __init__(self):
        self.total = 0

    def note(self):
        self.total += 1


class Frozen:
    def __init__(self, n):
        self.n = n

    def get(self):
        return self.n
"""


class TestRep063UnregisteredCheckpointState:
    def test_unregistered_mutable_class_on_study_path(self, tmp_path):
        # The acceptance fixture: a mutable class newly constructed on a
        # shard path without a registry entry must be flagged, while the
        # registered one with the identical shape stays clean.
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/serde.py": REP063_REGISTRY,
            "pkg/work.py": REP063_WORK_PREFIX + """

@shard_entry
def run(shard):
    tracker = Tracker()
    rogue = Rogue()
    tracker.bump()
    rogue.note()
    return tracker.total + rogue.total
""",
        }, select=["REP063"])
        flagged = by_rule(findings, "REP063")
        assert len(flagged) == 1
        assert "'Rogue'" in flagged[0].message
        assert "SERDE_REGISTRY" in flagged[0].message
        assert "pkg.work.run" in flagged[0].message

    def test_immutable_class_is_clean_without_registration(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/serde.py": REP063_REGISTRY,
            "pkg/work.py": REP063_WORK_PREFIX + """

@shard_entry
def run(shard):
    return Frozen(shard).get()
""",
        }, select=["REP063"])
        assert by_rule(findings, "REP063") == []

    def test_entry_owning_class_must_be_registered(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/serde.py": REP063_REGISTRY,
            "pkg/work.py": """
                from repro.markers import shard_entry


                class Campaign:
                    def __init__(self):
                        self.day = 0

                    @shard_entry
                    def run_day(self):
                        self.day += 1
            """,
        }, select=["REP063"])
        flagged = by_rule(findings, "REP063")
        assert len(flagged) == 1
        assert "'Campaign'" in flagged[0].message

    def test_without_a_registry_the_rule_never_guesses(self, tmp_path):
        findings = lint_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/work.py": REP063_WORK_PREFIX + """

@shard_entry
def run(shard):
    rogue = Rogue()
    rogue.note()
    return rogue.total
""",
        }, select=["REP063"])
        assert by_rule(findings, "REP063") == []


class TestRealTreeRegistry:
    def test_serde_registry_names_real_checkpointable_classes(self):
        # Keep the registry honest: every name must be a real class the
        # checkpoint plane actually carries (state_dict pair or an
        # inline converter in checkpoint.serde).
        from repro.attacks import plane as attacks_plane
        from repro.core import collector, exposure, htmlverify, pipeline
        from repro.core import residual_scan, status, study
        from repro.dns import client, resolver
        from repro.faults import plan, quarantine
        from repro.obs import metrics
        from repro.traffic import defense, plane
        from repro.web import http

        modules = [
            attacks_plane, collector, exposure, htmlverify, pipeline,
            residual_scan, status, study, client, resolver, plan,
            quarantine, metrics, defense, plane, http,
        ]
        for name in SERDE_REGISTRY:
            assert any(
                isinstance(getattr(module, name, None), type)
                for module in modules
            ), f"SERDE_REGISTRY names unknown class {name!r}"

    def test_study_loop_classes_are_registered(self):
        for name in (
            "StudyRuntime", "StudyReport", "DnsRecordCollector",
            "NameserverHarvest", "ExposureTimeline", "FaultPlan",
        ):
            assert name in SERDE_REGISTRY
