"""CLI semantics for ``repro lint``: flags, formats, exit codes."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def project(tmp_path, monkeypatch):
    """A tiny project directory the CLI runs against (cwd-relative)."""
    monkeypatch.chdir(tmp_path)
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "clean.py").write_text(
        '__all__ = ["api"]\n\n\ndef api():\n    return 1\n\n\n'
        "def entry():\n    return api()\n",
        encoding="utf-8",
    )
    return tmp_path


def write_dirty(project):
    (project / "pkg" / "dirty.py").write_text(
        "import random\n", encoding="utf-8"
    )


class TestParser:
    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert not args.paths
        assert args.output_format == "text"
        assert args.baseline == "lint-baseline.txt"
        assert args.update_baseline is False

    def test_bad_format_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["lint", "--format", "xml"])
        assert excinfo.value.code == 2


class TestExitCodes:
    def test_clean_tree_exits_zero(self, project, capsys):
        assert main(["lint", "pkg"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, project, capsys):
        write_dirty(project)
        assert main(["lint", "pkg"]) == 1
        out = capsys.readouterr().out
        assert "pkg/dirty.py:1:0: REP001" in out

    def test_unknown_rule_id_exits_two(self, project, capsys):
        assert main(["lint", "pkg", "--select", "REP999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_exits_two(self, project, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such file or directory" in capsys.readouterr().err


class TestSelectIgnore:
    def test_select_limits_rules(self, project, capsys):
        write_dirty(project)
        assert main(["lint", "pkg", "--select", "REP010"]) == 0

    def test_ignore_suppresses_rule(self, project, capsys):
        write_dirty(project)
        assert main(["lint", "pkg", "--ignore", "REP001,REP022"]) == 0


class TestJsonFormat:
    def test_json_payload_shape(self, project, capsys):
        write_dirty(project)
        assert main(["lint", "pkg", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["count"] == len(payload["findings"]) == 1
        finding = payload["findings"][0]
        assert finding["rule"] == "REP001"
        assert finding["path"] == "pkg/dirty.py"
        assert finding["line"] == 1
        assert finding["fingerprint"]

    def test_json_clean_tree(self, project, capsys):
        assert main(["lint", "pkg", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert payload["findings"] == []


class TestBaselineFlow:
    def test_update_then_clean(self, project, capsys):
        write_dirty(project)
        assert main(["lint", "pkg", "--update-baseline"]) == 0
        assert (project / "lint-baseline.txt").exists()
        capsys.readouterr()
        assert main(["lint", "pkg"]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_new_violation_not_masked_by_baseline(self, project, capsys):
        write_dirty(project)
        main(["lint", "pkg", "--update-baseline"])
        (project / "pkg" / "worse.py").write_text(
            "import secrets\n", encoding="utf-8"
        )
        capsys.readouterr()
        assert main(["lint", "pkg"]) == 1
        assert "REP005" in capsys.readouterr().out

    def test_stale_entries_surface_in_text(self, project, capsys):
        write_dirty(project)
        main(["lint", "pkg", "--update-baseline"])
        (project / "pkg" / "dirty.py").unlink()
        capsys.readouterr()
        assert main(["lint", "pkg"]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_custom_baseline_path(self, project, capsys):
        write_dirty(project)
        target = "allow.txt"
        assert main(
            ["lint", "pkg", "--baseline", target, "--update-baseline"]
        ) == 0
        assert (project / target).exists()
        capsys.readouterr()
        assert main(["lint", "pkg", "--baseline", target]) == 0


class TestDualCoverage:
    """Baseline entries covered by an inline suppression are stale."""

    def write_dual_covered(self, project):
        # The violating line carries its own allow comment; a baseline
        # entry for the same fingerprint is the redundant excuse.
        from repro.analysis import Analyzer

        (project / "pkg" / "dirty.py").write_text(
            "import random  # repro: allow[REP001] -- fixture exception\n",
            encoding="utf-8",
        )
        result = Analyzer(root=str(project), select=["REP001"]).analyze(
            [str(project / "pkg")]
        )
        covered = result.inline_suppressed[0]
        (project / "lint-baseline.txt").write_text(
            f"{covered.rule_id} {covered.path} {covered.fingerprint}"
            "  # redundant copy of the inline justification\n",
            encoding="utf-8",
        )

    def test_report_names_the_inline_coverage(self, project, capsys):
        self.write_dual_covered(project)
        assert main(["lint", "pkg"]) == 0
        out = capsys.readouterr().out
        assert "covered by an inline suppression" in out
        assert "remove the redundant baseline entry" in out
        assert "violation no longer exists" not in out

    def test_json_report_carries_the_reason(self, project, capsys):
        self.write_dual_covered(project)
        main(["lint", "pkg", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        stale = payload["stale_baseline_entries"]
        assert len(stale) == 1
        assert stale[0]["reason"] == "inline"

    def test_update_baseline_drops_and_reports_the_entry(
        self, project, capsys
    ):
        self.write_dual_covered(project)
        assert main(["lint", "pkg", "--update-baseline"]) == 0
        out = capsys.readouterr().out
        assert "1 stale entry(ies) dropped" in out
        text = (project / "lint-baseline.txt").read_text(encoding="utf-8")
        assert "REP001" not in text
        # The regenerated baseline is clean and stays that way.
        assert main(["lint", "pkg"]) == 0
        assert "stale baseline entry" not in capsys.readouterr().out
