"""Shared helpers for the analysis-engine tests."""

import textwrap

import pytest

from repro.analysis import Analyzer


@pytest.fixture
def lint(tmp_path):
    """Lint one source snippet and return its findings.

    Usage: ``lint("import random\\n", select=["REP001"])``.  The snippet
    is written to a file under ``tmp_path`` (name controllable via
    ``filename`` to exercise basename exemptions).
    """

    def _lint(source, filename="snippet.py", select=None, ignore=None):
        path = tmp_path / filename
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        analyzer = Analyzer(root=str(tmp_path), select=select, ignore=ignore)
        return analyzer.run([str(path)])

    return _lint


def rule_ids(findings):
    """The rule IDs of a findings list, in report order."""
    return [finding.rule_id for finding in findings]
