"""Call-graph construction on fixture packages.

Covers the satellite's checklist: cross-module calls, re-exports, and
method dispatch — plus module naming and the summary round-trip the
cache depends on.
"""

import textwrap

import pytest

from repro.analysis import Analyzer, ModuleSummary, ProjectGraph, summarize_module
from repro.analysis.graph import (
    CallRef,
    ClassSummary,
    ExportInfo,
    FunctionSummary,
    ParamInfo,
    module_name_for,
)


def write_package(tmp_path, files):
    """Write ``files`` (relative path -> source) under ``tmp_path``."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def build_graph(tmp_path, files, external=None):
    write_package(tmp_path, files)
    analyzer = Analyzer(root=str(tmp_path), select=["REP001"])
    summaries = [
        summarize_module(analyzer.parse(abspath))
        for abspath in analyzer.discover([str(tmp_path)])
    ]
    return ProjectGraph(summaries, external_references=external)


def edge_set(graph):
    return {
        (caller, callee)
        for caller, callees in graph.call_edges().items()
        for callee in callees
    }


class TestModuleNaming:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("src/repro/obs/bench.py", "repro.obs.bench"),
            ("src/repro/__init__.py", "repro"),
            ("src/repro/core/__init__.py", "repro.core"),
            ("pkg/mod.py", "pkg.mod"),
            ("mod.py", "mod"),
        ],
    )
    def test_module_name_for(self, path, expected):
        assert module_name_for(path) == expected


class TestCallGraph:
    def test_cross_module_call_through_from_import(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """
                from pkg.b import helper

                def caller():
                    return helper()
            """,
            "pkg/b.py": """
                def helper():
                    return 1
            """,
        })
        assert (
            ("pkg.a", "caller"), ("pkg.b", "helper")
        ) in edge_set(graph)

    def test_relative_import_resolution(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """
                from .b import helper

                def caller():
                    return helper()
            """,
            "pkg/b.py": """
                def helper():
                    return 1
            """,
        })
        assert (
            ("pkg.a", "caller"), ("pkg.b", "helper")
        ) in edge_set(graph)

    def test_module_attribute_call(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """
                from pkg import b

                def caller():
                    return b.helper()
            """,
            "pkg/b.py": """
                def helper():
                    return 1
            """,
        })
        assert (
            ("pkg.a", "caller"), ("pkg.b", "helper")
        ) in edge_set(graph)

    def test_reexport_through_package_init(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": """
                from .b import helper

                __all__ = ["helper"]
            """,
            "pkg/a.py": """
                from pkg import helper

                def caller():
                    return helper()
            """,
            "pkg/b.py": """
                def helper():
                    return 1
            """,
        })
        edges = edge_set(graph)
        # The import chain hops through pkg/__init__; the conservative
        # resolution follows the package binding to the definition.
        assert any(
            caller == ("pkg.a", "caller") and callee[1] == "helper"
            for caller, callee in edges
        )

    def test_method_dispatch_on_local_constructor(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/svc.py": """
                class Service:
                    def work(self):
                        return self._impl()

                    def _impl(self):
                        return 1
            """,
            "pkg/use.py": """
                from pkg.svc import Service

                def run():
                    svc = Service()
                    return svc.work()
            """,
        })
        edges = edge_set(graph)
        assert (("pkg.use", "run"), ("pkg.svc", "Service.work")) in edges
        assert (
            ("pkg.svc", "Service.work"), ("pkg.svc", "Service._impl")
        ) in edges

    def test_method_dispatch_through_annotated_param(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/svc.py": """
                class Service:
                    def work(self):
                        return 1
            """,
            "pkg/use.py": """
                from pkg.svc import Service

                def run(svc: Service):
                    return svc.work()
            """,
        })
        assert (
            ("pkg.use", "run"), ("pkg.svc", "Service.work")
        ) in edge_set(graph)

    def test_inherited_method_resolves_to_base(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/base.py": """
                class Base:
                    def shared(self):
                        return 1
            """,
            "pkg/child.py": """
                from pkg.base import Base

                class Child(Base):
                    def go(self):
                        return self.shared()
            """,
        })
        assert (
            ("pkg.child", "Child.go"), ("pkg.base", "Base.shared")
        ) in edge_set(graph)

    def test_ubiquitous_method_names_never_fallback(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/svc.py": """
                class Registry:
                    def get(self, key):
                        return key
            """,
            "pkg/use.py": """
                def run(payload):
                    return payload.get("x")
            """,
        })
        assert not any(
            caller == ("pkg.use", "run") for caller, _ in edge_set(graph)
        )

    def test_unique_method_name_fallback(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/svc.py": """
                class Engine:
                    def run_days(self, n):
                        return n
            """,
            "pkg/use.py": """
                def advance(engine):
                    return engine.run_days(7)
            """,
        })
        assert (
            ("pkg.use", "advance"), ("pkg.svc", "Engine.run_days")
        ) in edge_set(graph)

    def test_nested_def_gets_containment_edge(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """
                def outer():
                    def inner():
                        return 1
                    return inner
            """,
        })
        assert (
            ("pkg.a", "outer"), ("pkg.a", "outer.inner")
        ) in edge_set(graph)


class TestSummaryModel:
    def test_summary_round_trips_through_dict(self, tmp_path):
        write_package(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                import time
                from pkg.other import thing

                __all__ = ["entry"]


                class Holder:
                    def __init__(self, rng):
                        self.rng = rng


                def entry(rng, clock=None):
                    t = time.time()  # repro: allow[REP002] -- fixture
                    child = rng.fork("entry-child")
                    return thing(child, t)
            """,
        })
        analyzer = Analyzer(root=str(tmp_path), select=["REP001"])
        [_, abspath] = analyzer.discover([str(tmp_path)])
        summary = summarize_module(analyzer.parse(abspath))
        rebuilt = ModuleSummary.from_dict(summary.to_dict())
        assert rebuilt.module == "pkg.mod"
        assert rebuilt.bindings == summary.bindings
        assert sorted(rebuilt.functions) == sorted(summary.functions)
        entry = rebuilt.functions["entry"]
        assert [param.name for param in entry.params] == ["rng", "clock"]
        assert entry.taint_reasons[0].kind == "wall-clock"
        assert [fork.label for fork in rebuilt.fork_labels] == ["entry-child"]
        assert [export.name for export in rebuilt.exports] == ["entry"]
        assert [s.line for s in rebuilt.suppressions] == [
            s.line for s in summary.suppressions
        ]
        assert rebuilt.to_dict() == summary.to_dict()

    def test_summary_captures_class_and_calls(self, tmp_path):
        write_package(tmp_path, {
            "mod.py": """
                class Widget:
                    def __init__(self):
                        self.count = 0

                    def poke(self):
                        return self.count


                def use():
                    w = Widget()
                    return w.poke()
            """,
        })
        analyzer = Analyzer(root=str(tmp_path), select=["REP001"])
        [abspath] = analyzer.discover([str(tmp_path)])
        summary = summarize_module(analyzer.parse(abspath))
        klass = summary.classes["Widget"]
        assert isinstance(klass, ClassSummary)
        assert klass.methods == {
            "__init__": "Widget.__init__", "poke": "Widget.poke"
        }
        use = summary.functions["use"]
        assert isinstance(use, FunctionSummary)
        kinds = {(call.kind, call.name) for call in use.calls}
        assert ("name", "Widget") in kinds
        assert ("typed", "poke") in kinds

    def test_dataclass_round_trips(self):
        param = ParamInfo("rng", ("SeededRng",))
        assert ParamInfo.from_dict(param.to_dict()) == param
        assert param.is_rng and param.is_injected
        call = CallRef("obj", "helper", qualifier="mod", line=3)
        assert CallRef.from_dict(call.to_dict()) == call
        export = ExportInfo("name", 2, 4, '__all__ = ["name"]')
        assert ExportInfo.from_dict(export.to_dict()) == export
