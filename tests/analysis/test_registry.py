"""Registry integrity: every exported rule class is registered once.

Also the liveness anchor for the rule packs' public surface: each rule
class is imported and checked here, so REP043 (dead public export)
holds the analysis package to its own standard.
"""

import pytest

from repro.analysis import ProjectRule, Rule, Severity, default_registry
from repro.analysis.clockrules import (
    MagicTimeLiteralRule,
    RawTimestampParameterRule,
)
from repro.analysis.effects import (
    AmbientStateReadRule,
    ImpureMergeHelperRule,
    PureFunctionEffectRule,
    TransitiveImpurityRule,
)
from repro.analysis.determinism import (
    AmbientRandomRule,
    OsEntropyRule,
    SaltedHashRule,
    UnorderedSetIterationRule,
    WallClockRule,
)
from repro.analysis.graphrules import (
    CorrelatedStreamsRule,
    DeadExportRule,
    ShadowedInjectionRule,
    TransitiveNondeterminismRule,
)
from repro.analysis.hygiene import (
    MissingAllRule,
    MutableDefaultRule,
    OverBroadExceptRule,
)
from repro.analysis.robustness import DirectStateWriteRule, UnboundedRetryRule
from repro.analysis.shardrules import (
    OrderSensitiveMergeRule,
    RngStreamEscapeRule,
    SharedMutableStateRule,
    UnregisteredCheckpointStateRule,
)
from repro.analysis.suppressions import StaleSuppressionRule

EXPORTED_RULES = {
    "REP001": AmbientRandomRule,
    "REP002": WallClockRule,
    "REP003": UnorderedSetIterationRule,
    "REP004": SaltedHashRule,
    "REP005": OsEntropyRule,
    "REP010": MagicTimeLiteralRule,
    "REP011": RawTimestampParameterRule,
    "REP020": MutableDefaultRule,
    "REP021": OverBroadExceptRule,
    "REP022": MissingAllRule,
    "REP030": UnboundedRetryRule,
    "REP031": DirectStateWriteRule,
    "REP040": TransitiveNondeterminismRule,
    "REP041": CorrelatedStreamsRule,
    "REP042": ShadowedInjectionRule,
    "REP043": DeadExportRule,
    "REP050": StaleSuppressionRule,
    "REP060": SharedMutableStateRule,
    "REP061": OrderSensitiveMergeRule,
    "REP062": RngStreamEscapeRule,
    "REP063": UnregisteredCheckpointStateRule,
    "REP070": PureFunctionEffectRule,
    "REP071": TransitiveImpurityRule,
    "REP072": AmbientStateReadRule,
    "REP073": ImpureMergeHelperRule,
}


class TestRegistry:
    def test_every_exported_rule_is_registered_under_its_id(self):
        registry = default_registry()
        for rule_id, rule_cls in EXPORTED_RULES.items():
            assert registry.get(rule_id) is rule_cls

    def test_no_unexpected_rules(self):
        assert set(default_registry().ids()) == set(EXPORTED_RULES)

    @pytest.mark.parametrize(
        "rule_id", sorted(EXPORTED_RULES), ids=sorted(EXPORTED_RULES)
    )
    def test_metadata_is_complete(self, rule_id):
        rule_cls = EXPORTED_RULES[rule_id]
        assert issubclass(rule_cls, Rule)
        assert rule_cls.rule_id == rule_id
        assert rule_cls.title
        assert isinstance(rule_cls.severity, Severity)

    def test_project_rules_are_the_graph_decades(self):
        project_ids = {
            rule_id
            for rule_id, rule_cls in EXPORTED_RULES.items()
            if issubclass(rule_cls, ProjectRule)
        }
        assert project_ids == {
            "REP040", "REP041", "REP042", "REP043",
            "REP060", "REP061", "REP062", "REP063",
            "REP070", "REP071", "REP072", "REP073",
        }
