"""The self-hosting gate: ``src/repro`` must lint clean.

This is the enforcement point for the repo's determinism guarantees.  If
this test fails, either fix the reported finding or — for a genuinely
intended exception — add an annotated entry to ``lint-baseline.txt``.
Injecting e.g. ``random.random()`` into any ``core/`` module makes this
test fail with a REP001 finding naming the file and line.
"""

from pathlib import Path

import repro
from repro.analysis import Analyzer, Baseline

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
PACKAGE_DIR = REPO_ROOT / "src" / "repro"
BASELINE_PATH = REPO_ROOT / "lint-baseline.txt"


def run_selfhost():
    analyzer = Analyzer(root=str(REPO_ROOT))
    findings = analyzer.run([str(PACKAGE_DIR)])
    baseline = Baseline.load(str(BASELINE_PATH))
    return findings, baseline


class TestSelfHost:
    def test_package_layout_is_where_we_expect(self):
        assert PACKAGE_DIR.is_dir(), PACKAGE_DIR

    def test_no_new_findings(self):
        findings, baseline = run_selfhost()
        new, _ = baseline.split(findings)
        report = "\n".join(finding.render() for finding in new)
        assert not new, (
            f"repro lint found {len(new)} non-baselined finding(s) in "
            f"src/repro — fix them or add annotated baseline entries:\n"
            f"{report}"
        )

    def test_no_stale_baseline_entries(self):
        findings, baseline = run_selfhost()
        stale = baseline.stale_entries(findings)
        listing = "\n".join(entry.render() for entry in stale)
        assert not stale, (
            f"{len(stale)} baseline entry(ies) no longer match any "
            f"finding — prune them from lint-baseline.txt:\n{listing}"
        )

    def test_every_baseline_entry_is_annotated(self):
        _, baseline = run_selfhost()
        unannotated = [
            entry for entry in baseline.entries() if not entry.comment
        ]
        assert not unannotated, (
            "baseline entries need a '# why' comment: "
            + ", ".join(e.fingerprint for e in unannotated)
        )

    def test_injected_hazard_is_caught(self, tmp_path):
        """REP001 names the file and line of an injected random call."""
        victim = PACKAGE_DIR / "core" / "exposure.py"
        staged_pkg = tmp_path / "core"
        staged_pkg.mkdir()
        staged = staged_pkg / "exposure.py"
        source = victim.read_text(encoding="utf-8")
        staged.write_text(
            source + "\nimport random\nJITTER = random.random()\n",
            encoding="utf-8",
        )
        findings = Analyzer(root=str(tmp_path), select=["REP001"]).run(
            [str(staged)]
        )
        assert [f.rule_id for f in findings] == ["REP001", "REP001"]
        assert findings[0].path == "core/exposure.py"
        assert findings[0].line == len(source.splitlines()) + 2
