"""Effect-summary inference: the REP07x fixpoint over fixture trees.

These tests drive :func:`repro.analysis.effects.infer_effects` directly
(no rules, no declarations) to pin down the effect lattice itself:
which statements produce which atoms, which surfaces are sanitized, and
that the per-kind fixpoint is deterministic and carries usable witness
chains.  The rule-level behavior lives in ``test_effectrules.py``.
"""

from repro.analysis.effects import (
    EFFECT_KINDS,
    EffectsResult,
    infer_effects,
)

from .test_graph import build_graph


def kinds_of(graph, module, qualname):
    return infer_effects(graph).kinds((module, qualname))


class TestDirectAtoms:
    def test_decorator_free_helper_called_from_pure_code_is_clean(
        self, tmp_path
    ):
        # Purity needs no decorator to be *inferred*: a helper that only
        # computes has an empty summary whether or not anyone declares.
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/calc.py": """
                from repro.markers import pure_function


                def _scale(value, factor):
                    return value * factor


                @pure_function
                def verdict(value):
                    return _scale(value, 3) + 1
            """,
        })
        assert kinds_of(graph, "pkg.calc", "_scale") == ()
        assert kinds_of(graph, "pkg.calc", "verdict") == ()

    def test_mutation_through_self_is_writes_self(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/counter.py": """
                class Counter:
                    def __init__(self):
                        self.total = 0

                    def bump(self):
                        self.total += 1
                        return self.total
            """,
        })
        # __init__ constructs fresh state — not an effect; bump mutates.
        assert kinds_of(graph, "pkg.counter", "Counter.__init__") == ()
        assert kinds_of(graph, "pkg.counter", "Counter.bump") == (
            "writes-self",
        )

    def test_injected_rng_draw_is_sanitized(self, tmp_path):
        # A draw through an injected SeededRng parameter is the
        # sanctioned way to consume randomness — no draws-rng atom.
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/draws.py": """
                def jitter(rng, base):
                    return base + rng.uniform(0.0, 1.0)
            """,
        })
        assert "draws-rng" not in kinds_of(graph, "pkg.draws", "jitter")

    def test_ambient_rng_draw_is_flagged(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/draws.py": """
                import random


                def jitter(base):
                    return base + random.random()
            """,
        })
        assert "draws-rng" in kinds_of(graph, "pkg.draws", "jitter")

    def test_closure_capturing_mutable_dict_is_writes_captured(
        self, tmp_path
    ):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/closures.py": """
                def make_counter():
                    seen = {}

                    def note(key):
                        seen[key] = True
                        return len(seen)

                    return note
            """,
        })
        assert "writes-captured" in kinds_of(
            graph, "pkg.closures", "make_counter.note"
        )
        # The write outlives note() but stays inside make_counter's
        # frame: the maker itself inherits the kind transitively via
        # the implicit contained edge.
        result = infer_effects(graph)
        trace = result.trace(
            ("pkg.closures", "make_counter"), "writes-captured"
        )
        assert trace is not None
        assert trace.carrier == ("pkg.closures", "make_counter.note")

    def test_module_global_read_and_write(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/state.py": """
                CACHE = {}


                def lookup(key):
                    return CACHE.get(key)


                def remember(key, value):
                    CACHE[key] = value
            """,
        })
        assert "reads-global" in kinds_of(graph, "pkg.state", "lookup")
        assert "writes-global" in kinds_of(graph, "pkg.state", "remember")

    def test_local_accumulator_fold_is_clean(self, tmp_path):
        # The merge_payloads shape: mutating a container the function
        # itself created is not an effect — nothing outlives the call.
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/fold.py": """
                def merge(payloads):
                    totals = {}
                    for payload in payloads:
                        for key, value in payload.items():
                            totals[key] = totals.get(key, 0) + value
                    return totals
            """,
        })
        assert "writes-global" not in kinds_of(graph, "pkg.fold", "merge")
        assert "writes-captured" not in kinds_of(graph, "pkg.fold", "merge")

    def test_print_is_performs_io(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/noisy.py": """
                def report(value):
                    print(value)
                    return value
            """,
        })
        assert "performs-io" in kinds_of(graph, "pkg.noisy", "report")


class TestPropagation:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/chain.py": """
            LEDGER = []


            def sink(value):
                LEDGER.append(value)


            def middle(value):
                sink(value)


            def top(value):
                middle(value)
        """,
    }

    def test_witness_chain_runs_caller_to_carrier(self, tmp_path):
        graph = build_graph(tmp_path, self.FILES)
        result = infer_effects(graph)
        trace = result.trace(("pkg.chain", "top"), "writes-global")
        assert trace is not None and not trace.is_direct
        assert trace.chain == (
            ("pkg.chain", "top"),
            ("pkg.chain", "middle"),
            ("pkg.chain", "sink"),
        )
        assert trace.carrier == ("pkg.chain", "sink")
        assert result.trace(("pkg.chain", "sink"), "writes-global").is_direct

    def test_calls_unknown_stays_local(self, tmp_path):
        # Unknown-receiver calls are data, not a propagated hazard:
        # the caller of a function with an unknown call stays clean.
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/opaque.py": """
                def probe(conn):
                    return conn.fetchall()


                def wrapper(conn):
                    return probe(conn)
            """,
        })
        assert "calls-unknown" in kinds_of(graph, "pkg.opaque", "probe")
        assert "calls-unknown" not in kinds_of(graph, "pkg.opaque", "wrapper")

    def test_fixpoint_is_deterministic_across_builds(self, tmp_path):
        first = infer_effects(build_graph(tmp_path / "a", self.FILES))
        second = infer_effects(build_graph(tmp_path / "b", self.FILES))
        assert first.traces.keys() == second.traces.keys()
        for key in first.traces:
            assert first.traces[key] == second.traces[key]

    def test_result_is_memoized_on_the_graph(self, tmp_path):
        graph = build_graph(tmp_path, self.FILES)
        result = infer_effects(graph)
        assert isinstance(result, EffectsResult)
        assert infer_effects(graph) is result

    def test_kinds_report_in_lattice_order(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/multi.py": """
                import random

                LEDGER = []


                def chaos(value):
                    LEDGER.append(random.choice([value]))
                    print(value)
            """,
        })
        kinds = kinds_of(graph, "pkg.multi", "chaos")
        assert set(kinds) >= {"writes-global", "draws-rng", "performs-io"}
        positions = [EFFECT_KINDS.index(kind) for kind in kinds]
        assert positions == sorted(positions)
