"""Tests for IPv4 addresses, prefixes, and the allocator."""

import pytest

from repro.errors import AddressError, AllocationError
from repro.net.ipaddr import AddressAllocator, IPv4Address, IPv4Prefix


class TestIPv4Address:
    def test_parse_dotted_quad(self):
        assert IPv4Address("1.2.3.4").value == (1 << 24) + (2 << 16) + (3 << 8) + 4

    def test_round_trip(self):
        assert str(IPv4Address("203.0.113.7")) == "203.0.113.7"

    def test_from_int(self):
        assert str(IPv4Address(0)) == "0.0.0.0"
        assert str(IPv4Address((1 << 32) - 1)) == "255.255.255.255"

    def test_copy_constructor(self):
        a = IPv4Address("10.0.0.1")
        assert IPv4Address(a) == a

    def test_out_of_range_int(self):
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)
        with pytest.raises(AddressError):
            IPv4Address(-1)

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "1.2.3.256", "a.b.c.d", "", "1..2.3"]
    )
    def test_malformed_strings(self, bad):
        with pytest.raises(AddressError):
            IPv4Address(bad)

    def test_ordering(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")
        assert IPv4Address("9.255.255.255") <= IPv4Address("10.0.0.0")

    def test_hashable_and_equal(self):
        assert len({IPv4Address("1.1.1.1"), IPv4Address("1.1.1.1")}) == 1

    def test_not_equal_to_other_types(self):
        assert IPv4Address("1.1.1.1") != "1.1.1.1a"
        assert IPv4Address("1.1.1.1") != 17

    def test_addition(self):
        assert IPv4Address("10.0.0.255") + 1 == IPv4Address("10.0.1.0")


class TestIPv4Prefix:
    def test_parse(self):
        prefix = IPv4Prefix("198.51.100.0/24")
        assert str(prefix) == "198.51.100.0/24"
        assert prefix.length == 24
        assert prefix.num_addresses == 256

    def test_host_bits_cleared(self):
        assert IPv4Prefix("10.0.0.7/8") == IPv4Prefix("10.0.0.0/8")

    def test_missing_length_rejected(self):
        with pytest.raises(AddressError):
            IPv4Prefix("10.0.0.0")

    def test_bad_length_rejected(self):
        with pytest.raises(AddressError):
            IPv4Prefix("10.0.0.0/33")

    def test_contains_address(self):
        prefix = IPv4Prefix("192.0.2.0/24")
        assert "192.0.2.99" in prefix
        assert "192.0.3.0" not in prefix

    def test_slash_zero_contains_everything(self):
        assert "255.1.2.3" in IPv4Prefix("0.0.0.0/0")

    def test_slash_32_is_single_address(self):
        prefix = IPv4Prefix("10.1.2.3/32")
        assert prefix.num_addresses == 1
        assert "10.1.2.3" in prefix
        assert "10.1.2.4" not in prefix

    def test_contains_prefix(self):
        outer = IPv4Prefix("10.0.0.0/8")
        inner = IPv4Prefix("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)

    def test_overlaps(self):
        a = IPv4Prefix("10.0.0.0/8")
        b = IPv4Prefix("10.200.0.0/16")
        c = IPv4Prefix("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_subnets(self):
        halves = list(IPv4Prefix("10.0.0.0/8").subnets(9))
        assert [str(h) for h in halves] == ["10.0.0.0/9", "10.128.0.0/9"]

    def test_subnets_bad_length(self):
        with pytest.raises(AddressError):
            list(IPv4Prefix("10.0.0.0/16").subnets(8))

    def test_address_at(self):
        prefix = IPv4Prefix("192.0.2.0/30")
        assert str(prefix.address_at(3)) == "192.0.2.3"
        with pytest.raises(AddressError):
            prefix.address_at(4)

    def test_addresses_iteration(self):
        addresses = list(IPv4Prefix("192.0.2.0/30").addresses())
        assert len(addresses) == 4
        assert addresses[0] == IPv4Address("192.0.2.0")

    def test_hash_and_equality(self):
        assert len({IPv4Prefix("10.0.0.0/8"), IPv4Prefix("10.1.0.0/8")}) == 1


class TestAddressAllocator:
    def test_sequential_addresses(self):
        alloc = AddressAllocator("10.0.0.0/30")
        ips = alloc.allocate_addresses(4)
        assert [str(ip) for ip in ips] == [
            "10.0.0.0", "10.0.0.1", "10.0.0.2", "10.0.0.3",
        ]

    def test_exhaustion(self):
        alloc = AddressAllocator("10.0.0.0/31")
        alloc.allocate_addresses(2)
        with pytest.raises(AllocationError):
            alloc.allocate_address()

    def test_prefixes_disjoint(self):
        alloc = AddressAllocator("10.0.0.0/16")
        a = alloc.allocate_prefix(24)
        b = alloc.allocate_prefix(24)
        assert not a.overlaps(b)

    def test_prefix_alignment_after_single_address(self):
        alloc = AddressAllocator("10.0.0.0/16")
        alloc.allocate_address()  # cursor now unaligned
        prefix = alloc.allocate_prefix(24)
        assert prefix.network.value % prefix.num_addresses == 0

    def test_prefix_larger_than_block_rejected(self):
        alloc = AddressAllocator("10.0.0.0/24")
        with pytest.raises(AllocationError):
            alloc.allocate_prefix(16)

    def test_prefix_exhaustion(self):
        alloc = AddressAllocator("10.0.0.0/24")
        alloc.allocate_prefix(25)
        alloc.allocate_prefix(25)
        with pytest.raises(AllocationError):
            alloc.allocate_prefix(25)

    def test_remaining_decreases(self):
        alloc = AddressAllocator("10.0.0.0/24")
        before = alloc.remaining
        alloc.allocate_address()
        assert alloc.remaining == before - 1
