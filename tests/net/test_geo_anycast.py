"""Tests for geography and anycast catchment."""

import pytest

from repro.errors import ConfigurationError
from repro.net.anycast import AnycastNetwork
from repro.net.geo import (
    GeoLocation,
    PAPER_VANTAGE_REGIONS,
    PointOfPresence,
    Region,
    WELL_KNOWN_REGIONS,
    great_circle_km,
    region,
)


class TestGeo:
    def test_great_circle_zero_for_same_point(self):
        loc = GeoLocation(10.0, 20.0)
        assert great_circle_km(loc, loc) == pytest.approx(0.0)

    def test_great_circle_known_distance(self):
        # London ↔ Tokyo is roughly 9,560 km.
        d = region("london").distance_to(region("tokyo"))
        assert 9000 < d < 10100

    def test_distance_symmetric(self):
        a, b = region("oregon"), region("sydney")
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_invalid_latitude(self):
        with pytest.raises(ConfigurationError):
            GeoLocation(91.0, 0.0)

    def test_invalid_longitude(self):
        with pytest.raises(ConfigurationError):
            GeoLocation(0.0, -181.0)

    def test_paper_vantage_regions_exist(self):
        for name in PAPER_VANTAGE_REGIONS:
            assert name in WELL_KNOWN_REGIONS

    def test_unknown_region_raises(self):
        with pytest.raises(ConfigurationError):
            region("atlantis")


def _network(*names: str) -> AnycastNetwork:
    pops = [PointOfPresence(f"pop-{n}", region(n)) for n in names]
    return AnycastNetwork("test", pops)


class TestAnycast:
    def test_needs_pops(self):
        with pytest.raises(ConfigurationError):
            AnycastNetwork("empty", [])

    def test_duplicate_pop_ids_rejected(self):
        pop = PointOfPresence("x", region("london"))
        with pytest.raises(ConfigurationError):
            AnycastNetwork("dup", [pop, pop])

    def test_catchment_is_nearest(self):
        network = _network("london", "tokyo")
        assert network.catchment(region("frankfurt")).pop_id == "pop-london"
        assert network.catchment(region("seoul")).pop_id == "pop-tokyo"

    def test_catchment_stable(self):
        network = _network("london", "tokyo", "oregon")
        first = network.catchment(region("sydney"))
        assert all(
            network.catchment(region("sydney")).pop_id == first.pop_id
            for _ in range(5)
        )

    def test_own_region_maps_to_own_pop(self):
        network = _network("london", "tokyo", "sydney")
        assert network.catchment(region("sydney")).pop_id == "pop-sydney"

    def test_distinct_catchments_for_paper_vantage_points(self):
        # A global PoP deployment separates the paper's five VPs.
        network = _network(*PAPER_VANTAGE_REGIONS)
        clients = [region(n) for n in PAPER_VANTAGE_REGIONS]
        assert network.distinct_catchments(clients) == 5

    def test_single_pop_captures_everything(self):
        network = _network("london")
        clients = [region(n) for n in PAPER_VANTAGE_REGIONS]
        assert network.distinct_catchments(clients) == 1

    def test_load_share_sums_to_one(self):
        network = _network("london", "tokyo", "oregon")
        clients = [region(n) for n in WELL_KNOWN_REGIONS]
        shares = network.load_share(clients)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_catchment_map_keys(self):
        network = _network("london", "tokyo")
        clients = [region("paris"), region("seoul")]
        mapping = network.catchment_map(clients)
        assert set(mapping) == {"paris", "seoul"}
