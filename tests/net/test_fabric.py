"""Tests for the network fabric (IP → handler dispatch, anycast)."""

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.net.anycast import AnycastNetwork
from repro.net.fabric import NetworkFabric
from repro.net.geo import PointOfPresence, region


class _Server:
    def __init__(self, tag):
        self.tag = tag


class TestUnicastDns:
    def test_register_and_lookup(self):
        fabric = NetworkFabric()
        server = _Server("a")
        fabric.register_dns("10.0.0.1", server)
        assert fabric.dns_server_at("10.0.0.1") is server

    def test_unbound_address_returns_none(self):
        assert NetworkFabric().dns_server_at("10.0.0.1") is None

    def test_double_bind_rejected(self):
        fabric = NetworkFabric()
        fabric.register_dns("10.0.0.1", _Server("a"))
        with pytest.raises(ConfigurationError):
            fabric.register_dns("10.0.0.1", _Server("b"))

    def test_unregister(self):
        fabric = NetworkFabric()
        fabric.register_dns("10.0.0.1", _Server("a"))
        fabric.unregister_dns("10.0.0.1")
        assert fabric.dns_server_at("10.0.0.1") is None

    def test_unregister_unbound_raises(self):
        with pytest.raises(RoutingError):
            NetworkFabric().unregister_dns("10.0.0.1")


def _two_pop_network():
    pops = [
        PointOfPresence("pop-london", region("london")),
        PointOfPresence("pop-tokyo", region("tokyo")),
    ]
    return AnycastNetwork("net", pops)


class TestAnycastDns:
    def test_region_selects_pop(self):
        fabric = NetworkFabric()
        network = _two_pop_network()
        london, tokyo = _Server("london"), _Server("tokyo")
        fabric.register_dns_anycast(
            "10.0.0.1", network, {"pop-london": london, "pop-tokyo": tokyo}
        )
        assert fabric.dns_server_at("10.0.0.1", region("paris")) is london
        assert fabric.dns_server_at("10.0.0.1", region("seoul")) is tokyo

    def test_no_region_deterministic_fallback(self):
        fabric = NetworkFabric()
        network = _two_pop_network()
        servers = {"pop-london": _Server("l"), "pop-tokyo": _Server("t")}
        fabric.register_dns_anycast("10.0.0.1", network, servers)
        picks = {fabric.dns_server_at("10.0.0.1").tag for _ in range(5)}
        assert len(picks) == 1

    def test_missing_pop_server_rejected(self):
        fabric = NetworkFabric()
        network = _two_pop_network()
        with pytest.raises(ConfigurationError):
            fabric.register_dns_anycast("10.0.0.1", network, {"pop-london": _Server("l")})

    def test_anycast_conflicts_with_unicast(self):
        fabric = NetworkFabric()
        fabric.register_dns("10.0.0.1", _Server("a"))
        with pytest.raises(ConfigurationError):
            fabric.register_dns_anycast(
                "10.0.0.1",
                _two_pop_network(),
                {"pop-london": _Server("l"), "pop-tokyo": _Server("t")},
            )

    def test_unregister_anycast(self):
        fabric = NetworkFabric()
        fabric.register_dns_anycast(
            "10.0.0.1",
            _two_pop_network(),
            {"pop-london": _Server("l"), "pop-tokyo": _Server("t")},
        )
        fabric.unregister_dns("10.0.0.1")
        assert fabric.dns_server_at("10.0.0.1") is None


class TestHttpPlane:
    def test_register_and_lookup(self):
        fabric = NetworkFabric()
        handler = _Server("web")
        fabric.register_http("10.0.0.2", handler)
        assert fabric.http_handler_at("10.0.0.2") is handler

    def test_http_and_dns_planes_independent(self):
        fabric = NetworkFabric()
        fabric.register_dns("10.0.0.1", _Server("dns"))
        fabric.register_http("10.0.0.1", _Server("http"))
        assert fabric.dns_server_at("10.0.0.1").tag == "dns"
        assert fabric.http_handler_at("10.0.0.1").tag == "http"

    def test_http_unregister(self):
        fabric = NetworkFabric()
        fabric.register_http("10.0.0.2", _Server("web"))
        fabric.unregister_http("10.0.0.2")
        assert fabric.http_handler_at("10.0.0.2") is None

    def test_http_unregister_unbound_raises(self):
        with pytest.raises(RoutingError):
            NetworkFabric().unregister_http("10.0.0.2")

    def test_http_double_bind_rejected(self):
        fabric = NetworkFabric()
        fabric.register_http("10.0.0.2", _Server("a"))
        with pytest.raises(ConfigurationError):
            fabric.register_http("10.0.0.2", _Server("b"))

    def test_http_anycast(self):
        fabric = NetworkFabric()
        network = _two_pop_network()
        london, tokyo = _Server("l"), _Server("t")
        fabric.register_http_anycast(
            "10.0.0.3", network, {"pop-london": london, "pop-tokyo": tokyo}
        )
        assert fabric.http_handler_at("10.0.0.3", region("madrid")) is london
