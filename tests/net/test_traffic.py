"""Tests for the volumetric traffic and capacity model."""

import pytest

from repro.errors import ConfigurationError
from repro.net.traffic import CapacityTarget, TrafficFlow, combine_flows


class TestTrafficFlow:
    def test_totals(self):
        flow = TrafficFlow(legitimate_gbps=2.0, attack_gbps=8.0)
        assert flow.total_gbps == pytest.approx(10.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficFlow(legitimate_gbps=-1.0)
        with pytest.raises(ConfigurationError):
            TrafficFlow(attack_gbps=-0.1)

    def test_scaled(self):
        flow = TrafficFlow(2.0, 4.0).scaled(0.5)
        assert flow.legitimate_gbps == pytest.approx(1.0)
        assert flow.attack_gbps == pytest.approx(2.0)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficFlow(1.0, 1.0).scaled(-1)

    def test_combine(self):
        combined = combine_flows([TrafficFlow(1, 2), TrafficFlow(3, 4)])
        assert combined.legitimate_gbps == pytest.approx(4.0)
        assert combined.attack_gbps == pytest.approx(6.0)

    def test_combine_empty(self):
        assert combine_flows([]).total_gbps == 0.0


class TestCapacityTarget:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CapacityTarget("x", 0.0)

    def test_under_capacity_everything_delivered(self):
        target = CapacityTarget("origin", 10.0)
        report = target.offer(TrafficFlow(2.0, 3.0))
        assert not report.saturated
        assert report.availability == pytest.approx(1.0)
        assert report.dropped_gbps == pytest.approx(0.0)

    def test_saturation_proportional_loss(self):
        target = CapacityTarget("origin", 10.0)
        report = target.offer(TrafficFlow(legitimate_gbps=10.0, attack_gbps=90.0))
        assert report.saturated
        # Only 10% gets through, split proportionally.
        assert report.delivered_legitimate_gbps == pytest.approx(1.0)
        assert report.delivered_attack_gbps == pytest.approx(9.0)
        assert report.availability == pytest.approx(0.1)
        assert report.dropped_gbps == pytest.approx(90.0)

    def test_exact_capacity_not_saturated(self):
        target = CapacityTarget("origin", 10.0)
        assert not target.offer(TrafficFlow(5.0, 5.0)).saturated

    def test_availability_with_no_legitimate_traffic(self):
        target = CapacityTarget("origin", 1.0)
        report = target.offer(TrafficFlow(0.0, 100.0))
        assert report.availability == 1.0  # vacuous

    def test_survives(self):
        target = CapacityTarget("origin", 10.0)
        assert target.survives(TrafficFlow(1.0, 5.0))
        assert not target.survives(TrafficFlow(1.0, 50.0))
