"""Tests for the AS registry and the RouteViews LPM database."""

import pytest

from repro.errors import ConfigurationError
from repro.net.asn import AsRegistry, AutonomousSystem
from repro.net.ipaddr import IPv4Prefix
from repro.net.routeviews import RouteViewsDb


class TestAsRegistry:
    def test_register_and_get(self):
        registry = AsRegistry()
        asys = registry.register(13335, "cloudflare", ["1.0.0.0/24"])
        assert registry.get(13335) is asys
        assert registry.organisation_of(13335) == "cloudflare"

    def test_duplicate_asn_rejected(self):
        registry = AsRegistry()
        registry.register(1, "a")
        with pytest.raises(ConfigurationError):
            registry.register(1, "b")

    def test_invalid_asn_rejected(self):
        with pytest.raises(ConfigurationError):
            AutonomousSystem(0, "x")

    def test_org_lookups(self):
        registry = AsRegistry()
        registry.register(10, "org-a", ["10.0.0.0/16"])
        registry.register(11, "org-a", ["10.1.0.0/16"])
        registry.register(20, "org-b")
        assert registry.numbers_of("org-a") == [10, 11]
        assert len(registry.prefixes_of("org-a")) == 2
        assert registry.prefixes_of("missing") == []

    def test_announce_after_registration(self):
        registry = AsRegistry()
        asys = registry.register(10, "org-a")
        asys.announce("192.0.2.0/24")
        assert IPv4Prefix("192.0.2.0/24") in registry.prefixes_of("org-a")

    def test_all_announcements(self):
        registry = AsRegistry()
        registry.register(10, "a", ["10.0.0.0/8"])
        registry.register(20, "b", ["20.0.0.0/8", "21.0.0.0/8"])
        assert len(registry.all_announcements()) == 3

    def test_iteration_and_len(self):
        registry = AsRegistry()
        registry.register(10, "a")
        registry.register(20, "b")
        assert len(registry) == 2
        assert {a.number for a in registry} == {10, 20}


class TestRouteViewsDb:
    def test_exact_lookup(self):
        db = RouteViewsDb.from_announcements([("10.0.0.0/8", 100)])
        assert db.lookup("10.1.2.3") == 100
        assert db.lookup("11.0.0.0") is None

    def test_longest_prefix_wins(self):
        db = RouteViewsDb.from_announcements(
            [("10.0.0.0/8", 100), ("10.5.0.0/16", 200)]
        )
        assert db.lookup("10.5.1.1") == 200
        assert db.lookup("10.6.1.1") == 100

    def test_lookup_prefix_returns_match(self):
        db = RouteViewsDb.from_announcements([("10.0.0.0/8", 100)])
        matched = db.lookup_prefix("10.9.9.9")
        assert matched == (IPv4Prefix("10.0.0.0/8"), 100)

    def test_default_route(self):
        db = RouteViewsDb.from_announcements([("0.0.0.0/0", 1), ("10.0.0.0/8", 2)])
        assert db.lookup("99.0.0.1") == 1
        assert db.lookup("10.0.0.1") == 2

    def test_overwrite_announcement(self):
        db = RouteViewsDb()
        db.announce("10.0.0.0/8", 100)
        db.announce("10.0.0.0/8", 200)
        assert db.lookup("10.0.0.1") == 200
        assert len(db) == 1

    def test_withdraw(self):
        db = RouteViewsDb.from_announcements(
            [("10.0.0.0/8", 100), ("10.5.0.0/16", 200)]
        )
        assert db.withdraw("10.5.0.0/16")
        assert db.lookup("10.5.1.1") == 100
        assert len(db) == 1

    def test_withdraw_absent(self):
        db = RouteViewsDb()
        assert not db.withdraw("10.0.0.0/8")
        db.announce("10.0.0.0/8", 1)
        assert not db.withdraw("10.0.0.0/16")

    def test_from_registry(self):
        registry = AsRegistry()
        registry.register(13335, "cloudflare", ["104.16.0.0/12"])
        registry.register(19551, "incapsula", ["45.60.0.0/16"])
        db = RouteViewsDb.from_registry(registry)
        assert db.lookup("104.16.1.1") == 13335
        assert db.lookup("45.60.2.2") == 19551

    def test_slash32_announcement(self):
        db = RouteViewsDb.from_announcements([("10.0.0.5/32", 7)])
        assert db.lookup("10.0.0.5") == 7
        assert db.lookup("10.0.0.6") is None
