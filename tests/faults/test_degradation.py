"""Graceful degradation: UNMEASURED propagation, carry-forward diffing,
and nameserver quarantine semantics."""

import pytest

from repro.clock import SECONDS_PER_HOUR, SimulationClock
from repro.core.behaviors import BehaviorDetector
from repro.core.collector import DnsRecordCollector, DomainSnapshot
from repro.core.matching import ProviderMatcher
from repro.core.status import DpsObservation, DpsStatus, StatusDeterminer
from repro.dns.message import Rcode
from repro.dns.name import DomainName
from repro.dns.records import RecordType
from repro.dns.resolver import ResolutionResult
from repro.errors import ConfigurationError
from repro.faults import FaultKind, FaultPlan, FaultRule, NameserverQuarantine
from repro.net.ipaddr import IPv4Address
from repro.world.admin import BehaviorKind


def obs(www, day, status, provider=None):
    return DpsObservation(www=www, day=day, status=status, provider=provider)


class TestUnmeasuredStatus:
    def test_unmeasured_snapshot_becomes_unmeasured_observation(self, shared_world):
        determiner = StatusDeterminer(
            ProviderMatcher(shared_world.specs, shared_world.routeviews)
        )
        snapshot = DomainSnapshot(
            day=3,
            www=DomainName("www.example.com"),
            a_records=(),
            cnames=(),
            ns_targets=(),
            rcode=Rcode.SERVFAIL,
            measured=False,
        )
        observation = determiner.observe(snapshot)
        assert observation.status == DpsStatus.UNMEASURED
        assert not observation.is_measured
        assert observation.provider is None

    def test_gave_up_resolution_marks_snapshot_unmeasured(self):
        www = DomainName("www.example.com")
        gave_up = ResolutionResult(www, RecordType.A, Rcode.SERVFAIL, gave_up=True)
        clean = ResolutionResult(www.apex, RecordType.NS, Rcode.NOERROR)
        snapshot = DnsRecordCollector._snapshot_from_results(www, 1, gave_up, clean)
        assert not snapshot.measured
        # Either leg giving up taints the whole site-day.
        snapshot = DnsRecordCollector._snapshot_from_results(www, 1, clean, gave_up)
        assert not snapshot.measured

    def test_collector_counts_partial_days(self, world_factory):
        world = world_factory(population_size=60, seed=13)
        world.install_faults(
            FaultPlan(
                rng=world.rng.fork("degradation-test"),
                clock=world.clock,
                rules=[FaultRule(FaultKind.OUTAGE, plane="dns")],
            )
        )
        resolver = world.make_resolver()
        collector = DnsRecordCollector(resolver)
        snapshot = collector.collect(
            [str(site.www) for site in world.population[:10]], day=0
        )
        assert snapshot.is_partial
        assert snapshot.unmeasured_count == 10
        assert resolver.metrics.value("collector.partial_days") == 1
        assert resolver.metrics.value("collector.unmeasured") == 10


class TestCarryForwardDiffing:
    def test_hole_does_not_fabricate_leave_join(self):
        days = [
            {"a": obs("a", 0, DpsStatus.ON, "cloudflare")},
            {"a": obs("a", 1, DpsStatus.UNMEASURED)},
            {"a": obs("a", 2, DpsStatus.ON, "cloudflare")},
        ]
        assert BehaviorDetector().diff_series(days, first_day=1) == []

    def test_transition_across_hole_attributed_to_observed_day(self):
        days = [
            {"a": obs("a", 0, DpsStatus.ON, "cloudflare")},
            {"a": obs("a", 1, DpsStatus.UNMEASURED)},
            {"a": obs("a", 2, DpsStatus.NONE)},
        ]
        behaviors = BehaviorDetector().diff_series(days, first_day=1)
        assert len(behaviors) == 1
        assert behaviors[0].kind is BehaviorKind.LEAVE
        assert behaviors[0].day == 2  # first_day + index - 1

    def test_no_holes_matches_pairwise_diffing(self):
        days = [
            {"a": obs("a", 0, DpsStatus.NONE), "b": obs("b", 0, DpsStatus.ON, "incapsula")},
            {"a": obs("a", 1, DpsStatus.ON, "cloudflare"), "b": obs("b", 1, DpsStatus.OFF, "incapsula")},
            {"a": obs("a", 2, DpsStatus.ON, "cloudflare"), "b": obs("b", 2, DpsStatus.NONE)},
        ]
        detector = BehaviorDetector()
        series = detector.diff_series(days, first_day=5)
        pairwise = []
        for index in range(1, len(days)):
            pairwise.extend(
                detector.diff_pair(days[index - 1], days[index], day=5 + index - 1)
            )
        assert series == pairwise

    def test_unmeasured_first_day_skipped_until_measured(self):
        days = [
            {"a": obs("a", 0, DpsStatus.UNMEASURED)},
            {"a": obs("a", 1, DpsStatus.ON, "cloudflare")},
        ]
        # No prior measured observation: nothing to diff against.
        assert BehaviorDetector().diff_series(days) == []


class TestNameserverQuarantine:
    ADDR = IPv4Address("10.0.0.1")
    OTHER = IPv4Address("10.0.0.2")

    def test_partition_prefers_healthy_servers(self):
        clock = SimulationClock()
        quarantine = NameserverQuarantine(clock)
        quarantine.quarantine(self.ADDR)
        preferred, deferred = quarantine.partition([self.ADDR, self.OTHER])
        assert preferred == [self.OTHER]
        assert deferred == [self.ADDR]

    def test_reprobe_due_after_interval(self):
        clock = SimulationClock()
        quarantine = NameserverQuarantine(clock, reprobe_after_s=SECONDS_PER_HOUR)
        quarantine.quarantine(self.ADDR)
        assert not quarantine.reprobe_due(self.ADDR)
        clock.advance(SECONDS_PER_HOUR)
        assert quarantine.reprobe_due(self.ADDR)
        preferred, deferred = quarantine.partition([self.ADDR])
        assert preferred == [self.ADDR] and deferred == []

    def test_requarantine_pushes_due_but_keeps_first_seen(self):
        clock = SimulationClock()
        quarantine = NameserverQuarantine(clock, reprobe_after_s=100)
        quarantine.quarantine(self.ADDR)
        clock.advance(50)
        quarantine.quarantine(self.ADDR)
        [(address, at, due)] = quarantine.snapshot()
        assert address == str(self.ADDR)
        assert at == 0 and due == 150

    def test_release_is_idempotent(self):
        quarantine = NameserverQuarantine(SimulationClock())
        quarantine.release(self.ADDR)  # no-op
        quarantine.quarantine(self.ADDR)
        quarantine.release(self.ADDR)
        assert len(quarantine) == 0

    def test_rejects_nonpositive_reprobe_interval(self):
        with pytest.raises(ConfigurationError):
            NameserverQuarantine(SimulationClock(), reprobe_after_s=0)
