"""Unit tests for FaultRule scoping and FaultPlan verdict synthesis."""

import pytest

from repro.clock import SimulationClock
from repro.dns.message import DnsQuery, Rcode
from repro.dns.name import DomainName
from repro.dns.records import RecordType
from repro.errors import ConfigurationError
from repro.faults import FaultKind, FaultPlan, FaultRule
from repro.net.geo import region
from repro.net.ipaddr import IPv4Address, IPv4Prefix
from repro.rng import SeededRng

ADDR = IPv4Address("10.1.2.3")
OTHER = IPv4Address("10.9.9.9")
QUERY = DnsQuery(DomainName("www.example.com"), RecordType.A)


def make_plan(rules, cap=None, clock=None):
    return FaultPlan(
        rng=SeededRng(7).fork("plan"),
        clock=clock or SimulationClock(),
        rules=rules,
        max_consecutive_failures=cap,
    )


class TestFaultRuleValidation:
    def test_probability_out_of_range(self):
        with pytest.raises(ConfigurationError):
            FaultRule(FaultKind.LOSS, probability=1.5)

    def test_unknown_plane(self):
        with pytest.raises(ConfigurationError):
            FaultRule(FaultKind.LOSS, plane="smtp")

    def test_rate_limit_needs_max_per_day(self):
        with pytest.raises(ConfigurationError):
            FaultRule(FaultKind.RATE_LIMIT)

    def test_latency_needs_positive_ms(self):
        with pytest.raises(ConfigurationError):
            FaultRule(FaultKind.LATENCY)

    @pytest.mark.parametrize("kind", [FaultKind.SERVFAIL, FaultKind.LAME])
    def test_dns_only_kinds_reject_http_plane(self, kind):
        with pytest.raises(ConfigurationError):
            FaultRule(kind, plane="http")


class TestFaultRuleMatching:
    def test_plane_scoping(self):
        rule = FaultRule(FaultKind.LOSS, plane="http")
        assert not rule.matches("dns", ADDR, QUERY.qname, None, 0)
        assert rule.matches("http", ADDR, QUERY.qname, None, 0)
        both = FaultRule(FaultKind.LOSS, plane="both")
        assert both.matches("dns", ADDR, QUERY.qname, None, 0)
        assert both.matches("http", ADDR, QUERY.qname, None, 0)

    def test_address_scoping(self):
        rule = FaultRule(FaultKind.LOSS, addresses=frozenset({ADDR}))
        assert rule.matches("dns", ADDR, None, None, 0)
        assert not rule.matches("dns", OTHER, None, None, 0)

    def test_prefix_scoping(self):
        rule = FaultRule(FaultKind.LOSS, prefix=IPv4Prefix("10.1.0.0/16"))
        assert rule.matches("dns", ADDR, None, None, 0)
        assert not rule.matches("dns", OTHER, None, None, 0)

    def test_zone_scoping(self):
        rule = FaultRule(FaultKind.LOSS, zone=DomainName("example.com"))
        assert rule.matches("dns", ADDR, DomainName("www.example.com"), None, 0)
        assert not rule.matches("dns", ADDR, DomainName("www.other.com"), None, 0)
        # Zone-scoped rules never match a delivery without a name.
        assert not rule.matches("dns", ADDR, None, None, 0)

    def test_region_scoping(self):
        rule = FaultRule(FaultKind.LOSS, region="sydney")
        assert rule.matches("dns", ADDR, None, region("sydney"), 0)
        assert not rule.matches("dns", ADDR, None, region("london"), 0)
        assert not rule.matches("dns", ADDR, None, None, 0)

    def test_day_window_half_open(self):
        rule = FaultRule(FaultKind.OUTAGE, from_day=10, until_day=12)
        assert not rule.matches("dns", ADDR, None, None, 9)
        assert rule.matches("dns", ADDR, None, None, 10)
        assert rule.matches("dns", ADDR, None, None, 11)
        assert not rule.matches("dns", ADDR, None, None, 12)


class TestFaultPlanVerdicts:
    def test_no_rules_delivers(self):
        plan = make_plan([])
        assert plan.intercept_dns(ADDR, QUERY, None).delivered

    def test_loss_drops_with_no_response(self):
        plan = make_plan([FaultRule(FaultKind.LOSS)])
        verdict = plan.intercept_dns(ADDR, QUERY, None)
        assert verdict.dropped and verdict.outcome == "loss"
        assert verdict.response is None
        assert plan.metrics.value("faults.dns.loss") == 1

    def test_servfail_synthesizes_response(self):
        plan = make_plan([FaultRule(FaultKind.SERVFAIL)])
        verdict = plan.intercept_dns(ADDR, QUERY, None)
        assert not verdict.delivered and not verdict.dropped
        assert verdict.response.rcode is Rcode.SERVFAIL

    def test_lame_synthesizes_refused(self):
        plan = make_plan([FaultRule(FaultKind.LAME)])
        verdict = plan.intercept_dns(ADDR, QUERY, None)
        assert verdict.response.rcode is Rcode.REFUSED

    def test_latency_is_cumulative_and_delivers(self):
        plan = make_plan(
            [
                FaultRule(FaultKind.LATENCY, latency_ms=30),
                FaultRule(FaultKind.LATENCY, latency_ms=20),
            ]
        )
        verdict = plan.intercept_dns(ADDR, QUERY, None)
        assert verdict.delivered and verdict.latency_ms == 50
        assert plan.metrics.value("faults.dns.latency_ms") == 50

    def test_outage_window_follows_clock(self):
        clock = SimulationClock()
        plan = make_plan(
            [FaultRule(FaultKind.OUTAGE, from_day=1, until_day=2)], clock=clock
        )
        assert plan.intercept_dns(ADDR, QUERY, None).delivered
        clock.advance_days(1)
        assert plan.intercept_dns(ADDR, QUERY, None).outcome == "outage"
        clock.advance_days(1)
        assert plan.intercept_dns(ADDR, QUERY, None).delivered

    def test_rate_limit_resets_per_day(self):
        clock = SimulationClock()
        plan = make_plan(
            [FaultRule(FaultKind.RATE_LIMIT, max_per_day=2)], clock=clock
        )
        assert plan.intercept_dns(ADDR, QUERY, None).delivered
        assert plan.intercept_dns(ADDR, QUERY, None).delivered
        assert plan.intercept_dns(ADDR, QUERY, None).outcome == "rate-limited"
        # A different destination has its own counter.
        assert plan.intercept_dns(OTHER, QUERY, None).delivered
        clock.advance_days(1)
        assert plan.intercept_dns(ADDR, QUERY, None).delivered

    def test_consecutive_cap_guarantees_delivery(self):
        plan = make_plan([FaultRule(FaultKind.LOSS, probability=1.0)], cap=2)
        outcomes = [
            plan.intercept_dns(ADDR, QUERY, None).outcome for _ in range(6)
        ]
        # Two failures, then the cap forces one delivery through, repeat.
        assert outcomes == ["loss", "loss", "deliver", "loss", "loss", "deliver"]
        assert plan.metrics.value("faults.dns.suppressed") == 2

    def test_outage_bypasses_consecutive_cap(self):
        plan = make_plan([FaultRule(FaultKind.OUTAGE)], cap=1)
        outcomes = [
            plan.intercept_dns(ADDR, QUERY, None).outcome for _ in range(4)
        ]
        assert outcomes == ["outage"] * 4

    def test_http_plane_has_no_synthetic_dns_faults(self):
        plan = make_plan([FaultRule(FaultKind.SERVFAIL, plane="dns")])
        verdict = plan.intercept_http(ADDR, DomainName("www.example.com"), None)
        assert verdict.delivered

    def test_http_loss_counted_on_http_counter(self):
        plan = make_plan([FaultRule(FaultKind.LOSS, plane="http")])
        verdict = plan.intercept_http(ADDR, DomainName("www.example.com"), None)
        assert verdict.outcome == "loss"
        assert plan.metrics.value("faults.http.loss") == 1

    def test_cap_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            make_plan([], cap=0)

    def test_deterministic_replay(self):
        rules = [FaultRule(FaultKind.LOSS, probability=0.5)]
        plan_a = make_plan(rules)
        plan_b = make_plan(rules)
        outcomes_a = [plan_a.intercept_dns(ADDR, QUERY, None).outcome for _ in range(32)]
        outcomes_b = [plan_b.intercept_dns(ADDR, QUERY, None).outcome for _ in range(32)]
        assert outcomes_a == outcomes_b
        assert "loss" in outcomes_a and "deliver" in outcomes_a
