"""Retry/backoff behaviour of the DNS/HTTP clients and the resolver.

Also the PR's bugfix proof: unanswered (None) outcomes are recorded in
the MetricsRegistry, and retries are counted separately from first
attempts (``queries_sent`` keeps its fault-free meaning).
"""

from repro.clock import SimulationClock
from repro.dns.client import DnsClient
from repro.dns.message import DnsResponse, Rcode
from repro.dns.name import DomainName
from repro.dns.records import RecordType
from repro.dns.resolver import RecursiveResolver
from repro.faults import FaultKind, FaultPlan, FaultRule, RetryPolicy
from repro.net.fabric import NetworkFabric
from repro.net.ipaddr import IPv4Address
from repro.obs.metrics import MetricsRegistry
from repro.rng import SeededRng
from repro.web.http import HttpClient, HttpResponse, StatusCode

SERVER_IP = IPv4Address("10.0.0.53")
DARK_IP = IPv4Address("10.0.0.99")
WWW = DomainName("www.example.com")


class NxdomainServer:
    """Answers every query NXDOMAIN (a usable, non-transient answer)."""

    def __init__(self):
        self.queries = 0

    def handle_query(self, query, client_region=None):
        self.queries += 1
        return DnsResponse.nxdomain(query)


class ServfailServer:
    """A genuinely broken server: SERVFAIL on every query."""

    def handle_query(self, query, client_region=None):
        return DnsResponse.servfail(query)


class OkHandler:
    def __init__(self):
        self.requests = 0

    def handle_request(self, request):
        self.requests += 1
        return HttpResponse(StatusCode.OK, body="hello")


def install(fabric, rules, cap=None):
    plan = FaultPlan(
        rng=SeededRng(3).fork("test"),
        clock=SimulationClock(),
        rules=rules,
        max_consecutive_failures=cap,
    )
    fabric.fault_plan = plan
    return plan


class TestDnsClientRetry:
    def test_retries_through_injected_servfail(self, fabric):
        fabric.register_dns(SERVER_IP, NxdomainServer())
        install(fabric, [FaultRule(FaultKind.SERVFAIL, probability=1.0)], cap=2)
        metrics = MetricsRegistry()
        client = DnsClient(fabric, metrics=metrics)
        response = client.query(SERVER_IP, WWW, RecordType.A)
        assert response is not None and response.rcode is Rcode.NXDOMAIN
        # One logical query, two retries: counted separately.
        assert client.queries_sent == 1
        assert metrics.value("client.queries") == 1
        assert metrics.value("client.retries") == 2
        assert metrics.value("client.answered") == 1

    def test_unanswered_recorded_in_metrics(self, fabric):
        fabric.register_dns(SERVER_IP, NxdomainServer())
        install(fabric, [FaultRule(FaultKind.OUTAGE)])
        metrics = MetricsRegistry()
        client = DnsClient(fabric, metrics=metrics)
        assert client.query(SERVER_IP, WWW) is None
        assert metrics.value("client.unanswered") == 1

    def test_dark_address_not_retried(self, fabric):
        metrics = MetricsRegistry()
        client = DnsClient(fabric, metrics=metrics)
        assert client.query(DARK_IP, WWW) is None
        # Deterministic condition: one attempt, no retries.
        assert metrics.value("client.retries") == 0
        assert metrics.value("client.unanswered") == 1

    def test_persistent_servfail_returned_after_budget(self, fabric):
        fabric.register_dns(SERVER_IP, ServfailServer())
        metrics = MetricsRegistry()
        client = DnsClient(fabric, metrics=metrics)
        response = client.query(SERVER_IP, WWW)
        assert response is not None and response.rcode is Rcode.SERVFAIL
        assert metrics.value("client.servfail") == 1
        assert metrics.value("client.retries") == client.retry_policy.max_attempts - 1

    def test_no_retry_policy_gives_single_attempt(self, fabric):
        fabric.register_dns(SERVER_IP, NxdomainServer())
        install(fabric, [FaultRule(FaultKind.LOSS, probability=1.0)])
        metrics = MetricsRegistry()
        client = DnsClient(
            fabric, retry_policy=RetryPolicy.no_retry(), metrics=metrics
        )
        assert client.query(SERVER_IP, WWW) is None
        assert metrics.value("client.retries") == 0


class TestHttpClientRetry:
    def test_retries_through_loss(self, fabric):
        handler = OkHandler()
        fabric.register_http(SERVER_IP, handler)
        install(fabric, [FaultRule(FaultKind.LOSS, probability=1.0, plane="http")], cap=2)
        metrics = MetricsRegistry()
        client = HttpClient(fabric, metrics=metrics)
        response = client.get(SERVER_IP, WWW)
        assert response is not None and response.ok
        assert handler.requests == 1
        assert client.requests_sent == 1
        assert metrics.value("http.retries") == 2
        assert metrics.value("http.answered") == 1

    def test_unanswered_recorded(self, fabric):
        fabric.register_http(SERVER_IP, OkHandler())
        install(fabric, [FaultRule(FaultKind.OUTAGE, plane="http")])
        metrics = MetricsRegistry()
        client = HttpClient(fabric, metrics=metrics)
        assert client.get(SERVER_IP, WWW) is None
        assert metrics.value("http.unanswered") == 1

    def test_dark_address_not_retried(self, fabric):
        metrics = MetricsRegistry()
        client = HttpClient(fabric, metrics=metrics)
        assert client.get(DARK_IP, WWW) is None
        assert metrics.value("http.retries") == 0


class TestResolverFailover:
    def make_resolver(self, fabric, metrics=None):
        return RecursiveResolver(
            fabric,
            SimulationClock(),
            root_hints=[SERVER_IP],
            metrics=metrics,
        )

    def test_failover_past_unresponsive_server(self, fabric):
        good_ip = IPv4Address("10.0.0.54")
        fabric.register_dns(SERVER_IP, ServfailServer())
        fabric.register_dns(good_ip, NxdomainServer())
        metrics = MetricsRegistry()
        resolver = self.make_resolver(fabric, metrics)
        response = resolver._query_any([SERVER_IP, good_ip], WWW, RecordType.A)
        assert response is not None and response.rcode is Rcode.NXDOMAIN
        # The broken server exhausted its budget, was quarantined, and
        # the resolver failed over to the healthy one.
        assert SERVER_IP in resolver.quarantine
        assert metrics.value("resolver.failovers") == 1
        assert metrics.value("resolver.unanswered") == 1
        assert metrics.value("resolver.quarantined") == 1
        assert metrics.value("resolver.retries") == resolver.retry_policy.max_attempts - 1
        # queries_sent counts logical queries only (one per server).
        assert resolver.queries_sent == 2

    def test_success_releases_quarantine(self, fabric):
        server = NxdomainServer()
        fabric.register_dns(SERVER_IP, server)
        resolver = self.make_resolver(fabric)
        resolver.quarantine.quarantine(SERVER_IP)
        # Re-probe not due yet, but it is the only server of the zone,
        # so it is still tried as a last resort — and released.
        response = resolver._query_any([SERVER_IP], WWW, RecordType.A)
        assert response is not None
        assert SERVER_IP not in resolver.quarantine

    def test_gave_up_marks_resolution(self, world_factory):
        world = world_factory(population_size=60, seed=9)
        world.install_faults(
            FaultPlan(
                rng=world.rng.fork("gave-up-test"),
                clock=world.clock,
                rules=[FaultRule(FaultKind.OUTAGE, plane="dns")],
            )
        )
        metrics = MetricsRegistry()
        resolver = world.make_resolver(metrics=metrics)
        result = resolver.resolve(world.population[0].www, RecordType.A)
        assert result.rcode is Rcode.SERVFAIL
        assert result.gave_up
        assert metrics.value("resolver.gave_up") == 1

    def test_fault_free_resolution_never_gives_up(self, shared_world):
        resolver = shared_world.make_resolver()
        result = resolver.resolve(shared_world.population[0].www, RecordType.A)
        assert not result.gave_up
        assert resolver.metrics.value("resolver.retries") == 0
        assert len(resolver.quarantine) == 0
