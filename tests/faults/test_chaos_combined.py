"""Chaos composed with the traffic and attack planes.

The ``repro chaos`` harness must keep isolating the fault profile when
the other planes are installed: an equivalence fault profile stays
byte-identical under background surge *and* an attack campaign (both
worlds drive the identical campaign), the attack-aware
``attack-collateral`` profile degrades explicitly while floods are in
flight, and switching attacks off leaves the harness byte-identical to
the pre-attack-plane baseline.
"""

import pytest

from repro.faults.chaos import _run_workloads, run_chaos

POPULATION = 200
SEED = 2018
WARMUP = 8


class TestEquivalenceUnderCombinedPlanes:
    def test_lossy_default_holds_under_surge_and_quiet_attacks(self):
        payload = run_chaos(
            "lossy-default",
            population=POPULATION,
            seed=SEED,
            warmup_days=WARMUP,
            traffic="surge",
            attacks="quiet",
        )
        assert payload["passed"]
        assert payload["identical"]
        assert payload["divergences"] == []
        assert payload["traffic"] == "surge"
        assert payload["attacks"] == "quiet"

    def test_lossy_default_holds_mid_campaign(self):
        # Both worlds drive the identical campaign; the equivalence
        # profile's faults stay inside the retry budget even while
        # floods are opening outage windows around them.
        payload = run_chaos(
            "lossy-default",
            population=POPULATION,
            seed=SEED,
            warmup_days=WARMUP,
            traffic="surge",
            attacks="campaign",
        )
        assert payload["passed"]
        assert payload["identical"]


class TestAttackCollateral:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_chaos(
            "attack-collateral",
            population=POPULATION,
            seed=SEED,
            warmup_days=WARMUP,
            traffic="surge",
            attacks="campaign",
        )

    def test_degrades_explicitly_and_passes(self, payload):
        assert payload["passed"]
        assert payload["faults_injected"] > 0
        assert (
            payload["unmeasured_sites"] > 0
            or payload["quarantined_nameservers"]
            or payload["counters"].get("resolver.gave_up", 0) > 0
        )

    def test_divergence_is_reported_not_hidden(self, payload):
        assert not payload["identical"]
        assert payload["divergences"]


class TestAttackOffBaseline:
    def test_attacks_off_is_reproducible_and_attack_free(self):
        """``--attacks none`` takes the exact pre-attack-plane path: the
        artifacts are deterministic and no attack counter ever fires.
        (The cross-version byte-identity itself is held by the CI bench
        gate diffing against the pre-attack baseline file.)"""
        first, observability = _run_workloads(
            POPULATION, SEED, WARMUP, None, traffic=None, attacks=None
        )
        again, _ = _run_workloads(
            POPULATION, SEED, WARMUP, None, traffic=None, attacks=None
        )
        assert first == again
        assert not any(
            name.startswith("attacks.")
            for name in observability["counters"]
        )

    def test_payload_records_attacks_off_as_none(self):
        payload = run_chaos(
            "lossy-default",
            population=120,
            seed=7,
            warmup_days=4,
        )
        assert payload["attacks"] is None
        assert payload["traffic"] is None
        assert payload["passed"]
