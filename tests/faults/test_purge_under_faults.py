"""Provider-side guarantees must not depend on the network being healthy.

The purge horizon is driven by the simulation clock, not by reachability
— a customer that terminates while its (former) nameserver fleet is dark
is still purged on schedule.  And a refuse-after-termination provider
refuses even when the fault plan makes the first probe attempt fail.
"""

from repro.dns.message import Rcode
from repro.dns.name import DomainName
from repro.dns.records import RecordType
from repro.dps.plans import PlanTier
from repro.dps.portal import ReroutingMethod
from repro.dps.residual_policy import RefuseAfterTermination
from repro.faults import FaultKind, FaultPlan, FaultRule
from repro.obs.metrics import MetricsRegistry
from repro.web.origin import OriginServer
from repro.world.hosting import HostingProvider
from repro.world.website import Website

FREE_PURGE_HORIZON_DAYS = 28


def make_probe_site(world, label):
    """A fresh site outside the studied population (mirrors PurgeProbe)."""
    hosting: HostingProvider = world.hosting_providers[0]
    apex = DomainName(f"fault-probe-{label}.com")
    origin_ip = hosting.allocate_origin_ip()
    document = HostingProvider.default_document(apex, rank=10**9)
    origin = OriginServer(apex, origin_ip, document)
    hosting.deploy_origin(origin)
    hosting.host_zone(apex, origin_ip)
    return Website(rank=10**9, apex=apex, hosting=hosting, origin=origin)


def test_termination_during_ns_outage_still_purged_on_schedule(world_factory):
    world = world_factory(population_size=80, seed=77)
    provider = world.provider("cloudflare")
    site = make_probe_site(world, "outage")
    site.join(provider, ReroutingMethod.NS_BASED, PlanTier.FREE)

    # The whole customer nameserver fleet goes dark for a week, starting
    # the day the customer terminates.
    fleet = frozenset(provider.customer_fleet.all_addresses())
    world.install_faults(
        FaultPlan(
            rng=world.rng.fork("purge-outage-test"),
            clock=world.clock,
            rules=[
                FaultRule(
                    FaultKind.OUTAGE,
                    plane="dns",
                    addresses=fleet,
                    from_day=world.clock.day,
                    until_day=world.clock.day + 7,
                )
            ],
        )
    )
    site.leave(informed=True)

    world.engine.run_days(FREE_PURGE_HORIZON_DAYS - 1)
    assert provider.customer_for(site.www) is not None  # still held

    world.engine.run_days(2)
    assert provider.customer_for(site.www) is None  # purged on schedule


def test_refuse_after_termination_despite_injected_servfail(world_factory):
    world = world_factory(population_size=80, seed=78)
    provider = world.provider("cloudflare")
    provider.residual_policy = RefuseAfterTermination()
    site = make_probe_site(world, "refuse")
    site.join(provider, ReroutingMethod.NS_BASED, PlanTier.FREE)
    site.leave(informed=True)

    # Every first attempt gets an injected SERVFAIL; the cap of 1 lets
    # the retry through, where the provider's answer is REFUSED.
    world.install_faults(
        FaultPlan(
            rng=world.rng.fork("refuse-servfail-test"),
            clock=world.clock,
            rules=[FaultRule(FaultKind.SERVFAIL, probability=1.0, plane="dns")],
            max_consecutive_failures=1,
        )
    )
    metrics = MetricsRegistry()
    client = world.dns_client(metrics=metrics)
    ns_hostname = provider.nameserver_hostnames()[0]
    ns_ip = provider.customer_fleet.address_of(ns_hostname)
    response = client.query(ns_ip, site.www, RecordType.A)
    assert response is not None
    assert response.rcode is Rcode.REFUSED  # definitive, not retried away
    assert metrics.value("client.retries") >= 1
