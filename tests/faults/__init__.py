"""Tests for the fault-injection plane (repro.faults)."""
