"""The chaos-equivalence guarantee at the study level.

Faults within the retry budget (``lossy-default``) must leave every
measured artifact byte-identical to a fault-free run — the Table VI
hidden-record sets and Fig. 9 exposure durations in particular.  Faults
above the budget (``heavy-loss``) must degrade explicitly (UNMEASURED
counts, quarantine) without any exception escaping ``SixWeekStudy.run``.
"""

import pytest

from repro.core.study import SixWeekStudy, StudyConfig
from repro.world import SimulatedInternet, WorldConfig

POPULATION = 120
SEED = 2018


def small_config():
    return StudyConfig(warmup_days=10, study_days=14)


def run_study(fault_profile=None):
    world = SimulatedInternet(WorldConfig(population_size=POPULATION, seed=SEED))
    if fault_profile is not None:
        world.install_faults(fault_profile)
    return SixWeekStudy(world, small_config()).run()


def hidden_record_sets(report):
    """Table VI artifact: the (www, address) hidden set per scan week."""
    return [
        sorted((str(h.www), str(h.address)) for h in weekly.hidden)
        for weekly in report.cloudflare_weekly
    ]


@pytest.fixture(scope="module")
def baseline():
    return run_study()


class TestEquivalenceWithinBudget:
    @pytest.fixture(scope="class")
    def chaotic(self):
        return run_study("lossy-default")

    def test_hidden_record_sets_byte_identical(self, baseline, chaotic):
        assert hidden_record_sets(chaotic) == hidden_record_sets(baseline)
        assert chaotic.cloudflare_totals == baseline.cloudflare_totals
        assert chaotic.incapsula_totals == baseline.incapsula_totals

    def test_exposure_durations_byte_identical(self, baseline, chaotic):
        assert chaotic.cloudflare_exposure == baseline.cloudflare_exposure

    def test_observations_and_behaviors_identical(self, baseline, chaotic):
        assert chaotic.observations == baseline.observations
        assert chaotic.behaviors == baseline.behaviors

    def test_no_degradation_recorded(self, chaotic):
        assert chaotic.total_unmeasured == 0
        assert chaotic.partial_days == []
        assert chaotic.skipped_scan_weeks == []
        assert chaotic.quarantined_nameservers == []


class TestDegradationAboveBudget:
    @pytest.fixture(scope="class")
    def degraded(self):
        # Must not raise: per-site failures downgrade to UNMEASURED.
        return run_study("heavy-loss")

    def test_unmeasured_days_recorded(self, degraded):
        assert degraded.total_unmeasured > 0
        assert degraded.partial_days  # at least one partial day
        assert len(degraded.unmeasured_daily_counts) == degraded.config.study_days

    def test_study_still_produces_series(self, degraded):
        assert len(degraded.snapshots) == degraded.config.study_days
        assert len(degraded.observations) == degraded.config.study_days


def test_fault_free_baseline_has_no_degradation(baseline):
    assert baseline.total_unmeasured == 0
    assert baseline.quarantined_nameservers == []
    assert baseline.skipped_scan_weeks == []
