"""End-to-end lifecycle tests spanning every subsystem.

These replay the paper's narrative against the simulated Internet: a
website joins a DPS, pauses, resumes, switches providers, and an
attacker exploits residual resolution to bypass the new provider —
then countermeasures shut the attack down.
"""

import pytest

from repro.core.attacker import DdosSimulator, ResidualResolutionAttacker
from repro.core.collector import DnsRecordCollector
from repro.core.countermeasures import track_and_compare
from repro.core.matching import ProviderMatcher
from repro.core.status import DpsStatus, StatusDeterminer
from repro.dps.plans import PlanTier
from repro.dps.portal import ReroutingMethod
from repro.world import SimulatedInternet, WorldConfig


@pytest.fixture
def world():
    return SimulatedInternet(WorldConfig(population_size=100, seed=53))


def _site(world):
    return next(
        s for s in world.population
        if s.provider is None and s.alive and not s.multicdn
        and not s.dynamic_meta and not s.firewall_inclined
    )


def _observe(world, site):
    matcher = ProviderMatcher(world.specs, world.routeviews)
    determiner = StatusDeterminer(matcher)
    collector = DnsRecordCollector(world.make_resolver())
    snapshot = collector.collect([str(site.www)], day=world.clock.day)
    return determiner.observe(snapshot.get(site.www))


class TestFullLifecycleThroughMeasurement:
    def test_status_tracks_every_transition(self, world):
        site = _site(world)
        cf, inc = world.provider("cloudflare"), world.provider("incapsula")

        assert _observe(world, site).status == DpsStatus.NONE

        site.join(cf, ReroutingMethod.NS_BASED)
        observation = _observe(world, site)
        assert (observation.status, observation.provider) == (DpsStatus.ON, "cloudflare")

        site.pause(day=world.clock.day, resume_on_day=None)
        observation = _observe(world, site)
        assert (observation.status, observation.provider) == (DpsStatus.OFF, "cloudflare")

        site.resume()
        assert _observe(world, site).status == DpsStatus.ON

        site.switch(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS)
        observation = _observe(world, site)
        assert (observation.status, observation.provider) == (DpsStatus.ON, "incapsula")

        site.leave()
        assert _observe(world, site).status == DpsStatus.NONE

    def test_attack_fails_before_and_succeeds_after_residual_leak(self, world):
        """The paper's Fig. 1 in one test.

        While the site is protected, the attacker's resolution gives an
        edge address and the flood is scrubbed.  After the switch, the
        residual record at the previous provider leaks the origin, and
        the same flood aimed there kills the site despite the new DPS.
        """
        site = _site(world)
        cf, inc = world.provider("cloudflare"), world.provider("incapsula")
        matcher = ProviderMatcher(world.specs, world.routeviews)
        simulator = DdosSimulator(world.providers, matcher)

        site.join(cf, ReroutingMethod.NS_BASED)
        public = world.make_resolver().resolve(site.www)
        frontal = simulator.attack(public.addresses[0], attack_gbps=900.0)
        assert frontal.path == "scrubbed"
        assert not frontal.attack_succeeded

        site.switch(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS, informed=True)
        attacker = ResidualResolutionAttacker(world.dns_client("singapore"), matcher)
        discovery = attacker.probe_nameservers(
            site.www, cf.customer_fleet.all_addresses()[:10]
        )
        assert discovery.succeeded

        bypass = simulator.attack(discovery.candidate_origins[0], attack_gbps=900.0)
        assert bypass.path == "direct"
        assert bypass.attack_succeeded

    def test_track_and_compare_closes_the_hole_end_to_end(self, world):
        site = _site(world)
        cf, inc = world.provider("cloudflare"), world.provider("incapsula")
        track_and_compare(cf)
        matcher = ProviderMatcher(world.specs, world.routeviews)

        site.join(cf, ReroutingMethod.NS_BASED)
        site.switch(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS, informed=True)
        attacker = ResidualResolutionAttacker(world.dns_client(), matcher)
        discovery = attacker.probe_nameservers(
            site.www, cf.customer_fleet.all_addresses()[:10]
        )
        assert not discovery.succeeded

    def test_purge_eventually_closes_the_hole(self, world):
        site = _site(world)
        cf, inc = world.provider("cloudflare"), world.provider("incapsula")
        matcher = ProviderMatcher(world.specs, world.routeviews)
        site.join(cf, ReroutingMethod.NS_BASED, plan=PlanTier.FREE)
        site.switch(
            inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS, informed=True
        )
        attacker = ResidualResolutionAttacker(world.dns_client(), matcher)
        ns_ips = cf.customer_fleet.all_addresses()[:10]
        assert attacker.probe_nameservers(site.www, ns_ips).succeeded
        world.engine.run_days(29)  # past the free-plan horizon
        assert not attacker.probe_nameservers(site.www, ns_ips).succeeded

    def test_paused_site_attackable_without_residual_tricks(self, world):
        """PAUSE (§IV-C-1): the exposure is in *public* DNS."""
        site = _site(world)
        cf = world.provider("cloudflare")
        matcher = ProviderMatcher(world.specs, world.routeviews)
        site.join(cf, ReroutingMethod.NS_BASED)
        site.pause(day=world.clock.day, resume_on_day=None)
        public = world.make_resolver().resolve(site.www)
        assert public.addresses == [site.origin.ip]
        simulator = DdosSimulator(world.providers, matcher)
        outcome = simulator.attack(public.addresses[0], attack_gbps=500.0)
        assert outcome.attack_succeeded
