"""§VI-A — the provider's dilemma, demonstrated end to end.

Why do Cloudflare and Incapsula answer for departed customers at all?
Because resolvers across the Internet hold *cached NS/CNAME records*
with long TTLs that still point at the previous provider.  If the
provider refuses, those clients get resolution failures until the cache
expires; if it answers with the stored origin, service continues — and
the origin leaks.

These tests construct the exact situation: a resolver that cached the
delegation, a customer that left, and both provider policies.
"""

import pytest

from repro.dns.message import Rcode
from repro.dps.plans import PlanTier
from repro.dps.portal import ReroutingMethod
from repro.core.countermeasures import silent_termination, track_and_compare
from repro.world import SimulatedInternet, WorldConfig


@pytest.fixture
def scenario(world_factory):
    world = world_factory(population_size=120, seed=73)
    site = next(
        s for s in world.population
        if s.provider is None and s.alive and not s.multicdn
        and not s.is_rotating
    )
    cf = world.provider("cloudflare")
    site.join(cf, ReroutingMethod.NS_BASED)
    # A client-side resolver caches the (long-TTL) delegation while the
    # site is still a customer.
    resolver = world.make_resolver()
    assert resolver.resolve(site.www).ok
    return world, site, cf, resolver


class TestStaleCacheContinuity:
    def test_stale_resolver_still_served_after_leave(self, scenario):
        """AnswerWithOrigin keeps stale-cache clients working — the
        'service continuity' that motivates the vulnerable config."""
        world, site, cf, resolver = scenario
        site.leave(informed=True)  # same origin, site stays up
        resolver.cache.evict(site.www)  # A record expired; NS cache remains
        result = resolver.resolve(site.www)
        assert result.ok
        assert result.addresses == [site.origin.ip]
        # And the page actually loads end to end.
        response = world.http_client().get(result.addresses[0], site.www)
        assert response.ok

    def test_refusal_breaks_stale_cache_clients(self, scenario):
        """Silent termination closes the hole but strands stale-cache
        clients until the NS TTL expires — the §VI-A trade-off."""
        world, site, cf, resolver = scenario
        silent_termination(cf)
        site.leave(informed=True)
        resolver.cache.evict(site.www)
        result = resolver.resolve(site.www)
        assert result.rcode in (Rcode.REFUSED, Rcode.SERVFAIL)

    def test_stale_cache_heals_after_ttl(self, scenario):
        """Once the cached delegation expires, clients follow the new
        registry delegation and reach the (restored) hosting zone."""
        world, site, cf, resolver = scenario
        silent_termination(cf)
        site.leave(informed=True)
        world.clock.advance(86400 + 1)  # NS TTL expiry
        resolver.cache.evict(site.www)
        result = resolver.resolve(site.www)
        assert result.ok
        assert result.addresses == [site.origin.ip]

    def test_track_and_compare_gives_both(self, scenario):
        """The paper's recommended middle ground: continuity while the
        customer is visibly unmoved, refusal once they move."""
        world, site, cf, resolver = scenario
        track_and_compare(cf)
        site.leave(informed=True)
        resolver.cache.evict(site.www)
        # Unmoved: continuity preserved.
        assert resolver.resolve(site.www).ok

        # Now the ex-customer moves behind a new DPS.
        inc = world.provider("incapsula")
        site.join(inc, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS)
        resolver.cache.evict(site.www)
        result = resolver.resolve(site.www)
        # The stale-cache client gets refused (no leak) rather than the
        # origin; fresh resolvers reach the new provider.
        assert result.rcode in (Rcode.REFUSED, Rcode.SERVFAIL) or (
            result.ok and result.addresses[0] != site.origin.ip
        )
        fresh = world.make_resolver().resolve(site.www)
        assert fresh.ok
        assert any(fresh.addresses[0] in p for p in inc.prefixes)

    def test_uninformed_leave_keeps_edge_continuity(self, scenario):
        """Footnote 9: the unaware provider keeps proxying — stale-cache
        clients get the edge, which still serves the site."""
        world, site, cf, resolver = scenario
        site.leave(informed=False)
        resolver.cache.evict(site.www)
        result = resolver.resolve(site.www)
        assert result.ok
        edge_ip = result.addresses[0]
        assert any(edge_ip in p for p in cf.prefixes)
        # The edge still proxies (configuration unchanged).
        response = world.http_client().get(edge_ip, site.www)
        assert response.ok
