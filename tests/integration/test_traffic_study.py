"""End-to-end studies under background-traffic profiles.

The ISSUE's acceptance criteria, at test scale: an equivalence profile
(or no profile) leaves the study byte-identical to a traffic-free run; a
degradation profile completes with throttled sweeps surfacing as
UNMEASURED observations and partial scans — never as fabricated
transitions; the traffic tallies agree across shard counts; and a
checkpointed traffic run crash-resumes onto its exact trajectory.
"""

import pytest

from repro.checkpoint import (
    canonical_json,
    resume_study,
    run_checkpointed_study,
    study_artifact,
)
from repro.core.export import report_to_dict
from repro.core.study import SixWeekStudy, StudyConfig
from repro.errors import CheckpointMismatchError, SimulatedCrash
from repro.faults.crash import CrashPlan
from repro.shard import run_sharded_study
from repro.world import SimulatedInternet, WorldConfig

SMALL = dict(population=150, seed=11)


def small_config(days=3, warmup=8):
    return StudyConfig(warmup_days=warmup, study_days=days)


def run_study(population, seed, config, traffic=None):
    world = SimulatedInternet(
        WorldConfig(population_size=population, seed=seed)
    )
    study = SixWeekStudy(world, config)
    runtime = study.begin()
    if traffic is not None:
        # Post-warmup, mirroring the checkpointed plane's _begin.
        world.install_traffic(traffic)
    while not runtime.finished:
        study.run_day(runtime)
    return study.finalise(runtime)


def behavior_signatures(report):
    return {
        (b.www, b.kind.name, b.from_provider, b.to_provider)
        for b in report.behaviors
    }


class TestEquivalence:
    def test_steady_profile_is_byte_identical_to_traffic_off(self):
        config = small_config()
        off = run_study(config=config, **SMALL)
        steady = run_study(config=config, traffic="steady", **SMALL)
        assert report_to_dict(steady) == report_to_dict(off)
        assert canonical_json(study_artifact(steady)) == canonical_json(
            study_artifact(off)
        )


class TestDegradation:
    @pytest.fixture(scope="class")
    def pair(self):
        config = small_config(days=28, warmup=10)
        off = run_study(600, 11, config)
        flood = run_study(600, 11, config, traffic="flood")
        return off, flood

    def test_flood_study_completes_with_unmeasured_days(self, pair):
        _, flood = pair
        assert flood.total_unmeasured > 0
        assert flood.partial_days

    def test_throttled_sweeps_become_partial_scans(self, pair):
        _, flood = pair
        assert flood.partial_scan_weeks
        assert all(count > 0 for count in flood.partial_scan_weeks.values())

    def test_no_fabricated_transitions(self, pair):
        off, flood = pair
        # The traffic-off run over the identical world trajectory is the
        # superset of everything observable: throttling may *lose*
        # transitions (unmeasured days) but must never invent one.
        assert behavior_signatures(off)  # non-vacuous at this scale
        assert behavior_signatures(flood) <= behavior_signatures(off)

    def test_degradation_is_exported(self, pair):
        _, flood = pair
        payload = report_to_dict(flood)
        degradation = payload["degradation"]
        assert degradation["total_unmeasured"] == flood.total_unmeasured
        assert degradation["partial_scan_weeks"] == {
            str(week): count
            for week, count in flood.partial_scan_weeks.items()
        }


class TestShardEquivalence:
    def test_traffic_tallies_agree_across_shard_counts(self):
        config = small_config()
        artifacts = {
            count: canonical_json(
                study_artifact(
                    run_sharded_study(
                        config=config,
                        traffic_profile="surge",
                        shard_count=count,
                        mode="inline",
                        **SMALL,
                    )
                )
            )
            for count in (1, 2, 4)
        }
        assert artifacts[1] == artifacts[2] == artifacts[4]

    def test_sharded_matches_monolithic_under_traffic(self):
        config = small_config()
        monolithic = run_study(config=config, traffic="surge", **SMALL)
        sharded = run_sharded_study(
            config=config,
            traffic_profile="surge",
            shard_count=2,
            mode="inline",
            **SMALL,
        )
        assert canonical_json(study_artifact(sharded)) == canonical_json(
            study_artifact(monolithic)
        )


class TestCheckpointWithTraffic:
    INPUTS = dict(SMALL, config=small_config(), traffic_profile="surge")

    def test_crash_resume_stays_on_trajectory(self, tmp_path):
        reference = canonical_json(
            study_artifact(
                run_checkpointed_study(tmp_path / "ref", **self.INPUTS)
            )
        )
        with pytest.raises(SimulatedCrash):
            run_checkpointed_study(
                tmp_path / "crash",
                crash_plan=CrashPlan(at_barrier=1, mode="after-commit"),
                **self.INPUTS,
            )
        resumed = canonical_json(
            study_artifact(resume_study(tmp_path / "crash", **self.INPUTS))
        )
        assert resumed == reference

    def test_resume_without_the_profile_is_refused(self, tmp_path):
        with pytest.raises(SimulatedCrash):
            run_checkpointed_study(
                tmp_path / "crash",
                crash_plan=CrashPlan(at_barrier=1, mode="after-commit"),
                **self.INPUTS,
            )
        mismatched = dict(self.INPUTS, traffic_profile=None)
        with pytest.raises(CheckpointMismatchError):
            resume_study(tmp_path / "crash", **mismatched)

    def test_resume_under_a_different_profile_is_refused(self, tmp_path):
        with pytest.raises(SimulatedCrash):
            run_checkpointed_study(
                tmp_path / "crash",
                crash_plan=CrashPlan(at_barrier=1, mode="after-commit"),
                **self.INPUTS,
            )
        mismatched = dict(self.INPUTS, traffic_profile="flood")
        with pytest.raises(CheckpointMismatchError):
            resume_study(tmp_path / "crash", **mismatched)
