"""Falsification test: a patched ecosystem measures as non-vulnerable.

The strongest check of the measurement pipeline is negative control: if
every provider adopts a §VI-B countermeasure *before* the study, the
same six-week campaign must find (almost) no verified exposed origins —
the vulnerability in Table VI is a property of the provider
configuration, not an artifact of the scanner.
"""

import pytest

from repro.core.countermeasures import silent_termination, track_and_compare
from repro.core.study import SixWeekStudy, StudyConfig
from repro.world import SimulatedInternet, WorldConfig

_CONFIG = StudyConfig(warmup_days=30, study_days=15)


def _run_study(seed: int, patch=None):
    world = SimulatedInternet(WorldConfig(population_size=900, seed=seed))
    if patch is not None:
        for name in ("cloudflare", "incapsula"):
            patch(world.provider(name))
    return SixWeekStudy(world, _CONFIG).run()


class TestPatchedEcosystem:
    def test_unpatched_baseline_finds_exposures(self):
        report = _run_study(seed=97)
        assert report.cloudflare_totals["hidden"] > 0

    def test_silent_termination_ecosystem_measures_clean(self):
        report = _run_study(seed=97, patch=silent_termination)
        totals = report.cloudflare_totals
        # No stale answers → no hidden records at all from departures;
        # any residue would be a pipeline bug.
        assert totals["hidden"] == 0
        assert totals["verified"] == 0
        assert report.incapsula_totals["verified"] == 0

    def test_track_and_compare_ecosystem_measures_safe(self):
        report = _run_study(seed=97, patch=track_and_compare)
        totals = report.cloudflare_totals
        # Track-and-compare may still answer for *unmoved* leavers, but
        # those answers equal the public record and are A-filtered; no
        # verified origin of a *protected* site can remain.  Hidden
        # records can only be stale pointers to moved/rotating origins.
        for weekly in report.cloudflare_weekly:
            for record in weekly.hidden:
                assert record.reason != "match" or not record.verified_origin

    def test_pause_exposure_unaffected_by_residual_patch(self):
        """The PAUSE window (Fig. 5) is a *different* exposure: patching
        residual resolution must not hide it from the study."""
        report = _run_study(seed=98, patch=silent_termination)
        # Pauses still happen and are still measured.
        from repro.world.admin import BehaviorKind

        assert report.behavior_averages.get(BehaviorKind.PAUSE, 0.0) >= 0.0
        # (rate may be zero at this small scale; the point is the study
        # runs to completion and the behaviour channel stays intact)
        assert len(report.observations) == _CONFIG.study_days
