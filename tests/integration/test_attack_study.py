"""End-to-end studies under DDoS attack profiles.

The ISSUE's acceptance criteria, at test scale: the ``quiet`` profile
(an installed plane with an empty schedule) leaves the study
byte-identical to an attack-free run; a six-week ``campaign`` records
at least one emergent JOIN wave and at least one LEAVE/SWITCH wave in
the exported report; attack tallies agree byte for byte across shard
counts 1, 2 and 4; and a checkpointed attack run crash-resumes onto
its exact trajectory while profile mismatches are refused.
"""

import pytest

from repro.checkpoint import (
    canonical_json,
    resume_study,
    run_checkpointed_study,
    study_artifact,
)
from repro.core.export import report_to_dict
from repro.core.study import SixWeekStudy, StudyConfig
from repro.errors import CheckpointMismatchError, SimulatedCrash
from repro.faults.crash import CrashPlan
from repro.shard import run_sharded_study
from repro.world import SimulatedInternet, WorldConfig

SMALL = dict(population=150, seed=11)


def small_config(days=10, warmup=8):
    return StudyConfig(warmup_days=warmup, study_days=days)


def run_study(population, seed, config, attacks=None):
    world = SimulatedInternet(
        WorldConfig(population_size=population, seed=seed)
    )
    study = SixWeekStudy(world, config)
    runtime = study.begin()
    if attacks is not None:
        # Post-warmup, mirroring the checkpointed plane's _begin.
        world.install_attacks(attacks)
    while not runtime.finished:
        study.run_day(runtime)
    return study.finalise(runtime)


class TestEquivalence:
    def test_quiet_profile_is_byte_identical_to_attacks_off(self):
        config = small_config()
        off = run_study(config=config, **SMALL)
        quiet = run_study(config=config, attacks="quiet", **SMALL)
        # The report's attacks block differs by design (the plane IS
        # installed); everything measured must not.
        off_payload = report_to_dict(off)
        quiet_payload = report_to_dict(quiet)
        assert quiet_payload.pop("attacks") == {
            "profile": "quiet",
            "events": [],
            "tallies": {"days": config.study_days},
        }
        assert off_payload.pop("attacks") is None
        assert quiet_payload == off_payload
        # Byte-compare the kill-matrix artifact too, minus the
        # by-design attacks block inside the embedded export.
        quiet_artifact = study_artifact(quiet)
        off_artifact = study_artifact(off)
        quiet_artifact["e8"].pop("attacks")
        off_artifact["e8"].pop("attacks")
        assert canonical_json(quiet_artifact) == canonical_json(off_artifact)


class TestEmergentWaves:
    @pytest.fixture(scope="class")
    def campaign_report(self):
        # Full six-week horizon: the overwhelming provider strike needs
        # enrolled customers and late-campaign days to land its churn.
        return run_study(
            400, 2018, StudyConfig(warmup_days=10, study_days=42),
            attacks="campaign",
        )

    def test_campaign_records_join_waves(self, campaign_report):
        tallies = campaign_report.attack_tallies
        joins = sum(
            count
            for key, count in tallies.items()
            if key.startswith("waves.join.")
        )
        assert joins >= 1

    def test_campaign_records_leave_or_switch_waves(self, campaign_report):
        tallies = campaign_report.attack_tallies
        churn = tallies.get("waves.leave", 0) + tallies.get("waves.switch", 0)
        assert churn >= 1

    def test_report_carries_the_schedule(self, campaign_report):
        assert campaign_report.attack_profile == "campaign"
        assert campaign_report.attack_events
        for event in campaign_report.attack_events:
            assert {"event_id", "kind", "target_kind", "target",
                    "start_day", "duration_days", "magnitude_gbps",
                    "overwhelms"} <= set(event)

    def test_export_carries_the_attacks_block(self, campaign_report):
        payload = report_to_dict(campaign_report)
        attacks = payload["attacks"]
        assert attacks["profile"] == "campaign"
        assert attacks["events"] == campaign_report.attack_events
        assert attacks["tallies"] == campaign_report.attack_tallies

    def test_flood_windows_degrade_measurement(self, campaign_report):
        # Floods open outage windows on victims' infrastructure; the
        # study must degrade explicitly (UNMEASURED days), never crash.
        assert campaign_report.total_unmeasured > 0


class TestShardEquivalence:
    def test_attack_tallies_agree_across_shard_counts(self):
        config = small_config()
        artifacts = {
            count: canonical_json(
                study_artifact(
                    run_sharded_study(
                        config=config,
                        attack_profile="campaign",
                        shard_count=count,
                        mode="inline",
                        **SMALL,
                    )
                )
            )
            for count in (1, 2, 4)
        }
        assert artifacts[1] == artifacts[2] == artifacts[4]

    def test_sharded_matches_monolithic_under_attack(self):
        config = small_config()
        monolithic = run_study(config=config, attacks="campaign", **SMALL)
        sharded = run_sharded_study(
            config=config,
            attack_profile="campaign",
            shard_count=2,
            mode="inline",
            **SMALL,
        )
        assert canonical_json(study_artifact(sharded)) == canonical_json(
            study_artifact(monolithic)
        )

    def test_forked_workers_match_inline_under_attack(self):
        config = small_config()
        inline = run_sharded_study(
            config=config,
            attack_profile="skirmish",
            shard_count=2,
            mode="inline",
            **SMALL,
        )
        forked = run_sharded_study(
            config=config,
            attack_profile="skirmish",
            shard_count=2,
            mode="process",
            **SMALL,
        )
        assert canonical_json(study_artifact(forked)) == canonical_json(
            study_artifact(inline)
        )


class TestCheckpointWithAttacks:
    INPUTS = dict(SMALL, config=small_config(), attack_profile="campaign")

    def test_crash_resume_stays_on_trajectory(self, tmp_path):
        reference = canonical_json(
            study_artifact(
                run_checkpointed_study(tmp_path / "ref", **self.INPUTS)
            )
        )
        with pytest.raises(SimulatedCrash):
            run_checkpointed_study(
                tmp_path / "crash",
                crash_plan=CrashPlan(at_barrier=3, mode="after-commit"),
                **self.INPUTS,
            )
        resumed = canonical_json(
            study_artifact(resume_study(tmp_path / "crash", **self.INPUTS))
        )
        assert resumed == reference

    def test_resume_without_the_profile_is_refused(self, tmp_path):
        with pytest.raises(SimulatedCrash):
            run_checkpointed_study(
                tmp_path / "crash",
                crash_plan=CrashPlan(at_barrier=1, mode="after-commit"),
                **self.INPUTS,
            )
        mismatched = dict(self.INPUTS, attack_profile=None)
        with pytest.raises(CheckpointMismatchError):
            resume_study(tmp_path / "crash", **mismatched)

    def test_resume_under_a_different_profile_is_refused(self, tmp_path):
        with pytest.raises(SimulatedCrash):
            run_checkpointed_study(
                tmp_path / "crash",
                crash_plan=CrashPlan(at_barrier=1, mode="after-commit"),
                **self.INPUTS,
            )
        mismatched = dict(self.INPUTS, attack_profile="blitz")
        with pytest.raises(CheckpointMismatchError):
            resume_study(tmp_path / "crash", **mismatched)
