"""Tests for the deterministic RNG."""

import pytest

from repro.rng import SeededRng, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_order_sensitive(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_distinguishes_adjacent_parts(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_fits_64_bits(self):
        assert 0 <= stable_hash("anything") < 2**64


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = SeededRng(7), SeededRng(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        assert SeededRng(1).random() != SeededRng(2).random()

    def test_fork_is_deterministic(self):
        a = SeededRng(7).fork("child")
        b = SeededRng(7).fork("child")
        assert a.random() == b.random()

    def test_fork_labels_independent(self):
        root = SeededRng(7)
        assert root.fork("x").random() != root.fork("y").random()

    def test_fork_unaffected_by_parent_draws(self):
        a = SeededRng(7)
        a.random()
        a.random()
        b = SeededRng(7)
        assert a.fork("child").random() == b.fork("child").random()


class TestDraws:
    def test_randint_bounds(self):
        rng = SeededRng(1)
        draws = [rng.randint(3, 5) for _ in range(100)]
        assert set(draws) <= {3, 4, 5}
        assert set(draws) == {3, 4, 5}  # all values reachable

    def test_choice_from_sequence(self):
        rng = SeededRng(1)
        assert rng.choice([42]) == 42

    def test_sample_distinct(self):
        rng = SeededRng(1)
        sample = rng.sample(list(range(20)), 5)
        assert len(sample) == len(set(sample)) == 5

    def test_shuffle_preserves_elements(self):
        rng = SeededRng(1)
        items = list(range(10))
        rng.shuffle(items)
        assert sorted(items) == list(range(10))

    def test_weighted_choice_respects_zero_weight(self):
        rng = SeededRng(1)
        draws = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert draws == {"a"}

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            SeededRng(1).weighted_choice(["a"], [0.5, 0.5])

    def test_bernoulli_extremes(self):
        rng = SeededRng(1)
        assert all(rng.bernoulli(1.0) for _ in range(20))
        assert not any(rng.bernoulli(0.0) for _ in range(20))

    def test_bernoulli_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SeededRng(1).bernoulli(1.5)

    def test_bernoulli_rate_approximation(self):
        rng = SeededRng(123)
        hits = sum(rng.bernoulli(0.3) for _ in range(10_000))
        assert 0.27 < hits / 10_000 < 0.33

    def test_geometric_minimum_one(self):
        rng = SeededRng(1)
        assert all(rng.geometric(0.5) >= 1 for _ in range(100))

    def test_geometric_certain_success(self):
        assert SeededRng(1).geometric(1.0) == 1

    def test_geometric_rejects_zero(self):
        with pytest.raises(ValueError):
            SeededRng(1).geometric(0.0)

    def test_pick_subset_all_or_nothing(self):
        rng = SeededRng(1)
        assert rng.pick_subset([1, 2, 3], 1.0) == [1, 2, 3]
        assert rng.pick_subset([1, 2, 3], 0.0) == []

    def test_expovariate_positive(self):
        rng = SeededRng(1)
        assert all(rng.expovariate(0.5) > 0 for _ in range(100))
