"""Smoke tests for the runnable examples.

Each example is executed as a subprocess (as a user would run it) at a
small scale, and its narrative output is checked for the load-bearing
lines.  `residual_scan.py` is exercised indirectly (its machinery is the
CLI `scan` command, covered in test_cli.py) because its fixed warm-up
makes it the slowest example.
"""

import pathlib
import subprocess
import sys

import pytest

_REPO = pathlib.Path(__file__).resolve().parent.parent
_EXAMPLES = _REPO / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(_EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=_REPO,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py", "400", "3")
        assert "Fig. 2" in out
        assert "Table VI" in out
        assert "residual resolution reproduced" in out

    def test_attack_bypass_demo(self):
        out = _run("attack_bypass_demo.py")
        assert "ATTACK FAILED" in out
        assert "SITE DOWN" in out
        assert "hole closed" in out

    def test_bgp_protection_demo(self):
        out = _run("bgp_protection_demo.py")
        assert "SITE DOWN" in out
        assert "exposure neutralised" in out

    def test_usage_dynamics_study(self):
        out = _run("usage_dynamics_study.py", "400", "10")
        assert "Table V" in out
        assert "Measured vs planted" in out

    @pytest.mark.slow
    def test_countermeasures_eval(self):
        out = _run("countermeasures_eval.py")
        assert "baseline" in out
        assert "-100%" in out
