"""Measurement-plane degradation under provider defenses.

The satellite regression this file pins down: a *throttled* nameserver is
healthy — the resolver must fail over (and, with nowhere to go, give up
to an UNMEASURED observation) but never quarantine it the way it
quarantines a genuinely broken SERVFAIL/timeout server.  Likewise the
synthetic REFUSED of a load-shed delivery must never surface as DNS data
(it would fabricate record-purge observations), and the scanner must
rotate vantage points before declaring a sweep unmeasured.
"""

from repro.clock import SimulationClock
from repro.core.residual_scan import CloudflareScanner
from repro.dns.client import DnsClient
from repro.dns.message import DnsQuery, DnsResponse, Rcode
from repro.dns.name import DomainName
from repro.dns.records import RecordType, a_record
from repro.dns.resolver import RecursiveResolver
from repro.net.ipaddr import IPv4Address
from repro.obs.metrics import MetricsRegistry
from repro.rng import SeededRng
from repro.traffic import TrafficVerdict

THROTTLED_IP = IPv4Address("10.0.0.53")
HEALTHY_IP = IPv4Address("10.0.0.54")
WWW = DomainName("www.example.com")


class NxdomainServer:
    """A usable, non-transient answer for anything it is asked."""

    def handle_query(self, query, client_region=None):
        return DnsResponse.nxdomain(query)


class ServfailServer:
    def handle_query(self, query, client_region=None):
        return DnsResponse.servfail(query)


class StubPlane:
    """Deterministic stand-in for the traffic plane's defense verdicts."""

    def __init__(self, verdicts):
        self._verdicts = dict(verdicts)

    def admit_dns(self, address, query, region):
        return self._verdicts.get(address)


def throttle(*addresses):
    return StubPlane({ip: TrafficVerdict("throttled", None, 250)
                      for ip in addresses})


def shed(*addresses):
    return StubPlane({
        ip: TrafficVerdict(
            "shed", DnsResponse.refused(DnsQuery(WWW, RecordType.A)), 250
        )
        for ip in addresses
    })


def make_resolver(fabric, metrics=None):
    return RecursiveResolver(
        fabric,
        SimulationClock(),
        root_hints=[THROTTLED_IP],
        metrics=metrics,
    )


class TestResolverUnderThrottle:
    def test_throttled_server_is_failed_over_not_quarantined(self, fabric):
        fabric.register_dns(THROTTLED_IP, NxdomainServer())
        fabric.register_dns(HEALTHY_IP, NxdomainServer())
        fabric.traffic_plane = throttle(THROTTLED_IP)
        metrics = MetricsRegistry()
        resolver = make_resolver(fabric, metrics)
        response = resolver._query_any([THROTTLED_IP, HEALTHY_IP], WWW, RecordType.A)
        assert response is not None and response.rcode is Rcode.NXDOMAIN
        # The throttled server is healthy: failover, no quarantine.
        assert THROTTLED_IP not in resolver.quarantine
        assert metrics.value("resolver.throttled") == 1
        assert metrics.value("resolver.failovers") == 1
        assert metrics.value("resolver.quarantined") == 0
        # Retry-after semantics: a same-day retry is futile by
        # construction, so none is spent on the throttled server.
        assert metrics.value("resolver.retries") == 0

    def test_servfail_server_still_quarantined(self, fabric):
        # The contrast case the fix must not regress: genuine failure
        # keeps its quarantine semantics even with a traffic plane up.
        fabric.register_dns(THROTTLED_IP, ServfailServer())
        fabric.register_dns(HEALTHY_IP, NxdomainServer())
        fabric.traffic_plane = StubPlane({})
        metrics = MetricsRegistry()
        resolver = make_resolver(fabric, metrics)
        response = resolver._query_any([THROTTLED_IP, HEALTHY_IP], WWW, RecordType.A)
        assert response is not None
        assert THROTTLED_IP in resolver.quarantine
        assert metrics.value("resolver.quarantined") == 1

    def test_everything_throttled_degrades_to_unknown(self, fabric):
        fabric.register_dns(THROTTLED_IP, NxdomainServer())
        fabric.register_dns(HEALTHY_IP, NxdomainServer())
        fabric.traffic_plane = throttle(THROTTLED_IP, HEALTHY_IP)
        metrics = MetricsRegistry()
        resolver = make_resolver(fabric, metrics)
        before = resolver._transient_failures
        response = resolver._query_any([THROTTLED_IP, HEALTHY_IP], WWW, RecordType.A)
        # The answer is unknown — never a fabricated negative.
        assert response is None
        assert resolver._transient_failures == before + 2
        assert len(resolver.quarantine) == 0
        assert metrics.value("resolver.unanswered") == 2

    def test_shed_refused_is_not_treated_as_lame_delegation(self, fabric):
        # A genuine REFUSED is remembered as a last-resort answer in
        # _query_any; the defense stack's synthetic REFUSED must not be.
        fabric.register_dns(THROTTLED_IP, NxdomainServer())
        fabric.traffic_plane = shed(THROTTLED_IP)
        resolver = make_resolver(fabric, MetricsRegistry())
        response = resolver._query_any([THROTTLED_IP], WWW, RecordType.A)
        assert response is None
        assert THROTTLED_IP not in resolver.quarantine

    def test_shed_does_not_release_existing_quarantine(self, fabric):
        fabric.register_dns(THROTTLED_IP, NxdomainServer())
        fabric.traffic_plane = shed(THROTTLED_IP)
        resolver = make_resolver(fabric, MetricsRegistry())
        resolver.quarantine.quarantine(THROTTLED_IP)
        resolver._query_any([THROTTLED_IP], WWW, RecordType.A)
        # Only a real answer proves health; a shed REFUSED proves nothing.
        assert THROTTLED_IP in resolver.quarantine


class TestClientUnderThrottle:
    def test_throttled_query_returns_none_and_flags(self, fabric):
        fabric.register_dns(THROTTLED_IP, NxdomainServer())
        fabric.traffic_plane = throttle(THROTTLED_IP)
        metrics = MetricsRegistry()
        client = DnsClient(fabric, metrics=metrics)
        assert client.query(THROTTLED_IP, WWW, RecordType.A) is None
        assert client.last_throttled
        assert metrics.value("client.throttled") == 1
        # No retries burnt against a deterministic same-day verdict.
        assert metrics.value("client.retries") == 0

    def test_shed_refused_never_surfaces_as_a_response(self, fabric):
        fabric.register_dns(THROTTLED_IP, NxdomainServer())
        fabric.traffic_plane = shed(THROTTLED_IP)
        client = DnsClient(fabric, metrics=MetricsRegistry())
        # The verdict carries a synthetic REFUSED; handing it to the
        # caller would read as a residual-record purge observation.
        assert client.query(THROTTLED_IP, WWW, RecordType.A) is None
        assert client.last_throttled

    def test_flag_resets_on_the_next_clean_query(self, fabric):
        fabric.register_dns(THROTTLED_IP, NxdomainServer())
        fabric.register_dns(HEALTHY_IP, NxdomainServer())
        fabric.traffic_plane = throttle(THROTTLED_IP)
        client = DnsClient(fabric, metrics=MetricsRegistry())
        client.query(THROTTLED_IP, WWW, RecordType.A)
        assert client.last_throttled
        assert client.query(HEALTHY_IP, WWW, RecordType.A) is not None
        assert not client.last_throttled


class _AnsweringClient:
    def __init__(self):
        self.last_throttled = False
        self.queries = 0

    def query(self, ip, hostname, rtype):
        self.queries += 1
        query = DnsQuery(DomainName(hostname), rtype)
        return DnsResponse(
            query=query,
            rcode=Rcode.NOERROR,
            answers=[a_record(hostname, "10.7.0.1")],
        )


class _ThrottledClient:
    def __init__(self):
        self.last_throttled = False
        self.queries = 0

    def query(self, ip, hostname, rtype):
        self.queries += 1
        self.last_throttled = True
        return None


class TestScannerVantageRotation:
    NS_IPS = [IPv4Address("10.3.0.1")]

    def make_scanner(self, clients, metrics=None):
        return CloudflareScanner(
            self.NS_IPS,
            clients,
            rng=SeededRng(5).fork("scanner-test"),
            metrics=metrics if metrics is not None else MetricsRegistry(),
        )

    def test_rotation_escapes_a_throttled_vantage(self):
        throttled, answering = _ThrottledClient(), _AnsweringClient()
        scanner = self.make_scanner([throttled, answering])
        retrieved = scanner.scan(["www.site0.com"])
        assert len(retrieved) == 1
        assert scanner.queries_throttled == 0
        assert throttled.queries == 1 and answering.queries == 1

    def test_all_vantages_throttled_counts_unmeasured_not_absent(self):
        clients = [_ThrottledClient(), _ThrottledClient(), _ThrottledClient()]
        metrics = MetricsRegistry()
        scanner = self.make_scanner(clients, metrics)
        retrieved = scanner.scan(["www.site0.com", "www.site1.com"])
        # Nothing retrieved, nothing *ignored* (= observed absent):
        # the sweep is unmeasured, which the study reports as partial.
        assert retrieved == []
        assert scanner.queries_throttled == 2
        assert scanner.queries_ignored == 0
        assert metrics.value("scan.cloudflare.throttled") == 2
        # Every vantage was tried before giving up on each hostname.
        assert all(client.queries == 2 for client in clients)

    def test_unthrottled_scan_never_rotates(self):
        primary, secondary = _AnsweringClient(), _AnsweringClient()
        scanner = self.make_scanner([primary, secondary])
        scanner.scan(["www.site0.com", "www.site1.com"])
        # Rotation must not run in a traffic-free sweep: each hostname
        # is queried exactly once, at its index's own vantage point.
        assert primary.queries == 1 and secondary.queries == 1

    def test_stub_clients_without_throttle_tracking_are_supported(self):
        class Bare:
            def query(self, ip, hostname, rtype):
                return None

        scanner = self.make_scanner([Bare()])
        assert scanner.scan(["www.site0.com"]) == []
        assert scanner.queries_throttled == 0
        assert scanner.queries_ignored == 1
