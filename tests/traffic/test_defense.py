"""Unit tests for the provider-side defense primitives."""

import pytest

from repro.errors import ConfigurationError
from repro.traffic.defense import (
    TIERS,
    AdaptiveLimiter,
    CircuitBreaker,
    TokenBucket,
)


class TestTokenBucket:
    def test_starts_full_and_consumes_exactly(self):
        bucket = TokenBucket(capacity=100, rate_per_day=40)
        assert bucket.level == 100
        assert bucket.consume(30) == 30
        assert bucket.level == 70

    def test_consume_caps_at_level(self):
        bucket = TokenBucket(capacity=50, rate_per_day=10)
        assert bucket.consume(80) == 50
        assert bucket.level == 0
        assert bucket.consume(5) == 0

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(capacity=100, rate_per_day=40)
        bucket.consume(10)
        bucket.refill()
        assert bucket.level == 100

    def test_tier_multiplier_cuts_refill(self):
        bucket = TokenBucket(capacity=1000, rate_per_day=100)
        bucket.consume(1000)
        bucket.refill(0.25)
        assert bucket.level == 25

    def test_integer_arithmetic_is_exact(self):
        a = TokenBucket(capacity=977, rate_per_day=313)
        b = TokenBucket(capacity=977, rate_per_day=313)
        for day in range(30):
            a.refill(0.5)
            b.refill(0.5)
            demand = (day * 191) % 977
            assert a.consume(demand) == b.consume(demand)
        assert a.level == b.level

    def test_state_round_trip(self):
        bucket = TokenBucket(capacity=100, rate_per_day=40)
        bucket.consume(63)
        clone = TokenBucket(capacity=100, rate_per_day=40)
        clone.restore_state(bucket.state_dict())
        assert clone.level == 37

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": 0, "rate_per_day": 1},
            {"capacity": 10, "rate_per_day": 0},
            {"capacity": 10, "rate_per_day": 5, "level": 11},
            {"capacity": 10, "rate_per_day": 5, "level": -1},
        ],
    )
    def test_bad_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TokenBucket(**kwargs)

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(capacity=10, rate_per_day=5).consume(-1)


class TestAdaptiveLimiter:
    def test_tier_thresholds(self):
        limiter = AdaptiveLimiter(high_watermark=0.7, critical_watermark=0.9)
        assert limiter.update(0.1) == "normal"
        assert limiter.update(0.7) == "high"
        assert limiter.update(0.89) == "high"
        assert limiter.update(0.9) == "critical"
        assert limiter.update(0.2) == "normal"

    def test_rate_multiplier_and_throttle_probability_track_tier(self):
        limiter = AdaptiveLimiter()
        assert limiter.rate_multiplier == 1.0
        assert limiter.throttle_probability == 0.0
        limiter.update(0.8)
        assert limiter.rate_multiplier == 0.5
        assert limiter.throttle_probability == 0.5
        limiter.update(1.2)
        assert limiter.rate_multiplier == 0.25
        assert limiter.throttle_probability == 0.75

    def test_state_round_trip(self):
        limiter = AdaptiveLimiter()
        limiter.update(0.95)
        clone = AdaptiveLimiter()
        clone.restore_state(limiter.state_dict())
        assert clone.tier == "critical"

    def test_bad_watermarks_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveLimiter(high_watermark=0.9, critical_watermark=0.7)
        with pytest.raises(ConfigurationError):
            AdaptiveLimiter(high_watermark=0.0, critical_watermark=0.5)

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveLimiter(tier="panic")
        with pytest.raises(ConfigurationError):
            AdaptiveLimiter().restore_state({"tier": "panic"})

    def test_tier_ordering_constant(self):
        assert TIERS == ("normal", "high", "critical")


class TestCircuitBreaker:
    def make(self, **kwargs):
        defaults = dict(
            failure_threshold=2,
            base_backoff_days=2,
            jitter_fraction=0.5,
            max_backoff_days=14,
        )
        defaults.update(kwargs)
        return CircuitBreaker("10.0.0.1", **defaults)

    def test_trips_after_consecutive_overloads(self):
        breaker = self.make()
        breaker.record_day(0, overloaded=True)
        assert not breaker.is_open(0)
        breaker.record_day(1, overloaded=True)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.is_open(2)

    def test_calm_day_resets_failure_count(self):
        breaker = self.make()
        breaker.record_day(0, overloaded=True)
        breaker.record_day(1, overloaded=False)
        breaker.record_day(2, overloaded=True)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_closes_on_calm_day(self):
        breaker = self.make()
        breaker.record_day(0, overloaded=True)
        breaker.record_day(1, overloaded=True)
        reopen_day = breaker.open_until
        breaker.record_day(reopen_day, overloaded=False)
        assert breaker.state == CircuitBreaker.CLOSED
        assert not breaker.is_open(reopen_day)

    def test_half_open_retrips_with_longer_backoff(self):
        breaker = self.make(jitter_fraction=0.0)
        breaker.record_day(0, overloaded=True)
        breaker.record_day(1, overloaded=True)
        first_window = breaker.open_until - 2
        reopen_day = breaker.open_until
        breaker.record_day(reopen_day, overloaded=True)
        second_window = breaker.open_until - (reopen_day + 1)
        assert breaker.state == CircuitBreaker.OPEN
        assert second_window > first_window

    def test_backoff_capped_at_max(self):
        breaker = self.make(jitter_fraction=0.0, max_backoff_days=5)
        day = 0
        for _ in range(6):
            breaker.record_day(day, overloaded=True)
            day = max(day + 1, breaker.open_until)
        assert breaker.open_until - day <= 5 + 1

    def test_jitter_is_a_pure_function_of_name_and_trips(self):
        kwargs = dict(base_backoff_days=100, max_backoff_days=1000)
        a, b = self.make(**kwargs), self.make(**kwargs)
        for breaker in (a, b):
            breaker.record_day(0, overloaded=True)
            breaker.record_day(1, overloaded=True)
        assert a.open_until == b.open_until
        other = CircuitBreaker(
            "10.0.0.2", failure_threshold=2, **kwargs
        )
        other.record_day(0, overloaded=True)
        other.record_day(1, overloaded=True)
        # Distinct names draw distinct jitter (thundering-herd spread);
        # a wide backoff window keeps integer truncation from masking it.
        assert other.open_until != a.open_until

    def test_is_open_is_a_pure_read(self):
        breaker = self.make()
        breaker.record_day(0, overloaded=True)
        breaker.record_day(1, overloaded=True)
        before = breaker.state_dict()
        for day in range(0, 30):
            breaker.is_open(day)
        assert breaker.state_dict() == before

    def test_state_round_trip(self):
        breaker = self.make()
        breaker.record_day(0, overloaded=True)
        breaker.record_day(1, overloaded=True)
        clone = self.make()
        clone.restore_state(breaker.state_dict())
        assert clone.state_dict() == breaker.state_dict()
        assert clone.is_open(2) == breaker.is_open(2)

    def test_bad_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            self.make(base_backoff_days=0)
        with pytest.raises(ConfigurationError):
            self.make(jitter_fraction=1.5)

    def test_unknown_state_rejected_on_restore(self):
        with pytest.raises(ConfigurationError):
            self.make().restore_state(
                {"state": "melted", "failures": 0, "trips": 0, "open_until": 0}
            )
