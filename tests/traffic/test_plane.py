"""Tests for the traffic plane: drive determinism, order-free admission,
profile registry, and checkpoint round-trips."""

from dataclasses import replace

import pytest

from repro.clock import SimulationClock
from repro.dns.message import DnsQuery, Rcode
from repro.dns.name import DomainName
from repro.dns.records import RecordType
from repro.errors import (
    CheckpointCorruptError,
    ConfigurationError,
)
from repro.net.geo import region
from repro.net.ipaddr import IPv4Address
from repro.obs.metrics import MetricsRegistry
from repro.rng import SeededRng
from repro.traffic import (
    TRAFFIC_PROFILES,
    TrafficPlane,
    normalize_traffic_profile,
    traffic_profile,
)

FLEETS = {
    "cloudflare": [IPv4Address("10.1.0.1"), IPv4Address("10.1.0.2")],
    "incapsula": [IPv4Address("10.2.0.1")],
}


def make_plane(profile_name="surge", metrics=None, clock=None, **overrides):
    profile = TRAFFIC_PROFILES[profile_name]
    if overrides:
        profile = replace(profile, **overrides)
    clock = clock if clock is not None else SimulationClock()
    rng = SeededRng(99).fork("traffic-test")
    return (
        TrafficPlane(
            profile,
            clock,
            rng,
            {name: list(ips) for name, ips in FLEETS.items()},
            metrics=metrics,
        ),
        clock,
    )


def drive(plane, clock, days):
    for _ in range(days):
        plane.drive_day()
        clock.advance_days(1)


class TestProfiles:
    def test_registry_names_match_profiles(self):
        for name, profile in TRAFFIC_PROFILES.items():
            assert profile.name == name

    def test_lookup_unknown_profile_raises(self):
        with pytest.raises(ConfigurationError):
            traffic_profile("tsunami")

    def test_normalize(self):
        assert normalize_traffic_profile(None) is None
        assert normalize_traffic_profile("none") is None
        assert normalize_traffic_profile("surge") == "surge"
        with pytest.raises(ConfigurationError):
            normalize_traffic_profile("tsunami")

    def test_steady_is_the_equivalence_profile(self):
        assert TRAFFIC_PROFILES["steady"].expect_equivalence
        assert not TRAFFIC_PROFILES["surge"].expect_equivalence
        assert not TRAFFIC_PROFILES["flood"].expect_equivalence

    def test_surge_factor_periodicity(self):
        surge = TRAFFIC_PROFILES["surge"]
        assert surge.surge_factor(7) == surge.surge_multiplier
        assert surge.surge_factor(8) == 1.0


class TestDrive:
    def test_same_seed_same_drive_state(self):
        a, clock_a = make_plane("flood")
        b, clock_b = make_plane("flood")
        drive(a, clock_a, 6)
        drive(b, clock_b, 6)
        assert a.drive_state() == b.drive_state()

    def test_flood_escalates_to_critical_and_sheds(self):
        # A hair-trigger breaker threshold: the three-server test fleet
        # sees intermittent per-address overloads, not consecutive runs.
        plane, clock = make_plane("flood", breaker_failure_threshold=1)
        drive(plane, clock, 6)
        assert plane.tier == "critical"
        assert any(key.startswith("breaker_trips.") and value > 0
                   for key, value in plane.tallies.items())
        assert any(key.startswith("shed.") and value > 0
                   for key, value in plane.tallies.items())

    def test_steady_never_leaves_normal(self):
        plane, clock = make_plane("steady")
        drive(plane, clock, 10)
        assert plane.tier == "normal"
        assert plane.tallies.get("tier_days.high", 0) == 0
        assert plane.tallies.get("tier_days.critical", 0) == 0
        assert not any(key.startswith("breaker_trips.")
                       for key in plane.tallies)

    def test_empty_fleet_rejected(self):
        profile = TRAFFIC_PROFILES["steady"]
        with pytest.raises(ConfigurationError):
            TrafficPlane(profile, SimulationClock(), SeededRng(1), {})


class TestAdmission:
    def make_throttling_plane(self):
        """A plane hand-forced into the critical tier (75% throttle)."""
        plane, clock = make_plane("flood")
        plane._limiter.update(1.0)
        return plane, clock

    def test_unmonitored_address_always_admitted(self):
        plane, _ = self.make_throttling_plane()
        query = DnsQuery(DomainName("www.example.com"), RecordType.A)
        assert plane.admit_dns(IPv4Address("10.9.9.9"), query, None) is None

    def test_normal_tier_admits_everything(self):
        plane, _ = make_plane("steady")
        query = DnsQuery(DomainName("www.example.com"), RecordType.A)
        for address in plane.monitored_addresses():
            assert plane.admit_dns(address, query, region("london")) is None

    def test_throttle_verdict_is_deterministic_and_order_free(self):
        plane, _ = self.make_throttling_plane()
        queries = [
            (address, DnsQuery(DomainName(f"www.site{i}.com"), RecordType.A))
            for i in range(40)
            for address in plane.monitored_addresses()
        ]
        forward = [
            plane.admit_dns(address, query, region("tokyo")) is None
            for address, query in queries
        ]
        backward = [
            plane.admit_dns(address, query, region("tokyo")) is None
            for address, query in reversed(queries)
        ]
        assert forward == backward[::-1]
        assert any(forward) and not all(forward)  # 75%: both outcomes occur

    def test_admission_never_mutates_drive_state(self):
        plane, _ = self.make_throttling_plane()
        before = plane.drive_state()
        query = DnsQuery(DomainName("www.example.com"), RecordType.A)
        for address in plane.monitored_addresses():
            plane.admit_dns(address, query, region("oregon"))
        assert plane.drive_state() == before

    def test_shed_verdict_carries_synthetic_refused(self):
        plane, clock = make_plane("flood")
        address = plane.monitored_addresses()[0]
        plane._breakers[str(address)].restore_state(
            {"state": "open", "failures": 0, "trips": 1, "open_until": 10}
        )
        query = DnsQuery(DomainName("www.example.com"), RecordType.A)
        verdict = plane.admit_dns(address, query, region("london"))
        assert verdict.outcome == "shed"
        assert verdict.response.rcode is Rcode.REFUSED
        assert verdict.latency_ms == plane.profile.retry_after_ms

    def test_throttled_verdict_looks_like_a_timeout(self):
        plane, _ = self.make_throttling_plane()
        query_source = (
            (address, DnsQuery(DomainName(f"www.s{i}.com"), RecordType.A))
            for i in range(200)
            for address in plane.monitored_addresses()
        )
        verdict = next(
            v
            for address, query in query_source
            for v in [plane.admit_dns(address, query, region("sydney"))]
            if v is not None
        )
        assert verdict.outcome == "throttled"
        assert verdict.response is None

    def test_defense_counters_split_by_provider_and_tier(self):
        metrics = MetricsRegistry()
        plane, _ = make_plane("flood", metrics=metrics)
        plane._limiter.update(1.0)
        for i in range(100):
            query = DnsQuery(DomainName(f"www.s{i}.com"), RecordType.A)
            for address in plane.monitored_addresses():
                plane.admit_dns(address, query, region("tokyo"))
        snapshot = metrics.snapshot()
        assert any(
            name.startswith("traffic.defense.cloudflare.critical.")
            for name in snapshot
        )
        assert any(
            name.startswith("traffic.defense.incapsula.critical.")
            for name in snapshot
        )


class TestCheckpointRoundTrip:
    def test_state_dict_round_trip_is_byte_identical(self):
        metrics = MetricsRegistry()
        plane, clock = make_plane("flood", metrics=metrics)
        drive(plane, clock, 5)
        for i in range(20):
            query = DnsQuery(DomainName(f"www.s{i}.com"), RecordType.A)
            plane.admit_dns(plane.monitored_addresses()[0], query, None)
        fresh_metrics = MetricsRegistry()
        fresh, _ = make_plane("flood", metrics=fresh_metrics)
        fresh.restore_state(plane.state_dict())
        assert fresh.state_dict() == plane.state_dict()
        assert fresh_metrics.snapshot() == metrics.snapshot()

    def test_restored_plane_continues_identically(self):
        a, clock_a = make_plane("flood")
        drive(a, clock_a, 4)
        b, clock_b = make_plane("flood")
        clock_b.advance_to_day(4)
        b.restore_state(a.state_dict())
        drive(a, clock_a, 3)
        drive(b, clock_b, 3)
        assert a.drive_state() == b.drive_state()

    def test_profile_mismatch_refused(self):
        a, clock_a = make_plane("flood")
        drive(a, clock_a, 2)
        b, _ = make_plane("surge")
        with pytest.raises(CheckpointCorruptError):
            b.restore_state(a.state_dict())

    def test_population_mismatch_refused(self):
        a, clock_a = make_plane("surge")
        drive(a, clock_a, 2)
        b, _ = make_plane("surge", clients_per_region=7)
        with pytest.raises(CheckpointCorruptError):
            b.restore_state(a.state_dict())

    def test_drive_state_excludes_measurement_counters(self):
        metrics = MetricsRegistry()
        plane, _ = make_plane("flood", metrics=metrics)
        plane._limiter.update(1.0)
        for i in range(50):
            query = DnsQuery(DomainName(f"www.s{i}.com"), RecordType.A)
            plane.admit_dns(plane.monitored_addresses()[0], query, None)
        # Per-shard defense counters differ across workers; the shard
        # payload's agreement-checked entry must not include them.
        assert "metrics" not in plane.drive_state()
        assert "metrics" in plane.state_dict()
