"""Shared fixtures.

Unit tests build their own minimal components; the fixtures here supply
the expensive shared artefacts: a small fully-wired simulated Internet
(session-scoped, treat as read-only) and a factory for private worlds
when a test needs to mutate one.
"""

from __future__ import annotations

import pytest

from repro.clock import SimulationClock
from repro.net.fabric import NetworkFabric
from repro.net.ipaddr import AddressAllocator
from repro.world import SimulatedInternet, WorldConfig


@pytest.fixture
def clock() -> SimulationClock:
    return SimulationClock()


@pytest.fixture
def fabric() -> NetworkFabric:
    return NetworkFabric()


@pytest.fixture
def allocator() -> AddressAllocator:
    return AddressAllocator("10.0.0.0/8")


@pytest.fixture(scope="session")
def shared_world() -> SimulatedInternet:
    """A small, fully-wired world.  READ-ONLY: do not run days or mutate
    sites on it — use ``world_factory`` for that."""
    return SimulatedInternet(WorldConfig(population_size=600, seed=11))


@pytest.fixture
def world_factory():
    """Factory for private mutable worlds."""

    def build(population_size: int = 400, seed: int = 5, **kwargs) -> SimulatedInternet:
        return SimulatedInternet(
            WorldConfig(population_size=population_size, seed=seed, **kwargs)
        )

    return build
