"""Tests for the DPS provider: onboarding, pause/resume, termination,
residual resolution, and purging."""

import pytest

from repro.clock import SECONDS_PER_DAY
from repro.dns.client import DnsClient
from repro.dns.message import Rcode
from repro.dns.records import RecordType
from repro.dps.plans import PlanTier
from repro.dps.portal import CustomerStatus, ReroutingMethod
from repro.dps.residual_policy import RefuseAfterTermination, TrackAndCompare
from repro.errors import PlanError, PortalError
from repro.net.ipaddr import IPv4Address


ORIGIN = IPv4Address("172.16.0.10")
WWW = "www.example.com"


def _query_ns(mini, provider, name=WWW):
    client = DnsClient(mini.fabric)
    fleet = provider.customer_fleet or provider.infra_fleet
    ns_ip = fleet.all_addresses()[0]
    return client.query(ns_ip, name, RecordType.A)


class TestOnboarding:
    def test_ns_onboard_returns_two_nameservers(self, mini, cloudflare_like):
        instructions = cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        assert len(instructions.nameservers) == 2
        assert all("ns.cloudflare.com" in str(n) for n in instructions.nameservers)

    def test_ns_onboard_serves_edge_address(self, mini, cloudflare_like):
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        response = _query_ns(mini, cloudflare_like)
        assert response.is_answer
        address = response.answers[0].address
        assert any(address in p for p in cloudflare_like.prefixes)

    def test_cname_onboard_assigns_unpredictable_canonical(self, mini, cloudflare_like):
        a = cloudflare_like.onboard(
            WWW, ORIGIN, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS
        )
        b = cloudflare_like.onboard(
            "www.other.com", ORIGIN, ReroutingMethod.CNAME_BASED, PlanTier.ENTERPRISE
        )
        assert a.cname != b.cname
        assert "cloudflare" in str(a.cname)

    def test_cloudflare_cname_needs_paid_plan(self, mini, cloudflare_like):
        with pytest.raises(PlanError):
            cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.CNAME_BASED, PlanTier.FREE)

    def test_unsupported_rerouting_rejected(self, mini, incapsula_like):
        with pytest.raises(PortalError):
            incapsula_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)

    def test_double_onboard_rejected(self, mini, cloudflare_like):
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        with pytest.raises(PortalError):
            cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)

    def test_a_based_onboard_returns_edge_ip(self, mini):
        provider = mini.build_provider(
            name="dosarrest",
            infra_domain="dosarrest.com",
            as_numbers=[19324],
            rerouting_methods=[ReroutingMethod.A_BASED],
            ns_host_suffix=None,
            num_customer_nameservers=0,
        )
        instructions = provider.onboard(WWW, ORIGIN, ReroutingMethod.A_BASED)
        assert instructions.edge_ip is not None
        assert any(instructions.edge_ip in p for p in provider.prefixes)

    def test_edges_configured_for_customer(self, mini, cloudflare_like):
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        for edge in cloudflare_like.edges:
            assert edge.origin_for(WWW) == ORIGIN


class TestPauseResume:
    def test_pause_exposes_origin(self, mini, cloudflare_like):
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        cloudflare_like.pause(WWW)
        response = _query_ns(mini, cloudflare_like)
        assert response.answers[0].address == ORIGIN

    def test_resume_restores_edge(self, mini, cloudflare_like):
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        cloudflare_like.pause(WWW)
        cloudflare_like.resume(WWW)
        address = _query_ns(mini, cloudflare_like).answers[0].address
        assert any(address in p for p in cloudflare_like.prefixes)

    def test_pause_unsupported_provider_rejects(self, mini):
        provider = mini.build_provider(supports_pause=False)
        provider.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        with pytest.raises(PortalError):
            provider.pause(WWW)

    def test_pause_non_customer_rejected(self, mini, cloudflare_like):
        with pytest.raises(PortalError):
            cloudflare_like.pause(WWW)

    def test_resume_without_pause_rejected(self, mini, cloudflare_like):
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        with pytest.raises(PortalError):
            cloudflare_like.resume(WWW)

    def test_cname_pause_rewrites_canonical(self, mini, incapsula_like):
        instructions = incapsula_like.onboard(WWW, ORIGIN, ReroutingMethod.CNAME_BASED)
        incapsula_like.pause(WWW)
        records = incapsula_like.infra_zone.lookup(instructions.cname, RecordType.A)
        assert records[0].address == ORIGIN

    def test_update_origin_while_paused_reflects_immediately(self, mini, cloudflare_like):
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        cloudflare_like.pause(WWW)
        new_origin = IPv4Address("172.16.0.99")
        cloudflare_like.update_origin(WWW, new_origin)
        assert _query_ns(mini, cloudflare_like).answers[0].address == new_origin


class TestTermination:
    def test_informed_termination_answers_origin(self, mini, cloudflare_like):
        """The headline vulnerability: stale answer exposes the origin."""
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        cloudflare_like.terminate(WWW, informed=True)
        response = _query_ns(mini, cloudflare_like)
        assert response.rcode is Rcode.NOERROR
        assert response.answers[0].address == ORIGIN

    def test_uninformed_termination_keeps_edge_answer(self, mini, cloudflare_like):
        # Footnote 9: unaware provider keeps the old config → edge IP.
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        cloudflare_like.terminate(WWW, informed=False)
        address = _query_ns(mini, cloudflare_like).answers[0].address
        assert any(address in p for p in cloudflare_like.prefixes)

    def test_refuse_policy_blocks_exposure(self, mini):
        provider = mini.build_provider(
            name="cleanco",
            infra_domain="cleanco.net",
            as_numbers=[64999],
            ns_host_suffix="ns.cleanco.net",
        )
        provider.residual_policy = RefuseAfterTermination()
        provider.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        provider.terminate(WWW, informed=True)
        assert _query_ns(mini, provider).rcode is Rcode.REFUSED

    def test_cname_termination_answers_origin_via_canonical(self, mini, incapsula_like):
        instructions = incapsula_like.onboard(WWW, ORIGIN, ReroutingMethod.CNAME_BASED)
        incapsula_like.terminate(WWW, informed=True)
        response = _query_ns(mini, incapsula_like, str(instructions.cname))
        assert response.is_answer
        assert response.answers[0].address == ORIGIN

    def test_terminated_customer_not_proxied(self, mini, cloudflare_like):
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        cloudflare_like.terminate(WWW, informed=True)
        for edge in cloudflare_like.edges:
            assert edge.origin_for(WWW) is None

    def test_double_termination_rejected(self, mini, cloudflare_like):
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        cloudflare_like.terminate(WWW)
        with pytest.raises(PortalError):
            cloudflare_like.terminate(WWW)

    def test_rejoin_after_termination(self, mini, cloudflare_like):
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        cloudflare_like.terminate(WWW, informed=True)
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        record = cloudflare_like.customer_for(WWW)
        assert record is not None and record.is_active

    def test_non_a_queries_for_terminated_refused(self, mini, cloudflare_like):
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        cloudflare_like.terminate(WWW, informed=True)
        client = DnsClient(mini.fabric)
        ns_ip = cloudflare_like.customer_fleet.all_addresses()[0]
        response = client.query(ns_ip, WWW, RecordType.MX)
        assert response.rcode is Rcode.REFUSED


class TestPurge:
    def _terminate_and_age(self, mini, provider, days, plan=PlanTier.FREE):
        provider.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED, plan)
        provider.terminate(WWW, informed=True)
        mini.clock.advance(days * SECONDS_PER_DAY)
        return provider.purge_expired()

    def test_purge_after_free_horizon(self, mini, cloudflare_like):
        purged = self._terminate_and_age(mini, cloudflare_like, 28)
        assert [str(p) for p in purged] == [WWW]
        assert _query_ns(mini, cloudflare_like).rcode is Rcode.REFUSED

    def test_no_purge_before_horizon(self, mini, cloudflare_like):
        purged = self._terminate_and_age(mini, cloudflare_like, 27)
        assert purged == []
        assert _query_ns(mini, cloudflare_like).is_answer

    def test_enterprise_records_never_purged(self, mini, cloudflare_like):
        purged = self._terminate_and_age(
            mini, cloudflare_like, 365, plan=PlanTier.ENTERPRISE
        )
        assert purged == []
        assert _query_ns(mini, cloudflare_like).is_answer

    def test_active_customers_never_purged(self, mini, cloudflare_like):
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        mini.clock.advance(100 * SECONDS_PER_DAY)
        assert cloudflare_like.purge_expired() == []


class TestTrackAndComparePolicy:
    def test_answers_until_public_resolution_moves(self, mini, cloudflare_like):
        cloudflare_like.residual_policy = TrackAndCompare()
        instructions = cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        mini.hierarchy.delegate_apex("example.com", instructions.nameservers)
        cloudflare_like.terminate(WWW, informed=True)
        # Public resolution still reaches this provider, whose stale
        # answer must NOT count as presence (re-entrancy guard) — so the
        # provider stops answering.
        response = _query_ns(mini, cloudflare_like)
        assert response.rcode is Rcode.REFUSED
