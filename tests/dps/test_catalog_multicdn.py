"""Tests for the Table II catalog and the multi-CDN front-end."""

import pytest

from repro.dps.catalog import (
    PAPER_PROVIDERS,
    normalised_market_shares,
    provider_spec,
)
from repro.dps.multicdn import MultiCdnService
from repro.dps.portal import ReroutingMethod
from repro.dps.residual_policy import AnswerWithOrigin, RefuseAfterTermination
from repro.errors import ConfigurationError


class TestCatalogTableII:
    def test_eleven_providers(self):
        assert len(PAPER_PROVIDERS) == 11

    def test_provider_names_match_paper(self):
        names = {spec.name for spec in PAPER_PROVIDERS}
        assert names == {
            "akamai", "cloudflare", "cloudfront", "cdn77", "cdnetworks",
            "dosarrest", "edgecast", "fastly", "incapsula", "limelight",
            "stackpath",
        }

    def test_cloudflare_row(self):
        spec = provider_spec("cloudflare")
        assert "cloudflare" in spec.cname_substrings
        assert "cloudflare" in spec.ns_substrings
        assert 13335 in spec.as_numbers
        assert ReroutingMethod.NS_BASED in spec.rerouting_methods
        assert ReroutingMethod.CNAME_BASED in spec.rerouting_methods
        assert spec.num_customer_nameservers == 391

    def test_incapsula_row(self):
        spec = provider_spec("incapsula")
        assert spec.cname_substrings == ("incapdns",)
        assert spec.as_numbers == (19551,)
        assert spec.rerouting_methods == (ReroutingMethod.CNAME_BASED,)

    def test_dosarrest_is_a_based_only(self):
        spec = provider_spec("dosarrest")
        assert spec.rerouting_methods == (ReroutingMethod.A_BASED,)
        assert spec.cname_substrings == ()

    def test_akamai_substrings(self):
        spec = provider_spec("akamai")
        assert set(spec.cname_substrings) == {"akamai", "edgekey", "edgesuite"}
        assert spec.ns_substrings == ("akam",)

    def test_only_cloudflare_and_incapsula_vulnerable(self):
        vulnerable = {s.name for s in PAPER_PROVIDERS if s.vulnerable_residual}
        assert vulnerable == {"cloudflare", "incapsula"}

    def test_only_cloudflare_and_incapsula_support_pause(self):
        pausing = {s.name for s in PAPER_PROVIDERS if s.supports_pause}
        assert pausing == {"cloudflare", "incapsula"}

    def test_policies_follow_vulnerability_flag(self):
        assert isinstance(provider_spec("cloudflare").make_residual_policy(), AnswerWithOrigin)
        assert isinstance(provider_spec("fastly").make_residual_policy(), RefuseAfterTermination)

    def test_unknown_provider_raises(self):
        with pytest.raises(ConfigurationError):
            provider_spec("notacdn")

    def test_shared_ip_quirk_limited_to_akamai_cdnetworks(self):
        quirky = {s.name for s in PAPER_PROVIDERS if s.shared_ip_fraction > 0}
        assert quirky == {"akamai", "cdnetworks"}


class TestMarketShares:
    def test_shares_normalised(self):
        shares = normalised_market_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_cloudflare_dominates(self):
        shares = normalised_market_shares()
        assert shares["cloudflare"] > 0.75
        assert shares["cloudflare"] == max(shares.values())

    def test_cloudflare_plus_incapsula_share(self):
        # §V: 82.6% of DPS customers are on these two platforms.
        shares = normalised_market_shares()
        assert shares["cloudflare"] + shares["incapsula"] == pytest.approx(0.826, abs=0.02)

    def test_table5_unchanged_rates_encoded(self):
        assert provider_spec("cloudfront").ip_unchanged_rate == pytest.approx(0.350)
        assert provider_spec("cdn77").ip_unchanged_rate == pytest.approx(0.938)


class TestMultiCdn:
    def test_needs_two_members(self):
        with pytest.raises(ValueError):
            MultiCdnService("x", ["fastly"])

    def test_enrollment(self):
        service = MultiCdnService("x", ["fastly", "akamai"])
        service.enroll("www.example.com")
        assert service.is_customer("www.example.com")
        assert not service.is_customer("www.other.com")

    def test_selection_deterministic_per_day(self):
        service = MultiCdnService("x", ["fastly", "akamai", "cloudfront"])
        assert service.provider_for("www.example.com", 3) == service.provider_for(
            "www.example.com", 3
        )

    def test_selection_changes_across_days(self):
        service = MultiCdnService("x", ["fastly", "akamai", "cloudfront"])
        picks = {service.provider_for("www.example.com", day) for day in range(14)}
        assert len(picks) > 1  # flips between members

    def test_selection_within_members(self):
        service = MultiCdnService("x", ["fastly", "akamai"])
        for day in range(10):
            assert service.provider_for("www.site.com", day) in {"fastly", "akamai"}
