"""Tests for nameserver fleets and scrubbing centres."""

import pytest

from repro.dns.client import DnsClient
from repro.dns.records import RecordType
from repro.dps.nameservers import generate_person_names
from repro.dps.scrubbing import ScrubbingCenter, ScrubbingNetwork
from repro.errors import ConfigurationError
from repro.net.geo import region
from repro.net.traffic import TrafficFlow


class TestPersonNames:
    def test_exact_count(self):
        assert len(generate_person_names(391)) == 391

    def test_all_unique(self):
        names = generate_person_names(391)
        assert len(set(names)) == 391

    def test_deterministic(self):
        assert generate_person_names(50) == generate_person_names(50)

    def test_suffix_rounds(self):
        names = generate_person_names(100)
        assert "ada" in names and "ada2" in names

    def test_small_counts(self):
        assert generate_person_names(1) == ["ada"]
        assert generate_person_names(0) == []


class TestNameserverFleet:
    def test_fleet_shares_one_backend(self, mini, cloudflare_like):
        fleet = cloudflare_like.customer_fleet
        cloudflare_like.onboard(
            "www.example.com", "172.16.0.10",
            cloudflare_like.build.rerouting_methods[0],
        )
        client = DnsClient(mini.fabric)
        # Every nameserver identity answers for the customer.
        for ip in fleet.all_addresses()[:4]:
            response = client.query(ip, "www.example.com", RecordType.A)
            assert response.is_answer

    def test_fleet_hostnames_resolve_publicly(self, mini, cloudflare_like):
        resolver = mini.hierarchy.make_resolver()
        hostname = cloudflare_like.customer_fleet.hostnames[0]
        result = resolver.resolve(hostname, RecordType.A)
        assert result.ok
        assert result.addresses == [cloudflare_like.customer_fleet.address_of(hostname)]

    def test_anycast_pop_counters(self, mini, cloudflare_like):
        fleet = cloudflare_like.customer_fleet
        ip = fleet.all_addresses()[0]
        pops = {pop.pop_id: pop for pop in cloudflare_like.anycast.pops}
        # Query from two different regions; counters land on their pops.
        for region_name in ("london", "tokyo"):
            client = DnsClient(mini.fabric, region(region_name))
            client.query(ip, "www.example.com", RecordType.A)
        counts = fleet.pop_query_counts()
        assert sum(counts.values()) == 2

    def test_empty_fleet_rejected(self, mini):
        from repro.dps.nameservers import NameserverFleet
        with pytest.raises(ValueError):
            NameserverFleet("x", [], mini.fabric, mini.allocator)


class TestScrubbing:
    def test_capacity_positive(self):
        with pytest.raises(ConfigurationError):
            ScrubbingCenter("pop", 0)

    def test_clean_within_capacity(self):
        center = ScrubbingCenter("pop", 100.0)
        report = center.scrub(TrafficFlow(legitimate_gbps=5.0, attack_gbps=50.0))
        assert not report.saturated
        assert report.forwarded.attack_gbps == 0.0
        assert report.forwarded.legitimate_gbps == pytest.approx(5.0)
        assert report.legitimate_survival == pytest.approx(1.0)
        assert report.dropped_attack_gbps == pytest.approx(50.0)

    def test_overwhelmed_center_leaks_attack(self):
        center = ScrubbingCenter("pop", 10.0)
        report = center.scrub(TrafficFlow(legitimate_gbps=10.0, attack_gbps=90.0))
        assert report.saturated
        assert report.forwarded.attack_gbps > 0.0
        assert report.legitimate_survival == pytest.approx(0.1)

    def test_network_capacity_is_sum(self):
        network = ScrubbingNetwork(
            [ScrubbingCenter(f"p{i}", 100.0) for i in range(10)]
        )
        assert network.total_capacity_gbps == pytest.approx(1000.0)

    def test_distributed_attack_absorbed_by_network(self):
        # 900 Gbps attack, 10 PoPs × 100 Gbps: each PoP sees 90+1 Gbps
        # and scrubs cleanly.
        network = ScrubbingNetwork(
            [ScrubbingCenter(f"p{i}", 100.0) for i in range(10)]
        )
        report = network.scrub_distributed(
            TrafficFlow(legitimate_gbps=10.0, attack_gbps=900.0)
        )
        assert not report.saturated
        assert report.forwarded.attack_gbps == pytest.approx(0.0)
        assert report.origin_bound_gbps == pytest.approx(10.0)

    def test_record_attack_saturates_network(self):
        network = ScrubbingNetwork(
            [ScrubbingCenter(f"p{i}", 100.0) for i in range(10)]
        )
        report = network.scrub_distributed(
            TrafficFlow(legitimate_gbps=10.0, attack_gbps=2000.0)
        )
        assert report.saturated

    def test_empty_network_rejected(self):
        with pytest.raises(ConfigurationError):
            ScrubbingNetwork([])
