"""Fixtures for DPS platform tests: a miniature Internet with a
Cloudflare-like NS-rerouting provider and an Incapsula-like CNAME one."""

from __future__ import annotations

import pytest

from repro.clock import SimulationClock
from repro.dns.root import DnsHierarchy
from repro.dps.portal import ReroutingMethod
from repro.dps.provider import DpsProvider, ProviderBuild
from repro.net.asn import AsRegistry
from repro.net.fabric import NetworkFabric
from repro.net.ipaddr import AddressAllocator


class MiniInternet:
    def __init__(self) -> None:
        self.fabric = NetworkFabric()
        self.clock = SimulationClock()
        self.allocator = AddressAllocator("10.0.0.0/8")
        self.hierarchy = DnsHierarchy(self.fabric, self.clock, self.allocator)
        self.as_registry = AsRegistry()

    def build_provider(self, **overrides) -> DpsProvider:
        params = dict(
            name="cloudflare",
            infra_domain="cloudflare.com",
            as_numbers=[13335],
            rerouting_methods=[ReroutingMethod.NS_BASED, ReroutingMethod.CNAME_BASED],
            ns_host_suffix="ns.cloudflare.com",
            supports_pause=True,
            num_pops=4,
            num_edges=4,
            num_customer_nameservers=8,
        )
        params.update(overrides)
        build = ProviderBuild(**params)
        return DpsProvider(
            build,
            self.fabric,
            self.clock,
            self.hierarchy,
            self.as_registry,
            self.allocator,
        )


@pytest.fixture
def mini() -> MiniInternet:
    return MiniInternet()


@pytest.fixture
def cloudflare_like(mini) -> DpsProvider:
    return mini.build_provider()


@pytest.fixture
def incapsula_like(mini) -> DpsProvider:
    return mini.build_provider(
        name="incapsula",
        infra_domain="incapdns.net",
        as_numbers=[19551],
        rerouting_methods=[ReroutingMethod.CNAME_BASED],
        ns_host_suffix=None,
        num_customer_nameservers=0,
    )
