"""Tests for the customer-portal data model and portal edge cases."""

import pytest

from repro.dns.name import DomainName
from repro.dps.plans import PlanTier
from repro.dps.portal import (
    CustomerRecord,
    CustomerStatus,
    OnboardingInstructions,
    ReroutingMethod,
)
from repro.errors import PortalError
from repro.net.ipaddr import IPv4Address

ORIGIN = IPv4Address("172.16.0.10")
WWW = "www.example.com"


class TestCustomerRecord:
    def _record(self, **kwargs):
        defaults = dict(
            hostname=DomainName(WWW),
            origin_ip=ORIGIN,
            rerouting=ReroutingMethod.NS_BASED,
            plan=PlanTier.FREE,
        )
        defaults.update(kwargs)
        return CustomerRecord(**defaults)

    def test_active_by_default(self):
        record = self._record()
        assert record.status is CustomerStatus.ACTIVE
        assert record.is_active
        assert not record.is_terminated

    def test_terminated_state(self):
        record = self._record(status=CustomerStatus.TERMINATED)
        assert record.is_terminated
        assert not record.is_active

    def test_paused_is_neither(self):
        record = self._record(status=CustomerStatus.PAUSED)
        assert not record.is_active
        assert not record.is_terminated

    def test_informed_departure_default(self):
        assert self._record().informed_departure


class TestOnboardingInstructions:
    def test_ns_instructions(self):
        instructions = OnboardingInstructions(
            rerouting=ReroutingMethod.NS_BASED,
            nameservers=[DomainName("kate.ns.cloudflare.com")],
        )
        assert instructions.cname is None
        assert instructions.edge_ip is None

    def test_enum_str(self):
        assert str(ReroutingMethod.NS_BASED) == "NS"
        assert str(CustomerStatus.PAUSED) == "paused"


class TestPortalEdgeCases:
    def test_update_origin_unknown_customer(self, mini, cloudflare_like):
        with pytest.raises(PortalError):
            cloudflare_like.update_origin(WWW, "172.16.0.99")

    def test_update_origin_terminated_customer(self, mini, cloudflare_like):
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        cloudflare_like.terminate(WWW)
        with pytest.raises(PortalError):
            cloudflare_like.update_origin(WWW, "172.16.0.99")

    def test_update_origin_reconfigures_edges(self, mini, cloudflare_like):
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        new_origin = IPv4Address("172.16.0.55")
        cloudflare_like.update_origin(WWW, new_origin)
        for edge in cloudflare_like.edges:
            assert edge.origin_for(WWW) == new_origin

    def test_customer_for_apex_lookup(self, mini, cloudflare_like):
        cloudflare_like.onboard(WWW, ORIGIN, ReroutingMethod.NS_BASED)
        record = cloudflare_like.customer_for("example.com")
        assert record is not None
        assert record.hostname == DomainName(WWW)

    def test_terminate_unknown_customer(self, mini, cloudflare_like):
        with pytest.raises(PortalError):
            cloudflare_like.terminate("www.stranger.com")

    def test_edge_assignment_deterministic(self, mini, cloudflare_like):
        first = cloudflare_like.edge_for(WWW)
        assert cloudflare_like.edge_for(WWW) is first

    def test_nameserver_hostnames_exposed(self, mini, cloudflare_like):
        hostnames = cloudflare_like.nameserver_hostnames()
        assert len(hostnames) == 8
        assert all("ns.cloudflare.com" in str(h) for h in hostnames)
