"""Tests for plan tiers and residual policies."""

from repro.dns.name import DomainName
from repro.dps.plans import DEFAULT_PLAN_POLICIES, PlanTier
from repro.dps.residual_policy import (
    AnswerWithOrigin,
    RefuseAfterTermination,
    TrackAndCompare,
)
from repro.net.ipaddr import IPv4Address


class TestPlans:
    def test_cname_setup_requires_paid_plan(self):
        assert not DEFAULT_PLAN_POLICIES[PlanTier.FREE].cname_setup_allowed
        assert not DEFAULT_PLAN_POLICIES[PlanTier.PRO].cname_setup_allowed
        assert DEFAULT_PLAN_POLICIES[PlanTier.BUSINESS].cname_setup_allowed
        assert DEFAULT_PLAN_POLICIES[PlanTier.ENTERPRISE].cname_setup_allowed

    def test_free_plan_purges_in_fourth_week(self):
        # 28 days = "purged at the 4th week" (§V-A-3).
        assert DEFAULT_PLAN_POLICIES[PlanTier.FREE].purge_horizon_days == 28

    def test_horizons_non_decreasing_with_tier(self):
        free = DEFAULT_PLAN_POLICIES[PlanTier.FREE].purge_horizon_days
        pro = DEFAULT_PLAN_POLICIES[PlanTier.PRO].purge_horizon_days
        business = DEFAULT_PLAN_POLICIES[PlanTier.BUSINESS].purge_horizon_days
        enterprise = DEFAULT_PLAN_POLICIES[PlanTier.ENTERPRISE].purge_horizon_days
        assert free <= pro <= business
        assert enterprise is None  # kept indefinitely


_HOST = DomainName("www.example.com")
_ORIGIN = IPv4Address("172.16.0.10")


class TestResidualPolicies:
    def test_answer_with_origin_exposes(self):
        policy = AnswerWithOrigin()
        answer = policy.records_after_termination(_HOST, _ORIGIN, lambda n: [])
        assert answer == _ORIGIN

    def test_refuse_never_answers(self):
        policy = RefuseAfterTermination()
        answer = policy.records_after_termination(
            _HOST, _ORIGIN, lambda n: [_ORIGIN]
        )
        assert answer is None

    def test_track_and_compare_answers_while_unmoved(self):
        policy = TrackAndCompare()
        answer = policy.records_after_termination(
            _HOST, _ORIGIN, lambda n: [_ORIGIN]
        )
        assert answer == _ORIGIN

    def test_track_and_compare_stops_after_move(self):
        policy = TrackAndCompare()
        moved = IPv4Address("198.51.100.1")
        assert (
            policy.records_after_termination(_HOST, _ORIGIN, lambda n: [moved]) is None
        )

    def test_track_and_compare_stops_when_dark(self):
        policy = TrackAndCompare()
        assert policy.records_after_termination(_HOST, _ORIGIN, lambda n: []) is None

    def test_policy_names(self):
        assert AnswerWithOrigin().name == "answer-with-origin"
        assert RefuseAfterTermination().name == "refuse"
        assert TrackAndCompare().name == "track-and-compare"
