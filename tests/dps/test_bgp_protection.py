"""Tests for BGP-based rerouting and its interaction with the
residual-resolution threat."""

import pytest

from repro.core.attacker import DdosSimulator, ResidualResolutionAttacker
from repro.core.matching import ProviderMatcher
from repro.dps.bgp_protection import BgpProtectionService
from repro.dps.plans import PlanTier
from repro.dps.portal import ReroutingMethod
from repro.errors import PortalError
from repro.net.ipaddr import IPv4Prefix


@pytest.fixture
def setup(world_factory):
    world = world_factory(population_size=120, seed=89)
    incapsula = world.provider("incapsula")
    service = BgpProtectionService(incapsula, world.routeviews)
    site = next(
        s for s in world.population
        if s.provider is None and s.alive and not s.multicdn
        and not s.is_rotating
    )
    # The customer's block: a /28 around the origin (host bits cleared).
    block = IPv4Prefix.from_int(site.origin.ip.value & ~0xF, 28)
    return world, incapsula, service, site, block


class TestAnnouncements:
    def test_protect_moves_origination(self, setup):
        world, incapsula, service, site, block = setup
        before = world.routeviews.lookup(site.origin.ip)
        service.protect(block)
        after = world.routeviews.lookup(site.origin.ip)
        assert before != after
        assert after in incapsula.build.as_numbers

    def test_withdraw_restores_routing(self, setup):
        world, incapsula, service, site, block = setup
        before = world.routeviews.lookup(site.origin.ip)
        service.protect(block)
        service.withdraw(block)
        assert world.routeviews.lookup(site.origin.ip) == before

    def test_double_protect_rejected(self, setup):
        _, _, service, _, block = setup
        service.protect(block)
        with pytest.raises(PortalError):
            service.protect(block)

    def test_withdraw_unknown_rejected(self, setup):
        _, _, service, _, block = setup
        with pytest.raises(PortalError):
            service.withdraw(block)

    def test_is_protected(self, setup):
        _, _, service, site, block = setup
        assert not service.is_protected(site.origin.ip)
        service.protect(block)
        assert service.is_protected(site.origin.ip)
        assert block in service.protected_blocks


class TestThreatNeutralisation:
    def test_direct_origin_attack_now_scrubbed(self, setup):
        """The core BGP-protection property: even a *known* origin
        address routes through the scrubbers."""
        world, incapsula, service, site, block = setup
        matcher = ProviderMatcher(world.specs, world.routeviews)
        simulator = DdosSimulator(world.providers, matcher)
        naked = simulator.attack(site.origin.ip, attack_gbps=800.0)
        assert naked.attack_succeeded
        service.protect(block)
        protected = simulator.attack(site.origin.ip, attack_gbps=800.0)
        assert protected.path == "scrubbed"
        assert not protected.attack_succeeded

    def test_residual_resolution_harmless_under_bgp(self, setup):
        """A previous DNS-based provider may leak the origin — but with
        BGP protection in place the leak is not exploitable (the
        complete §VI counter-story)."""
        world, incapsula, service, site, block = setup
        cloudflare = world.provider("cloudflare")
        site.join(cloudflare, ReroutingMethod.NS_BASED)
        site.leave(informed=True)  # residual record now at Cloudflare
        service.protect(block)

        matcher = ProviderMatcher(world.specs, world.routeviews)
        attacker = ResidualResolutionAttacker(world.dns_client(), matcher)
        discovery = attacker.probe_nameservers(
            site.www, cloudflare.customer_fleet.all_addresses()[:10]
        )
        # The stale record now *A-matches* the BGP provider, so the
        # attacker cannot even distinguish it from an edge address —
        # and attacking it lands in the scrubbers anyway.
        if discovery.succeeded:
            simulator = DdosSimulator(world.providers, matcher)
            outcome = simulator.attack(
                discovery.candidate_origins[0], attack_gbps=800.0
            )
            assert not outcome.attack_succeeded
        else:
            assert not discovery.succeeded  # filtered as provider space

    def test_a_matching_sees_provider_space(self, setup):
        """Measurement side-effect: the customer's own addresses now
        classify as the provider's (A-matched → status ON)."""
        world, incapsula, service, site, block = setup
        matcher = ProviderMatcher(world.specs, world.routeviews)
        assert matcher.a_match(site.origin.ip) is None
        service.protect(block)
        fresh_matcher = ProviderMatcher(world.specs, world.routeviews)
        assert fresh_matcher.a_match(site.origin.ip) == "incapsula"
