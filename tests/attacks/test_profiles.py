"""Tests for the attack-profile registry and schedule generation."""

import pytest

from repro.attacks import (
    ATTACK_PROFILES,
    attack_profile,
    normalize_attack_profile,
)
from repro.attacks.events import TargetKind
from repro.errors import ConfigurationError
from repro.world import SimulatedInternet, WorldConfig

POPULATION = 200
SEED = 31
WARMUP = 6


def make_world():
    world = SimulatedInternet(
        WorldConfig(population_size=POPULATION, seed=SEED)
    )
    world.engine.run_days(WARMUP)
    return world


class TestRegistry:
    def test_registry_names_match_profiles(self):
        for name, profile in ATTACK_PROFILES.items():
            assert profile.name == name

    def test_expected_profiles_present(self):
        assert {"quiet", "skirmish", "campaign", "blitz"} <= set(
            ATTACK_PROFILES
        )

    def test_only_quiet_promises_equivalence(self):
        quiet = [
            name
            for name, profile in ATTACK_PROFILES.items()
            if profile.expect_equivalence
        ]
        assert quiet == ["quiet"]

    def test_unknown_profile_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown attack profile"):
            attack_profile("tsunami")

    def test_normalize_maps_none_spellings(self):
        assert normalize_attack_profile(None) is None
        assert normalize_attack_profile("none") is None
        assert normalize_attack_profile("campaign") == "campaign"
        with pytest.raises(ConfigurationError):
            normalize_attack_profile("tsunami")


class TestScheduleGeneration:
    def test_quiet_builds_an_empty_schedule(self):
        plane = make_world().install_attacks("quiet")
        assert plane.events == []

    def test_campaign_covers_every_target_kind(self):
        plane = make_world().install_attacks("campaign")
        kinds = {event.target_kind for event in plane.events}
        assert kinds == {
            TargetKind.SITE_ORIGIN,
            TargetKind.PROVIDER_FLEET,
            TargetKind.HOSTING_BLOCK,
        }

    def test_campaign_schedules_an_overwhelming_strike(self):
        plane = make_world().install_attacks("campaign")
        assert any(event.overwhelms for event in plane.events)

    def test_strikes_start_after_install_in_ascending_order(self):
        world = make_world()
        install_day = world.clock.day
        plane = world.install_attacks("campaign")
        starts = [event.start_day for event in plane.events]
        assert all(day > install_day for day in starts)
        assert starts == sorted(starts)

    def test_two_replicas_build_byte_identical_schedules(self):
        # The shard-safety cornerstone: every worker regenerates the
        # schedule independently; the payloads must agree byte for byte.
        first = make_world().install_attacks("campaign")
        second = make_world().install_attacks("campaign")
        assert [e.as_dict() for e in first.events] == [
            e.as_dict() for e in second.events
        ]

    def test_different_seeds_build_different_schedules(self):
        world_a = make_world()
        world_b = SimulatedInternet(
            WorldConfig(population_size=POPULATION, seed=SEED + 1)
        )
        world_b.engine.run_days(WARMUP)
        schedule_a = [e.as_dict() for e in world_a.install_attacks("campaign").events]
        schedule_b = [e.as_dict() for e in world_b.install_attacks("campaign").events]
        assert schedule_a != schedule_b

    def test_site_strikes_aim_at_unprotected_sites(self):
        world = make_world()
        by_www = {str(site.www): site for site in world.population}
        plane = world.install_attacks("campaign")
        for event in plane.events:
            if event.target_kind is TargetKind.SITE_ORIGIN:
                victim = by_www[event.target]
                assert victim.provider is None

    def test_installation_does_not_perturb_world_dynamics(self):
        # Drive two same-seed worlds the same days, one with a plane
        # installed (but before any strike lands); while no event is
        # active the populations must stay identical.
        plain = make_world()
        attacked = make_world()
        attacked.install_attacks("quiet")
        plain.engine.run_days(4)
        attacked.engine.run_days(4)
        state = lambda world: [
            (str(site.www), site.alive,
             site.provider.name if site.provider else None)
            for site in world.population
        ]
        assert state(plain) == state(attacked)
