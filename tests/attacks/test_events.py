"""Tests for attack events and the pure wave-verdict functions."""

import pytest

from repro.attacks.events import (
    AttackEvent,
    AttackKind,
    TargetKind,
    block_of,
    choose_wave_enrollment,
    hash_fraction,
    wave_triggered,
    weighted_pick,
)
from repro.dps.catalog import PAPER_PROVIDERS
from repro.dps.plans import PlanTier
from repro.dps.portal import ReroutingMethod
from repro.net.ipaddr import IPv4Address


def make_event(**overrides):
    fields = dict(
        event_id=3,
        kind=AttackKind.VOLUMETRIC,
        target_kind=TargetKind.SITE_ORIGIN,
        target="www.victim-000001.sim",
        start_day=30,
        duration_days=3,
        magnitude_gbps=40.0,
    )
    fields.update(overrides)
    return AttackEvent(**fields)


class TestAttackEvent:
    def test_active_window_is_half_open(self):
        event = make_event(start_day=30, duration_days=3)
        assert not event.active_on(29)
        assert event.active_on(30)
        assert event.active_on(32)
        assert not event.active_on(33)

    def test_as_dict_round_trips_to_json_primitives(self):
        payload = make_event().as_dict()
        assert payload == {
            "event_id": 3,
            "kind": "volumetric",
            "target_kind": "site-origin",
            "target": "www.victim-000001.sim",
            "start_day": 30,
            "duration_days": 3,
            "magnitude_gbps": 40.0,
            "overwhelms": False,
        }

    def test_events_are_frozen(self):
        with pytest.raises(AttributeError):
            make_event().start_day = 99


class TestBlockOf:
    def test_masks_to_slash_24(self):
        assert block_of(IPv4Address("203.0.113.77")) == "203.0.113.0/24"
        assert block_of("198.51.100.255") == "198.51.100.0/24"

    def test_colocated_addresses_share_a_block(self):
        assert block_of("10.9.8.1") == block_of("10.9.8.254")
        assert block_of("10.9.8.1") != block_of("10.9.9.1")


class TestWaveVerdicts:
    def test_hash_fraction_is_deterministic_and_bounded(self):
        draws = [hash_fraction("label", 2018, 1, day, "www.x.sim")
                 for day in range(200)]
        assert draws == [hash_fraction("label", 2018, 1, day, "www.x.sim")
                        for day in range(200)]
        assert all(0.0 <= draw < 1.0 for draw in draws)

    def test_wave_triggered_zero_rate_never_fires(self):
        assert not any(
            wave_triggered("attack-join", 2018, 1, day, "www.x.sim", 0.0)
            for day in range(500)
        )

    def test_wave_triggered_tracks_the_rate(self):
        fired = sum(
            wave_triggered("attack-join", 2018, 1, 30, f"www.site-{i}.sim", 0.45)
            for i in range(2000)
        )
        assert 0.40 < fired / 2000 < 0.50

    def test_verdicts_key_on_every_part(self):
        base = wave_triggered("attack-join", 2018, 1, 30, "www.x.sim", 0.5)
        varied = [
            wave_triggered("attack-churn", 2018, 1, 30, "www.x.sim", 0.5),
            wave_triggered("attack-join", 2019, 1, 30, "www.x.sim", 0.5),
            wave_triggered("attack-join", 2018, 2, 30, "www.x.sim", 0.5),
            wave_triggered("attack-join", 2018, 1, 31, "www.x.sim", 0.5),
            wave_triggered("attack-join", 2018, 1, 30, "www.y.sim", 0.5),
        ]
        # Not all perturbed draws can coincide with the base verdict --
        # each part feeds the hash.  (Statistically robust: 5 fair coins
        # all landing on `base` has probability 1/32 per fixed input,
        # and these inputs are fixed, not random.)
        assert varied != [base] * len(varied)

    def test_weighted_pick_lands_in_names(self):
        names = ["cloudflare", "incapsula"]
        weights = [0.8, 0.2]
        picks = {
            weighted_pick("p", 2018, 1, 30, f"www.s-{i}.sim", names, weights)
            for i in range(200)
        }
        assert picks <= set(names)
        assert "cloudflare" in picks  # the heavy side must show up

    def test_weighted_pick_respects_weights(self):
        names = ["cloudflare", "incapsula"]
        weights = [0.9, 0.1]
        picks = [
            weighted_pick("p", 2018, 1, 30, f"www.s-{i}.sim", names, weights)
            for i in range(1000)
        ]
        share = picks.count("cloudflare") / len(picks)
        assert 0.85 < share < 0.95


class TestChooseWaveEnrollment:
    @pytest.fixture(scope="class")
    def specs(self):
        return {spec.name: spec for spec in PAPER_PROVIDERS}

    def test_emergency_migrants_never_buy_free_plans(self, specs):
        for spec in specs.values():
            for subject in range(100):
                _, plan = choose_wave_enrollment(
                    spec, 2018, 1, 30, f"www.s-{subject}.sim"
                )
                assert plan is not PlanTier.FREE

    def test_cloudflare_cname_requires_business_or_enterprise(self, specs):
        spec = specs["cloudflare"]
        for subject in range(300):
            rerouting, plan = choose_wave_enrollment(
                spec, 2018, 1, 30, f"www.s-{subject}.sim"
            )
            if rerouting is ReroutingMethod.CNAME_BASED:
                assert plan in (PlanTier.BUSINESS, PlanTier.ENTERPRISE)

    def test_single_method_providers_always_use_it(self, specs):
        for spec in specs.values():
            if len(spec.rerouting_methods) != 1:
                continue
            for subject in range(50):
                rerouting, _ = choose_wave_enrollment(
                    spec, 2018, 1, 30, f"www.s-{subject}.sim"
                )
                assert rerouting is spec.rerouting_methods[0]

    def test_enrollment_is_deterministic(self, specs):
        spec = specs["cloudflare"]
        first = [choose_wave_enrollment(spec, 2018, 4, 33, f"www.s-{i}.sim")
                 for i in range(50)]
        again = [choose_wave_enrollment(spec, 2018, 4, 33, f"www.s-{i}.sim")
                 for i in range(50)]
        assert first == again
