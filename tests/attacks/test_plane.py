"""Tests for the attack plane: drive effects, outage admission,
replica agreement, and checkpoint restore refusals."""

import copy

import pytest

from repro.attacks.events import TargetKind
from repro.errors import CheckpointCorruptError
from repro.net.ipaddr import IPv4Address
from repro.world import SimulatedInternet, WorldConfig

POPULATION = 200
SEED = 31
WARMUP = 6
#: Long enough for every campaign strike to land and finish.
CAMPAIGN_DAYS = 45


def make_world(seed=SEED):
    world = SimulatedInternet(
        WorldConfig(population_size=POPULATION, seed=seed)
    )
    world.engine.run_days(WARMUP)
    return world


def drive_until_attacked(world, plane, attribute, limit=60):
    """Run engine days until the given attacked set is non-empty."""
    for _ in range(limit):
        if getattr(plane, attribute):
            return
        world.engine.run_days(1)
    raise AssertionError(f"no day left {attribute} non-empty within {limit}")


@pytest.fixture(scope="module")
def driven():
    """A world driven through a full campaign, plus its plane."""
    world = make_world()
    plane = world.install_attacks("campaign")
    world.engine.run_days(CAMPAIGN_DAYS)
    return world, plane


class TestDriveDay:
    def test_campaign_produces_waves(self, driven):
        _, plane = driven
        join_waves = sum(
            count
            for key, count in plane.tallies.items()
            if key.startswith("waves.join.")
        )
        assert join_waves >= 1

    def test_event_days_are_tallied_per_event(self, driven):
        _, plane = driven
        for event in plane.events:
            assert (
                plane.tallies.get(f"event_days.{event.event_id}", 0)
                == event.duration_days
            )

    def test_surge_settles_back_to_one_after_the_campaign(self, driven):
        world, plane = driven
        last_strike_end = max(
            event.start_day + event.duration_days for event in plane.events
        )
        assert world.clock.day >= last_strike_end
        assert plane.traffic_surge == 1.0
        assert plane.tallies.get("surge_days", 0) >= 1

    def test_attacked_sets_clear_when_no_event_is_active(self, driven):
        _, plane = driven
        assert plane._attacked_dns == {}
        assert plane._attacked_http == {}

    def test_quiet_profile_never_moves_anything(self):
        world = make_world()
        plane = world.install_attacks("quiet")
        world.engine.run_days(10)
        assert plane.traffic_surge == 1.0
        assert not any(
            key.startswith(("waves.", "event_")) for key in plane.tallies
        )


class TestOutageAdmission:
    def _provider_attack_day(self):
        world = make_world()
        plane = world.install_attacks("campaign")
        drive_until_attacked(world, plane, "_attacked_dns")
        return world, plane

    def test_flooded_fleet_shares_one_fate_per_day(self):
        # DNS fates are per (day, event): the flood either exceeds the
        # fleet's absorption capacity that day or it doesn't.  Any
        # finer-grained draw would let the warm monolithic pass and a
        # cold shard try different fleet addresses to different fates.
        world, plane = self._provider_attack_day()

        class Query:
            def __init__(self, qname):
                self.qname = qname

        verdicts = [
            plane.admit_dns(
                IPv4Address(address), Query(f"www.s-{i}.sim"), None
            )
            for i, address in enumerate(sorted(plane._attacked_dns))
        ]
        assert len({v is None for v in verdicts}) == 1
        dropped = [v for v in verdicts if v is not None]
        assert all(v.outcome == "attack-outage" for v in dropped)
        assert all(v.latency_ms == plane.profile.attack_latency_ms
                   for v in dropped)

    def test_fleet_fate_varies_across_attack_days(self):
        # Per event-day, not per event: across a multi-day flood the
        # daily absorption draw must produce both fates somewhere in
        # the schedule, or degradation would be all-or-nothing.  The
        # blitz schedule has ten fleet attack-days — plenty to show
        # both sides of the 0.65 coin.
        world = make_world()
        plane = world.install_attacks("blitz")
        fates = []
        for _ in range(50):
            world.engine.run_days(1)
            day = world.clock.day
            for address, event_id in plane._attacked_dns.items():
                fates.append(
                    (day, event_id,
                     plane.admit_dns(IPv4Address(address), None, None)
                     is not None)
                )
                break  # one address per day is enough: fates are uniform
        assert any(drowned for _, _, drowned in fates)
        assert any(not drowned for _, _, drowned in fates)

    def test_unattacked_addresses_pass_untouched(self):
        world, plane = self._provider_attack_day()
        quiet = IPv4Address("192.0.2.1")
        assert str(quiet) not in plane._attacked_dns
        assert plane.admit_dns(quiet, None, None) is None
        assert plane.admit_http(quiet, None, None) is None

    def test_same_day_retry_is_deterministically_futile(self):
        world, plane = self._provider_attack_day()
        address = IPv4Address(next(iter(plane._attacked_dns)))

        class Query:
            qname = "www.retry-me.sim"

        first = plane.admit_dns(address, Query(), None)
        again = plane.admit_dns(address, Query(), None)
        assert (first is None) == (again is None)
        if first is not None:
            assert first.outcome == again.outcome

    def test_flooded_origins_time_out_http(self):
        world = make_world()
        plane = world.install_attacks("campaign")
        drive_until_attacked(world, plane, "_attacked_http")
        verdicts = [
            plane.admit_http(IPv4Address(address), "www.h.sim", None)
            for address in sorted(plane._attacked_http)
        ]
        dropped = [v for v in verdicts if v is not None]
        assert dropped, "origin outage probability 0.8 cannot drop nothing"
        assert all(v.outcome == "attack-outage" for v in dropped)


class TestReplicaAgreement:
    def test_same_trajectory_replicas_agree_on_drive_state(self):
        states = []
        for _ in range(2):
            world = make_world()
            plane = world.install_attacks("campaign")
            world.engine.run_days(12)
            states.append(plane.drive_state())
        assert states[0] == states[1]

    def test_drive_state_is_json_primitives(self, driven):
        import json

        _, plane = driven
        state = plane.drive_state()
        assert json.loads(json.dumps(state)) == state


class TestRestore:
    def _replica_pair(self, days=12):
        """Two same-trajectory planes: one snapshotted, one restoring."""
        world_a = make_world()
        plane_a = world_a.install_attacks("campaign")
        world_a.engine.run_days(days)
        world_b = make_world()
        plane_b = world_b.install_attacks("campaign")
        world_b.engine.run_days(days)
        return plane_a.state_dict(), plane_b

    def test_same_trajectory_snapshot_restores(self):
        state, plane = self._replica_pair()
        plane.restore_state(state)
        assert plane.drive_state() == {
            key: state[key]
            for key in plane.drive_state()
        }

    def test_wrong_profile_is_refused(self):
        state, plane = self._replica_pair()
        state["profile"] = "blitz"
        with pytest.raises(CheckpointCorruptError, match="profile"):
            plane.restore_state(state)

    def test_tampered_schedule_is_refused(self):
        state, plane = self._replica_pair()
        state = copy.deepcopy(state)
        state["events"][0]["start_day"] += 1
        with pytest.raises(
            CheckpointCorruptError, match="different trajectories"
        ):
            plane.restore_state(state)

    def test_foreign_attacked_sets_are_refused(self):
        state, plane = self._replica_pair()
        state = copy.deepcopy(state)
        state["attacked_dns"] = [["198.51.100.1", 0]]
        with pytest.raises(
            CheckpointCorruptError, match="different trajectory"
        ):
            plane.restore_state(state)

    def test_restore_carries_tallies_and_metrics(self):
        state, plane = self._replica_pair()
        plane.tallies = {}
        plane.restore_state(state)
        assert plane.tallies == {
            key: value for key, value in state["tallies"]
        }
