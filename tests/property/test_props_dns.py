"""Property-based tests for the DNS substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import SimulationClock
from repro.dns.cache import DnsCache
from repro.dns.name import DomainName
from repro.dns.records import RecordType, a_record
from repro.dns.zone import Zone
from repro.net.ipaddr import IPv4Address

labels = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=12)
names = st.lists(labels, min_size=1, max_size=5).map(DomainName)


class TestDomainNameProperties:
    @given(names)
    def test_str_roundtrip(self, name):
        assert DomainName(str(name)) == name

    @given(names)
    def test_hash_equals_for_equal(self, name):
        assert hash(DomainName(str(name).upper())) == hash(name)

    @given(names)
    def test_suffixes_are_ancestors_inclusive(self, name):
        suffixes = name.suffixes()
        assert suffixes[0] == name
        assert len(suffixes) == len(name)
        for shorter, longer in zip(suffixes[1:], suffixes):
            assert longer.is_subdomain_of(shorter)

    @given(names, labels)
    def test_child_parent_inverse(self, name, label):
        assert name.child(label).parent() == name

    @given(names, names)
    def test_subdomain_antisymmetry(self, a, b):
        if a.is_subdomain_of(b) and b.is_subdomain_of(a):
            assert a == b

    @given(names, names, names)
    @settings(max_examples=60)
    def test_subdomain_transitivity(self, a, b, c):
        if a.is_subdomain_of(b) and b.is_subdomain_of(c):
            assert a.is_subdomain_of(c)


class TestCacheProperties:
    @given(
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=0, max_value=20_000),
    )
    def test_visibility_window(self, ttl, elapsed):
        clock = SimulationClock()
        cache = DnsCache(clock)
        cache.put(a_record("www.example.com", "1.2.3.4", ttl=ttl))
        clock.advance(elapsed)
        records = cache.get("www.example.com", RecordType.A)
        if elapsed < ttl:
            assert records is not None
            assert records[0].ttl == ttl - elapsed
        else:
            assert records is None

    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=10))
    def test_len_counts_distinct_rdata(self, last_octets):
        clock = SimulationClock()
        cache = DnsCache(clock)
        for octet in last_octets:
            cache.put(a_record("www.example.com", f"10.0.0.{octet}", ttl=60))
        assert len(cache) == len(set(last_octets))


@st.composite
def zone_operations(draw):
    """Random sequences of adds/removes at names under example.com."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=15))):
        kind = draw(st.sampled_from(["add", "remove"]))
        depth = draw(st.integers(min_value=0, max_value=2))
        parts = [draw(st.sampled_from(["a", "b", "c"])) for _ in range(depth + 1)]
        name = ".".join(parts) + ".example.com"
        octet = draw(st.integers(min_value=1, max_value=250))
        ops.append((kind, name, octet))
    return ops


class TestZoneIndexProperties:
    @given(zone_operations())
    @settings(max_examples=80)
    def test_name_exists_matches_bruteforce(self, ops):
        zone = Zone("example.com")
        for kind, name, octet in ops:
            if kind == "add":
                try:
                    zone.add(a_record(name, f"10.0.0.{octet}"))
                except Exception:
                    pass  # duplicate rdata — fine
            else:
                zone.remove_all(name, RecordType.A)
        # Brute-force existence from the record store itself.
        live_names = {r.name for r in zone.all_records() if r.rtype is RecordType.A}
        probes = {DomainName(n) for _, n, _ in ops}
        for probe in probes:
            expected = any(
                existing == probe or existing.is_subdomain_of(probe)
                for existing in live_names
            )
            assert zone.name_exists(probe) == expected, str(probe)

    @given(zone_operations())
    @settings(max_examples=40)
    def test_serial_monotone(self, ops):
        zone = Zone("example.com")
        previous = zone.serial
        for kind, name, octet in ops:
            if kind == "add":
                try:
                    zone.add(a_record(name, f"10.0.0.{octet}"))
                except Exception:
                    pass
            else:
                zone.remove_all(name, RecordType.A)
            assert zone.serial >= previous
            previous = zone.serial
