"""Property-based tests for the network substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.ipaddr import IPv4Address, IPv4Prefix
from repro.net.routeviews import RouteViewsDb
from repro.net.traffic import CapacityTarget, TrafficFlow

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)
prefix_lengths = st.integers(min_value=0, max_value=32)


@st.composite
def prefixes(draw):
    return IPv4Prefix.from_int(draw(addresses), draw(prefix_lengths))


class TestAddressProperties:
    @given(addresses)
    def test_int_str_roundtrip(self, value):
        address = IPv4Address(value)
        assert IPv4Address(str(address)) == address
        assert int(address) == value

    @given(addresses, addresses)
    def test_ordering_matches_integers(self, a, b):
        assert (IPv4Address(a) < IPv4Address(b)) == (a < b)

    @given(prefixes())
    def test_prefix_contains_own_network(self, prefix):
        assert prefix.network in prefix
        assert prefix.contains_prefix(prefix)

    @given(prefixes())
    def test_prefix_str_roundtrip(self, prefix):
        assert IPv4Prefix(str(prefix)) == prefix

    @given(prefixes(), addresses)
    def test_membership_is_mask_equality(self, prefix, value):
        address = IPv4Address(value)
        inside = address in prefix
        shift = 32 - prefix.length
        if prefix.length == 0:
            assert inside
        else:
            assert inside == (value >> shift == prefix.network.value >> shift)

    @given(st.integers(min_value=0, max_value=24).flatmap(
        lambda length: st.tuples(
            st.just(length),
            st.integers(min_value=length, max_value=min(length + 6, 32)),
            addresses,
        )
    ))
    def test_subnets_partition_parent(self, params):
        length, sub_length, base = params
        parent = IPv4Prefix.from_int(base, length)
        subnets = list(parent.subnets(sub_length))
        # Disjoint and complete.
        assert len(subnets) == 1 << (sub_length - length)
        total = sum(s.num_addresses for s in subnets)
        assert total == parent.num_addresses
        for i, a in enumerate(subnets):
            assert parent.contains_prefix(a)
            for b in subnets[i + 1:]:
                assert not a.overlaps(b)


class TestRouteViewsProperties:
    @given(
        st.lists(
            st.tuples(addresses, st.integers(min_value=8, max_value=28),
                      st.integers(min_value=1, max_value=2**16)),
            min_size=1, max_size=20,
        ),
        addresses,
    )
    @settings(max_examples=60)
    def test_lpm_matches_bruteforce(self, announcements, query):
        table = [
            (IPv4Prefix.from_int(base, length), asn)
            for base, length, asn in announcements
        ]
        db = RouteViewsDb.from_announcements(table)
        # Brute force: longest matching prefix; on equal prefixes the
        # later announcement overwrites.
        best = None
        for prefix, asn in table:
            if IPv4Address(query) in prefix:
                if best is None or prefix.length >= best[0].length:
                    if best is None or prefix.length > best[0].length or best[0] == prefix:
                        best = (prefix, asn)
        expected = best[1] if best else None
        assert db.lookup(query) == expected


class TestTrafficProperties:
    volumes = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
    capacities = st.floats(min_value=0.01, max_value=1e4, allow_nan=False)

    @given(volumes, volumes, capacities)
    def test_conservation_and_bounds(self, legit, attack, capacity):
        flow = TrafficFlow(legit, attack)
        report = CapacityTarget("t", capacity).offer(flow)
        delivered = report.delivered_legitimate_gbps + report.delivered_attack_gbps
        assert delivered <= flow.total_gbps + 1e-9
        assert abs(delivered + report.dropped_gbps - flow.total_gbps) < 1e-6
        assert 0.0 <= report.availability <= 1.0 + 1e-9
        assert delivered <= capacity + 1e-6

    @given(volumes, volumes)
    def test_saturation_iff_over_capacity(self, legit, attack):
        flow = TrafficFlow(legit, attack)
        target = CapacityTarget("t", 100.0)
        assert target.offer(flow).saturated == (flow.total_gbps > 100.0)
