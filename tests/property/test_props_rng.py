"""Property tests for the determinism primitives (hypothesis).

The reproduction's headline guarantee: a fork's stream depends only on
(parent seed, label) — never on fork creation order, interleaved draws,
or the process it runs in.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import SeededRng, stable_hash

seeds = st.integers(min_value=0, max_value=2**64 - 1)
labels = st.text(min_size=1, max_size=32)


def stream(rng, n=8):
    return [rng.random() for _ in range(n)]


class TestForkOrderIndependence:
    @given(seed=seeds, label_list=st.lists(labels, min_size=2, max_size=6,
                                           unique=True))
    def test_fork_streams_independent_of_creation_order(
        self, seed, label_list
    ):
        forward = {
            label: stream(SeededRng(seed).fork(label))
            for label in label_list
        }
        root = SeededRng(seed)
        backward = {}
        for label in reversed(label_list):
            backward[label] = stream(root.fork(label))
        assert forward == backward

    @given(seed=seeds, label=labels, draws=st.integers(0, 50))
    def test_fork_unaffected_by_parent_draws(self, seed, label, draws):
        fresh = SeededRng(seed)
        exercised = SeededRng(seed)
        for _ in range(draws):
            exercised.random()
        assert stream(fresh.fork(label)) == stream(exercised.fork(label))

    @given(seed=seeds, label=labels)
    def test_sibling_forks_do_not_interfere(self, seed, label):
        solo = stream(SeededRng(seed).fork(label))
        root = SeededRng(seed)
        sibling = root.fork(label + "-sibling")
        target = root.fork(label)
        sibling.random()
        assert stream(target) == solo


class TestCrossProcessStability:
    @given(seed=seeds, label=labels)
    def test_fork_seed_is_stable_hash(self, seed, label):
        # The fork derivation is exactly stable_hash(seed, label), which
        # is BLAKE2b-based and therefore identical in every process —
        # unlike builtin hash(), which is salted per process.
        assert SeededRng(seed).fork(label).seed == stable_hash(seed, label)

    @given(seed=seeds, label=labels)
    @settings(max_examples=25)
    def test_fork_of_fork_is_stable(self, seed, label):
        a = SeededRng(seed).fork(label).fork("grandchild")
        b = SeededRng(seed).fork(label).fork("grandchild")
        assert a.seed == b.seed
        assert stream(a) == stream(b)

    def test_pinned_golden_values(self):
        # Frozen constants computed once and hardcoded: a change to the
        # hash construction or fork derivation shows up here before it
        # silently re-randomises every recorded experiment.
        assert stable_hash("a", 1) == 0x70BA9CA59271EDB6
        assert SeededRng(2018).fork("admin-behavior").seed == (
            0x71B596831C8FBBB5
        )
        assert SeededRng(42).fork("dns-jitter").seed == 0x6AC2138F7C6924A3
