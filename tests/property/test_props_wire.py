"""Property/fuzz tests for the wire codec and zone-file parser.

Decoders face attacker-controlled bytes; whatever garbage arrives, they
must fail with :class:`~repro.errors.DnsError`/`ZoneError` (or succeed),
never with an arbitrary internal exception.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.message import DnsQuery
from repro.dns.name import DomainName
from repro.dns.records import RecordType
from repro.dns.wire import decode_query, decode_response, encode_query
from repro.dns.zonefile import zone_from_text
from repro.errors import DnsError, NameError_, ZoneError


class TestWireFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=300)
    def test_decode_query_never_crashes(self, data):
        try:
            decode_query(data)
        except (DnsError, NameError_):
            pass

    @given(st.binary(max_size=200))
    @settings(max_examples=300)
    def test_decode_response_never_crashes(self, data):
        try:
            decode_response(data)
        except (DnsError, NameError_):
            pass

    @given(st.binary(max_size=64), st.integers(0, 50))
    @settings(max_examples=150)
    def test_truncated_valid_query_rejected_cleanly(self, _, cut):
        packet = encode_query(DnsQuery(DomainName("www.example.com"), RecordType.A))
        truncated = packet[: min(cut, len(packet) - 1)]
        try:
            decode_query(truncated)
        except (DnsError, NameError_):
            pass

    def test_high_byte_label_rejected_cleanly(self):
        # A structurally valid query whose label carries non-ASCII bytes
        # must fail with DnsError, not UnicodeDecodeError.
        packet = (
            bytes.fromhex("0001" "0000" "0001" "0000" "0000" "0000")
            + bytes([3, 0xFF, 0xFE, 0xFD, 0])  # one 3-byte high label
            + bytes.fromhex("0001" "0001")
        )
        try:
            decode_query(packet)
            raise AssertionError("expected rejection")
        except (DnsError, NameError_):
            pass

    @given(st.binary(min_size=2, max_size=40))
    @settings(max_examples=150)
    def test_bitflipped_query_rejected_cleanly(self, noise):
        packet = bytearray(
            encode_query(DnsQuery(DomainName("www.example.com"), RecordType.A))
        )
        for index, byte in enumerate(noise):
            packet[index % len(packet)] ^= byte
        try:
            decode_query(bytes(packet))
        except (DnsError, NameError_):
            pass


class TestZonefileFuzz:
    @given(st.text(max_size=300))
    @settings(max_examples=300)
    def test_parser_never_crashes(self, text):
        try:
            zone_from_text(text)
        except (ZoneError, NameError_):
            pass

    @given(
        st.lists(
            st.sampled_from([
                "$ORIGIN example.com.",
                "$TTL 60",
                "www 60 IN A 10.0.0.1",
                "@ 60 IN NS ns1.example.com.",
                "bogus line here",
                "; comment",
                "",
                'txt 60 IN TXT "hello"',
                "@ 60 IN MX 10 mail",
            ]),
            max_size=12,
        )
    )
    @settings(max_examples=200)
    def test_shuffled_fragments_never_crash(self, lines):
        try:
            zone_from_text("\n".join(lines))
        except (ZoneError, NameError_):
            pass
