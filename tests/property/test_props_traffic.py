"""Property-based tests for the traffic plane's determinism contracts.

Three REP06x-critical invariants, driven by hypothesis:

* same seed ⇒ same drive sequence (bucket levels, breaker states, shed
  tallies are pure functions of the seed and the day count);
* admission verdicts are order-free (any permutation of the delivery
  stream sees the identical per-query verdicts);
* every piece of mutable traffic-plane state survives a serde round
  trip byte-identically, at any point in the drive.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import SimulationClock
from repro.dns.message import DnsQuery
from repro.dns.name import DomainName
from repro.dns.records import RecordType
from repro.net.geo import region
from repro.net.ipaddr import IPv4Address
from repro.obs.metrics import MetricsRegistry
from repro.rng import SeededRng
from repro.traffic import TRAFFIC_PROFILES, TrafficPlane
from repro.traffic.defense import AdaptiveLimiter, CircuitBreaker, TokenBucket

FLEETS = {
    "cloudflare": [IPv4Address("10.1.0.1"), IPv4Address("10.1.0.2")],
    "incapsula": [IPv4Address("10.2.0.1")],
}


def build_plane(seed, profile_name="flood", **overrides):
    profile = TRAFFIC_PROFILES[profile_name]
    if overrides:
        profile = replace(profile, **overrides)
    clock = SimulationClock()
    plane = TrafficPlane(
        profile,
        clock,
        SeededRng(seed).fork("props-traffic"),
        {name: list(ips) for name, ips in FLEETS.items()},
        metrics=MetricsRegistry(),
    )
    return plane, clock


def drive(plane, clock, days):
    for _ in range(days):
        plane.drive_day()
        clock.advance_days(1)


class TestTokenBucketProperties:
    @given(
        capacity=st.integers(1, 10_000),
        rate=st.integers(1, 10_000),
        ops=st.lists(st.integers(0, 20_000), max_size=30),
    )
    def test_level_stays_in_range_and_conserves(self, capacity, rate, ops):
        bucket = TokenBucket(capacity=capacity, rate_per_day=rate)
        for index, demand in enumerate(ops):
            if index % 2 == 0:
                bucket.refill(0.25 * (1 + index % 4))
            admitted = bucket.consume(demand)
            assert 0 <= admitted <= demand
            assert 0 <= bucket.level <= capacity

    @given(
        capacity=st.integers(1, 10_000),
        rate=st.integers(1, 10_000),
        ops=st.lists(st.integers(0, 20_000), max_size=30),
    )
    def test_replay_is_byte_identical(self, capacity, rate, ops):
        a = TokenBucket(capacity=capacity, rate_per_day=rate)
        b = TokenBucket(capacity=capacity, rate_per_day=rate)
        for demand in ops:
            a.refill(0.5)
            b.refill(0.5)
            assert a.consume(demand) == b.consume(demand)
        assert a.state_dict() == b.state_dict()


class TestCircuitBreakerProperties:
    @given(
        overloads=st.lists(st.booleans(), min_size=1, max_size=60),
        threshold=st.integers(1, 5),
    )
    def test_same_overload_sequence_same_states(self, overloads, threshold):
        a = CircuitBreaker("10.0.0.1", failure_threshold=threshold)
        b = CircuitBreaker("10.0.0.1", failure_threshold=threshold)
        for day, overloaded in enumerate(overloads):
            a.record_day(day, overloaded)
            b.record_day(day, overloaded)
            assert a.is_open(day) == b.is_open(day)
        assert a.state_dict() == b.state_dict()

    @given(
        overloads=st.lists(st.booleans(), min_size=1, max_size=60),
        threshold=st.integers(1, 5),
        split=st.integers(0, 59),
    )
    def test_serde_round_trip_mid_sequence(self, overloads, threshold, split):
        """Restoring a breaker mid-history continues the original's
        exact trajectory (the checkpoint/resume contract)."""
        original = CircuitBreaker("10.0.0.1", failure_threshold=threshold)
        restored = CircuitBreaker("10.0.0.1", failure_threshold=threshold)
        split = min(split, len(overloads))
        for day, overloaded in enumerate(overloads[:split]):
            original.record_day(day, overloaded)
        restored.restore_state(original.state_dict())
        for day, overloaded in enumerate(overloads[split:], start=split):
            original.record_day(day, overloaded)
            restored.record_day(day, overloaded)
        assert original.state_dict() == restored.state_dict()

    @given(utilizations=st.lists(st.floats(0.0, 2.0), min_size=1, max_size=30))
    def test_limiter_tier_depends_only_on_last_utilization(self, utilizations):
        limiter = AdaptiveLimiter()
        for utilization in utilizations:
            limiter.update(utilization)
        fresh = AdaptiveLimiter()
        fresh.update(utilizations[-1])
        assert limiter.tier == fresh.tier


class TestPlaneProperties:
    @given(seed=st.integers(0, 2**32 - 1), days=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_same_seed_same_shed_sequence(self, seed, days):
        a, clock_a = build_plane(seed)
        b, clock_b = build_plane(seed)
        drive(a, clock_a, days)
        drive(b, clock_b, days)
        assert a.drive_state() == b.drive_state()

    @given(
        seed=st.integers(0, 2**32 - 1),
        days=st.integers(0, 6),
        qnames=st.lists(
            st.integers(0, 10_000), min_size=1, max_size=40, unique=True
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_admission_is_order_free(self, seed, days, qnames):
        plane, clock = build_plane(seed)
        drive(plane, clock, days)
        plane._limiter.update(1.0)  # force throttling so verdicts vary
        deliveries = [
            (address, DnsQuery(DomainName(f"www.s{n}.com"), RecordType.A))
            for n in qnames
            for address in plane.monitored_addresses()
        ]
        forward = {
            (str(address), str(query.qname)): plane.admit_dns(
                address, query, region("london")
            )
            for address, query in deliveries
        }
        backward = {
            (str(address), str(query.qname)): plane.admit_dns(
                address, query, region("london")
            )
            for address, query in reversed(deliveries)
        }
        assert forward == backward

    @given(seed=st.integers(0, 2**32 - 1), days=st.integers(0, 8))
    @settings(max_examples=25, deadline=None)
    def test_serde_round_trip_at_any_barrier(self, seed, days):
        plane, clock = build_plane(seed)
        drive(plane, clock, days)
        for index in range(10):
            query = DnsQuery(DomainName(f"www.s{index}.com"), RecordType.A)
            plane.admit_dns(plane.monitored_addresses()[0], query, None)
        fresh, _ = build_plane(seed)
        fresh.restore_state(plane.state_dict())
        assert fresh.state_dict() == plane.state_dict()
