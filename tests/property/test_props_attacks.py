"""Property-based tests for the attack plane's determinism contracts.

The three REP06x-critical invariants the attack plane must hold, driven
by hypothesis:

* wave verdicts are *order-free*: the verdict for one subject is a pure
  hash of (label, seed, event, day, subject), so any permutation or
  partition of the population sees the identical per-subject verdicts;
* waves are *shard-replicable*: the same (seed, day, event) produces
  the same wave no matter how the population is split across 1, 2, or
  4 shard workers — the merged verdict set equals the monolithic one;
* every piece of mutable attack-plane state survives a serde round trip
  byte-identically at any barrier of the drive.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.events import wave_triggered, weighted_pick
from repro.world import SimulatedInternet, WorldConfig

POPULATION = 120
WARMUP = 4

SUBJECTS = [f"www.site-{index:06d}.sim" for index in range(48)]
PROVIDERS = ["akamai", "cloudflare", "incapsula"]
WEIGHTS = [0.2, 0.5, 0.3]


def build_attacked_world(seed, days):
    world = SimulatedInternet(
        WorldConfig(population_size=POPULATION, seed=seed)
    )
    world.engine.run_days(WARMUP)
    plane = world.install_attacks("campaign")
    world.engine.run_days(days)
    return world, plane


class TestVerdictOrderFreedom:
    @given(
        seed=st.integers(0, 2**32 - 1),
        event_id=st.integers(0, 12),
        day=st.integers(0, 120),
        rate=st.floats(0.0, 1.0),
        order=st.permutations(SUBJECTS),
    )
    @settings(max_examples=50, deadline=None)
    def test_trigger_verdicts_survive_any_iteration_order(
        self, seed, event_id, day, rate, order
    ):
        canonical = {
            subject: wave_triggered(
                "attack-join", seed, event_id, day, subject, rate
            )
            for subject in SUBJECTS
        }
        permuted = {
            subject: wave_triggered(
                "attack-join", seed, event_id, day, subject, rate
            )
            for subject in order
        }
        assert permuted == canonical

    @given(
        seed=st.integers(0, 2**32 - 1),
        event_id=st.integers(0, 12),
        day=st.integers(0, 120),
        low=st.floats(0.0, 1.0),
        high=st.floats(0.0, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_raising_the_rate_never_untriggers(
        self, seed, event_id, day, low, high
    ):
        low, high = min(low, high), max(low, high)
        for subject in SUBJECTS[:12]:
            fired_low = wave_triggered(
                "attack-join", seed, event_id, day, subject, low
            )
            fired_high = wave_triggered(
                "attack-join", seed, event_id, day, subject, high
            )
            assert fired_high or not fired_low

    @given(
        seed=st.integers(0, 2**32 - 1),
        event_id=st.integers(0, 12),
        day=st.integers(0, 120),
        order=st.permutations(SUBJECTS),
    )
    @settings(max_examples=50, deadline=None)
    def test_provider_picks_survive_any_iteration_order(
        self, seed, event_id, day, order
    ):
        canonical = {
            subject: weighted_pick(
                "attack-join-provider", seed, event_id, day, subject,
                PROVIDERS, WEIGHTS,
            )
            for subject in SUBJECTS
        }
        permuted = {
            subject: weighted_pick(
                "attack-join-provider", seed, event_id, day, subject,
                PROVIDERS, WEIGHTS,
            )
            for subject in order
        }
        assert permuted == canonical


class TestShardReplicability:
    @given(
        seed=st.integers(0, 2**32 - 1),
        event_id=st.integers(0, 12),
        day=st.integers(0, 120),
        rate=st.floats(0.0, 1.0),
        shard_count=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=50, deadline=None)
    def test_partitioned_verdicts_merge_to_the_monolithic_wave(
        self, seed, event_id, day, rate, shard_count
    ):
        """Same (seed, day, event) ⇒ same wave at any shard count.

        Each shard worker iterates only its slice of the population;
        the union of per-shard triggered sets must equal the wave the
        monolithic run computes — the exact property the byte-agreement
        merge relies on.
        """
        monolithic = {
            subject
            for subject in SUBJECTS
            if wave_triggered(
                "attack-join", seed, event_id, day, subject, rate
            )
        }
        merged = set()
        for shard in range(shard_count):
            shard_slice = SUBJECTS[shard::shard_count]
            merged |= {
                subject
                for subject in shard_slice
                if wave_triggered(
                    "attack-join", seed, event_id, day, subject, rate
                )
            }
        assert merged == monolithic

    @given(seed=st.integers(0, 2**16 - 1), days=st.integers(1, 14))
    @settings(max_examples=15, deadline=None)
    def test_independent_replicas_agree_on_drive_state(self, seed, days):
        """Two processes building the world from (seed, population) and
        replaying the same days must agree byte for byte on the attack
        plane's shard payload — schedule, attacked sets, tallies."""
        _, plane_a = build_attacked_world(seed, days)
        _, plane_b = build_attacked_world(seed, days)
        assert plane_a.drive_state() == plane_b.drive_state()


class TestSerdeRoundTrip:
    @given(seed=st.integers(0, 2**16 - 1), days=st.integers(0, 14))
    @settings(max_examples=15, deadline=None)
    def test_state_round_trips_at_any_barrier(self, seed, days):
        world, plane = build_attacked_world(seed, days)
        # Exercise the measurement side too, so outage counters (when
        # an event is active) are part of the round-tripped state.
        for address in sorted(plane._attacked_dns)[:5]:
            from repro.net.ipaddr import IPv4Address

            plane.admit_dns(IPv4Address(address), None, None)
        snapshot = plane.state_dict()
        _, replica = build_attacked_world(seed, days)
        for address in sorted(replica._attacked_dns)[:5]:
            from repro.net.ipaddr import IPv4Address

            replica.admit_dns(IPv4Address(address), None, None)
        replica.restore_state(snapshot)
        assert replica.state_dict() == snapshot
