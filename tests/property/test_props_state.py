"""Property tests for the checkpoint plane's state round-trips.

The invariant every snapshot/restore pair must satisfy: capturing state
at *any* point and restoring it into a fresh (or the same) object
leaves all future behaviour identical to the uninterrupted original.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import SimulationClock
from repro.faults.quarantine import NameserverQuarantine
from repro.faults.retry import RetryBudget
from repro.net.ipaddr import IPv4Address
from repro.rng import SeededRng

_ADDRESSES = st.integers(min_value=1, max_value=40).map(
    lambda low: IPv4Address(f"10.0.0.{low}")
)


class TestRetryBudgetRoundTrip:
    @given(
        limit=st.integers(min_value=1, max_value=5_000),
        charges=st.lists(st.integers(min_value=-50, max_value=2_000), max_size=30),
        split=st.integers(min_value=0, max_value=30),
    )
    def test_snapshot_anywhere_preserves_future_behaviour(
        self, limit, charges, split
    ):
        split = min(split, len(charges))
        original = RetryBudget(limit)
        for ms in charges[:split]:
            original.charge(ms)

        clone = RetryBudget.from_snapshot(original.snapshot())
        trajectory_original = []
        trajectory_clone = []
        for ms in charges[split:]:
            original.charge(ms)
            clone.charge(ms)
            trajectory_original.append((original.spent_ms, original.exhausted))
            trajectory_clone.append((clone.spent_ms, clone.exhausted))
        assert trajectory_clone == trajectory_original
        assert clone.snapshot() == original.snapshot()


class TestQuarantineRoundTrip:
    @given(
        events=st.lists(
            st.tuples(st.sampled_from(["quarantine", "release"]), _ADDRESSES),
            max_size=25,
        ),
        split=st.integers(min_value=0, max_value=25),
        advances=st.lists(
            st.integers(min_value=0, max_value=90_000), min_size=1, max_size=6
        ),
        probe=st.lists(_ADDRESSES, min_size=1, max_size=8),
    )
    @settings(max_examples=50)
    def test_restore_preserves_future_partitions(
        self, events, split, advances, probe
    ):
        split = min(split, len(events))
        clock = SimulationClock()
        original = NameserverQuarantine(clock)
        for action, address in events[:split]:
            getattr(original, action)(address)

        # Restore into a *fresh* instance sharing the clock, then replay
        # the identical remaining history against both.
        clone = NameserverQuarantine(clock)
        clone.restore(original.snapshot())
        for action, address in events[split:]:
            getattr(original, action)(address)
            getattr(clone, action)(address)

        for seconds in advances:
            clock.advance(seconds)
            assert clone.partition(probe) == original.partition(probe)
            assert [
                clone.reprobe_due(address) for address in probe
            ] == [original.reprobe_due(address) for address in probe]
        assert clone.snapshot() == original.snapshot()

    @given(events=st.lists(_ADDRESSES, max_size=15))
    def test_snapshot_restore_is_exact(self, events):
        clock = SimulationClock()
        quarantine = NameserverQuarantine(clock)
        for address in events:
            quarantine.quarantine(address)
            clock.advance(3600)
        snapshot = quarantine.snapshot()
        quarantine.restore(snapshot)
        assert quarantine.snapshot() == snapshot


class TestSeededRngStateRoundTrip:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        warm_draws=st.integers(min_value=0, max_value=40),
        compare_draws=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=50)
    def test_setstate_resumes_exact_stream(self, seed, warm_draws, compare_draws):
        rng = SeededRng(seed)
        for _ in range(warm_draws):
            rng.random()
        state = rng.getstate()
        expected = [rng.random() for _ in range(compare_draws)]

        fresh = SeededRng(seed)
        fresh.setstate(state)
        assert [fresh.random() for _ in range(compare_draws)] == expected

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_state_is_json_compatible(self, seed):
        import json

        rng = SeededRng(seed)
        rng.random()
        state = json.loads(json.dumps(rng.getstate()))
        clone = SeededRng(seed)
        clone.setstate(state)
        assert clone.random() == rng.random()
