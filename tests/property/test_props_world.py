"""Property-based tests over whole simulated worlds.

These sample seeds and small populations and assert global invariants
that must hold for *any* world the generator can produce.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.collector import DnsRecordCollector
from repro.core.matching import ProviderMatcher
from repro.core.status import DpsStatus, StatusDeterminer
from repro.world import SimulatedInternet, WorldConfig
from repro.world.website import GroundTruthStatus

_world_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _build(seed: int) -> SimulatedInternet:
    return SimulatedInternet(WorldConfig(population_size=150, seed=seed))


class TestWorldInvariants:
    @given(st.integers(min_value=0, max_value=10_000))
    @_world_settings
    def test_every_live_site_resolves_consistently(self, seed):
        """Public resolution of every live, non-multiCDN site agrees
        with its ground truth: ON → provider edge; OFF/NONE → an origin
        pool address."""
        world = _build(seed)
        resolver = world.make_resolver()
        for site in world.population[:60]:
            if not site.alive or site.multicdn:
                continue
            result = resolver.resolve(site.www)
            assert result.ok, str(site.www)
            address = result.addresses[0]
            if site.status is GroundTruthStatus.ON:
                assert site.provider is not None
                assert any(address in p for p in site.provider.prefixes) or (
                    address in site.provider.offnet_edge_ips
                )
            else:
                assert address in site.origin_pool

    @given(st.integers(min_value=0, max_value=10_000))
    @_world_settings
    def test_measurement_agrees_with_ground_truth(self, seed):
        """Table III inference is correct for every site, any seed."""
        world = _build(seed)
        matcher = ProviderMatcher(world.specs, world.routeviews)
        shared = frozenset(
            ip for p in world.providers.values() for ip in p.offnet_edge_ips
        )
        determiner = StatusDeterminer(matcher, shared)
        collector = DnsRecordCollector(world.make_resolver())
        sites = [s for s in world.population[:50] if s.alive and not s.multicdn]
        snapshot = collector.collect([str(s.www) for s in sites], day=0)
        for site in sites:
            observation = determiner.observe(snapshot.get(site.www))
            assert observation.status == site.status.value, str(site.www)
            if site.provider is not None:
                assert observation.provider == site.provider.name

    @given(st.integers(min_value=0, max_value=10_000))
    @_world_settings
    def test_dynamics_preserve_invariants(self, seed):
        """After running dynamics, ground-truth state is still coherent:
        every ON site is an active customer of its provider, every OFF
        site a paused one, and dead sites have no provider."""
        world = _build(seed)
        world.engine.run_days(25)
        for site in world.population:
            if site.multicdn:
                continue
            if not site.alive:
                assert site.provider is None
                continue
            if site.provider is None:
                assert site.status is GroundTruthStatus.NONE
                continue
            record = site.provider.customer_for(site.www)
            assert record is not None, str(site.www)
            if site.status is GroundTruthStatus.ON:
                assert record.is_active
            else:
                from repro.dps.portal import CustomerStatus
                assert record.status is CustomerStatus.PAUSED
