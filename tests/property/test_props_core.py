"""Property-based tests for measurement-core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.behaviors import BehaviorDetector
from repro.core.exposure import ExposureTimeline
from repro.core.fsm import DpsUsageFsm
from repro.core.pause import PauseAnalyzer, empirical_cdf
from repro.core.status import DpsObservation, DpsStatus
from repro.dps.scrubbing import ScrubbingCenter
from repro.net.traffic import TrafficFlow
from repro.world.admin import BehaviorKind

statuses = st.sampled_from(
    [
        (DpsStatus.NONE, None),
        (DpsStatus.ON, "cloudflare"),
        (DpsStatus.OFF, "cloudflare"),
        (DpsStatus.ON, "incapsula"),
        (DpsStatus.OFF, "incapsula"),
        (DpsStatus.ON, "fastly"),
    ]
)


def _obs(pair, day=0):
    status, provider = pair
    return DpsObservation(www="w", day=day, status=status, provider=provider)


class TestDetectorFsmAgreement:
    @given(statuses, statuses)
    def test_detector_matches_fsm_labels(self, prev, curr):
        detector = BehaviorDetector()
        measured = detector.diff_pair({"w": _obs(prev)}, {"w": _obs(curr, 1)}, day=1)
        assert tuple(b.kind for b in measured) == DpsUsageFsm.classify(
            _obs(prev), _obs(curr, 1)
        )

    @given(st.lists(statuses, min_size=2, max_size=12))
    @settings(max_examples=80)
    def test_every_observation_sequence_is_fsm_legal(self, sequence):
        observations = [_obs(pair, day) for day, pair in enumerate(sequence)]
        # Must not raise: any 3-status pair is a legal FSM edge.
        labels = DpsUsageFsm.validate_sequence(observations)
        assert len(labels) == len(sequence) - 1

    @given(st.lists(statuses, min_size=2, max_size=12))
    @settings(max_examples=60)
    def test_behavior_conservation(self, sequence):
        """JOIN/LEAVE balance: a site observed NONE at both ends has
        equal JOINs and LEAVEs; differing ends differ by exactly one."""
        observations = [{"w": _obs(pair, day)} for day, pair in enumerate(sequence)]
        behaviors = BehaviorDetector().diff_series(observations, first_day=1)
        joins = sum(1 for b in behaviors if b.kind is BehaviorKind.JOIN)
        leaves = sum(1 for b in behaviors if b.kind is BehaviorKind.LEAVE)
        start_none = sequence[0][0] == DpsStatus.NONE
        end_none = sequence[-1][0] == DpsStatus.NONE
        if start_none == end_none:
            assert joins == leaves
        else:
            assert abs(joins - leaves) == 1


class TestPauseProperties:
    pause_resume_days = st.lists(
        st.tuples(st.integers(0, 30), st.integers(1, 30)), min_size=0, max_size=8
    )

    @given(pause_resume_days)
    def test_durations_positive(self, pairs):
        from repro.core.behaviors import MeasuredBehavior
        behaviors = []
        day = 0
        for gap_before, duration in pairs:
            day += gap_before
            behaviors.append(
                MeasuredBehavior(day=day, www="w", kind=BehaviorKind.PAUSE,
                                 from_provider="cloudflare")
            )
            day += duration
            behaviors.append(
                MeasuredBehavior(day=day, www="w", kind=BehaviorKind.RESUME,
                                 to_provider="cloudflare")
            )
        windows = PauseAnalyzer().windows(behaviors)
        assert len(windows) == len(pairs)
        assert all(w.duration_days >= 1 for w in windows)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=40))
    def test_cdf_invariants(self, durations):
        cdf = empirical_cdf(durations)
        values = [v for v, _ in cdf]
        fractions = [f for _, f in cdf]
        assert values == sorted(set(durations))
        assert all(0 < f <= 1 for f in fractions)
        assert fractions == sorted(fractions)
        assert abs(fractions[-1] - 1.0) < 1e-9


class TestExposureProperties:
    weekly_sets = st.lists(
        st.sets(st.sampled_from(["a", "b", "c", "d", "e"])), min_size=1, max_size=8
    )

    @given(weekly_sets)
    def test_partitions(self, weeks):
        timeline = ExposureTimeline()
        for week in weeks:
            timeline.record_week(week)
        summary = timeline.summary()
        # Newly-exposed counts partition the distinct set.
        assert sum(summary.new_per_week.values()) == summary.total_distinct
        # Always-exposed is a subset of every week.
        always = timeline.always_exposed()
        for week in weeks:
            assert always <= week
        # Bounded exposures never include week-0 or last-week sightings.
        bounded = timeline.bounded_exposures()
        if weeks:
            assert not (bounded & weeks[0])
            assert not (bounded & weeks[-1])


class TestScrubbingProperties:
    volumes = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)

    @given(volumes, volumes)
    def test_scrubbing_never_amplifies(self, legit, attack):
        center = ScrubbingCenter("p", 100.0)
        report = center.scrub(TrafficFlow(legit, attack))
        assert report.forwarded.legitimate_gbps <= legit + 1e-9
        assert report.forwarded.attack_gbps <= attack + 1e-9
        assert 0.0 <= report.legitimate_survival <= 1.0 + 1e-9

    @given(volumes, volumes)
    def test_attack_accounting(self, legit, attack):
        center = ScrubbingCenter("p", 100.0)
        report = center.scrub(TrafficFlow(legit, attack))
        accounted = report.forwarded.attack_gbps + report.dropped_attack_gbps
        # Saturated centres also *drop* traffic indiscriminately, so
        # accounted attack never exceeds the offered attack.
        assert accounted <= attack + 1e-6
