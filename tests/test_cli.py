"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_study_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.population == 2000
        assert args.days == 42
        assert args.warmup == 56

    def test_attack_args(self):
        args = build_parser().parse_args(
            ["attack", "--population", "300", "--gbps", "500"]
        )
        assert args.gbps == 500.0

    def test_plan_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["purge-probe", "--plan", "platinum"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.population == 2000
        assert args.warmup == 7
        assert args.label is None
        assert args.out is None


class TestCommands:
    def test_attack_command(self, capsys):
        code = main(["attack", "--population", "200", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "path=scrubbed" in out
        assert "path=direct" in out
        assert "site down" in out

    def test_purge_probe_command(self, capsys):
        code = main(["purge-probe", "--population", "120", "--seed", "3",
                     "--trials", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "purged in week 4" in out

    def test_scan_command(self, capsys):
        code = main(["scan", "--population", "800", "--seed", "3",
                     "--warmup", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hidden=" in out

    def test_bench_command(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_clitest.json"
        code = main([
            "bench", "--population", "120", "--seed", "3",
            "--warmup", "2", "--label", "clitest", "--out", str(out_path),
        ])
        printed = capsys.readouterr().out
        assert code == 0
        assert "E1 collection" in printed
        assert f"bench written to {out_path}" in printed
        payload = json.loads(out_path.read_text())
        assert payload["label"] == "clitest"
        assert payload["population"] == 120
        counters = payload["e1_collection"]["counters"]
        assert counters["resolver.queries_sent"] > 0

    def test_bench_default_out_uses_label(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["bench", "--population", "60", "--seed", "3",
                     "--warmup", "1"])
        assert code == 0
        assert (tmp_path / "BENCH_p60.json").exists()

    def test_study_command_small(self, capsys):
        code = main([
            "study", "--population", "250", "--seed", "3",
            "--days", "8", "--warmup", "5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig. 2" in out and "Table VI" in out


class TestChaosCommand:
    def test_chaos_parser_defaults(self):
        args = build_parser().parse_args(["chaos", "--profile", "lossy-default"])
        assert args.profile == "lossy-default"
        assert args.population == 400
        assert args.seed == 2018
        assert args.warmup == 21
        assert args.out is None

    def test_chaos_profile_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--profile", "nope"])

    def test_chaos_equivalence_profile_passes(self, capsys, tmp_path):
        out_path = tmp_path / "CHAOS_clitest.json"
        code = main([
            "chaos", "--profile", "lossy-default", "--population", "80",
            "--seed", "3", "--warmup", "5", "--out", str(out_path),
        ])
        printed = capsys.readouterr().out
        assert code == 0
        assert "artifacts identical to the fault-free run" in printed
        payload = json.loads(out_path.read_text())
        assert payload["profile"] == "lossy-default"
        assert payload["identical"] is True
        assert payload["passed"] is True
        assert payload["divergences"] == []

    def test_chaos_exits_nonzero_on_divergence(self, capsys, tmp_path, monkeypatch):
        import repro.faults.chaos as chaos_module

        failing = {
            "profile": "lossy-default",
            "description": "stub",
            "expect_equivalence": True,
            "population": 10,
            "seed": 1,
            "warmup_days": 1,
            "identical": False,
            "divergences": ["collection.www.example.com.rcode"],
            "faults_injected": 5,
            "retries": {"resolver": 1, "client": 0, "http": 0},
            "unmeasured_sites": 0,
            "quarantined_nameservers": [],
            "counters": {},
            "passed": False,
        }
        monkeypatch.setattr(chaos_module, "run_chaos", lambda *a, **k: failing)
        monkeypatch.chdir(tmp_path)
        code = main(["chaos", "--profile", "lossy-default"])
        captured = capsys.readouterr()
        assert code == 1
        assert "chaos check FAILED" in captured.err
        assert (tmp_path / "CHAOS_lossy-default.json").exists()


class TestCheckpointCommands:
    def test_resume_parser_defaults(self):
        args = build_parser().parse_args(["resume", "ckpt-dir"])
        assert args.checkpoint == "ckpt-dir"
        assert args.population == 2000
        assert args.seed == 2018
        assert args.days == 42
        assert args.warmup == 56
        assert args.fault_profile is None

    def test_kill_matrix_parser_defaults(self):
        args = build_parser().parse_args(["kill-matrix"])
        assert args.population == 2000
        assert args.days == 4
        assert args.warmup == 10
        assert args.out == "KILLMATRIX.json"
        assert args.workdir is None

    def test_fault_profile_requires_checkpoint(self, capsys):
        code = main([
            "study", "--population", "150", "--seed", "11",
            "--days", "1", "--warmup", "2",
            "--fault-profile", "lossy-default",
        ])
        assert code == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_checkpointed_study_then_resume(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        base = ["--population", "150", "--seed", "11",
                "--days", "2", "--warmup", "4"]
        code = main(["study", "--checkpoint", ckpt] + base)
        assert code == 0
        assert "Table VI" in capsys.readouterr().out

        # Mismatched seed must refuse with a nonzero exit.
        wrong = ["resume", ckpt, "--population", "150", "--seed", "12",
                 "--days", "2", "--warmup", "4"]
        code = main(wrong)
        captured = capsys.readouterr()
        assert code == 1
        assert "seed" in captured.err

        # Matching inputs resume cleanly (the run is already complete).
        code = main(["resume", ckpt] + base)
        assert code == 0
        assert "Table VI" in capsys.readouterr().out

    def test_study_checkpoint_refuses_reuse(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        base = ["--population", "150", "--seed", "11",
                "--days", "1", "--warmup", "2"]
        assert main(["study", "--checkpoint", ckpt] + base) == 0
        capsys.readouterr()
        code = main(["study", "--checkpoint", ckpt] + base)
        captured = capsys.readouterr()
        assert code == 1
        assert "already holds a manifest" in captured.err

    def test_kill_matrix_command(self, capsys, tmp_path):
        out_path = tmp_path / "KILLMATRIX.json"
        code = main([
            "kill-matrix", "--population", "150", "--seed", "11",
            "--days", "1", "--warmup", "4",
            "--workdir", str(tmp_path / "work"), "--out", str(out_path),
        ])
        printed = capsys.readouterr().out
        assert code == 0
        assert "3 crash case(s)" in printed
        payload = json.loads(out_path.read_text())
        assert payload["passed"] is True
        assert len(payload["cases"]) == 3


class TestShardFlags:
    def test_study_shard_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.shards == 1
        assert args.shard_mode == "process"

    def test_kill_matrix_shard_defaults_to_inline(self):
        args = build_parser().parse_args(["kill-matrix"])
        assert args.shards == 1
        assert args.shard_mode == "inline"

    def test_bench_shard_list_parses(self):
        from repro.cli import _parse_shard_counts

        assert _parse_shard_counts("1,2,4,8") == [1, 2, 4, 8]
        assert _parse_shard_counts("3") == [3]
        with pytest.raises(ValueError):
            _parse_shard_counts("2,0")
        with pytest.raises(ValueError):
            _parse_shard_counts("two")

    def test_bench_rejects_bad_shard_list(self, capsys):
        code = main([
            "bench", "--population", "50", "--warmup", "1",
            "--shards", "0",
        ])
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_sharded_study_fault_profile_requires_checkpoint(self, capsys):
        code = main([
            "study", "--population", "60", "--days", "1", "--warmup", "1",
            "--shards", "2", "--fault-profile", "lossy-default",
        ])
        assert code == 2
        assert "requires --checkpoint" in capsys.readouterr().err

    def test_sharded_study_command_small(self, capsys, tmp_path):
        export = tmp_path / "report.json"
        code = main([
            "study", "--population", "60", "--seed", "5",
            "--days", "2", "--warmup", "3",
            "--shards", "2", "--shard-mode", "inline",
            "--export", str(export),
        ])
        printed = capsys.readouterr().out
        assert code == 0
        assert "SIX-WEEK STUDY" in printed or "study" in printed.lower()
        assert json.loads(export.read_text())["population_size"] == 60


class TestTrafficFlags:
    def test_traffic_defaults_to_none(self):
        for command in (["study"], ["bench"], ["kill-matrix"]):
            assert build_parser().parse_args(command).traffic is None

    def test_unknown_profile_rejected(self, capsys):
        code = main([
            "study", "--population", "60", "--days", "1", "--warmup", "1",
            "--traffic", "tsunami",
        ])
        assert code == 2
        assert "unknown traffic profile" in capsys.readouterr().err

    def test_traffic_list_command(self, capsys):
        assert main(["traffic"]) == 0
        out = capsys.readouterr().out
        for name in ("steady", "surge", "flood"):
            assert name in out

    def test_traffic_drive_command(self, capsys):
        code = main([
            "traffic", "--profile", "flood",
            "--population", "200", "--days", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "profile flood" in out
        assert "load tier now" in out

    def test_traffic_none_profile_is_a_no_op(self, capsys):
        assert main(["traffic", "--profile", "none"]) == 0
        assert "no background traffic" in capsys.readouterr().out

    def test_study_with_traffic_matches_plain_run_when_steady(
        self, capsys, tmp_path
    ):
        plain, steady = tmp_path / "plain.json", tmp_path / "steady.json"
        base = [
            "study", "--population", "60", "--seed", "5",
            "--days", "2", "--warmup", "3",
        ]
        assert main(base + ["--export", str(plain)]) == 0
        assert main(
            base + ["--traffic", "steady", "--export", str(steady)]
        ) == 0
        capsys.readouterr()
        assert plain.read_text() == steady.read_text()


class TestAttackFlags:
    def test_attacks_defaults_to_none(self):
        for command in (
            ["study"],
            ["bench"],
            ["kill-matrix"],
            ["chaos", "--profile", "lossy-default"],
        ):
            assert build_parser().parse_args(command).attacks is None

    def test_unknown_profile_rejected(self, capsys):
        code = main([
            "study", "--population", "60", "--days", "1", "--warmup", "1",
            "--attacks", "armageddon",
        ])
        assert code == 2
        assert "unknown attack profile" in capsys.readouterr().err

    def test_attacks_list_command(self, capsys):
        assert main(["attacks"]) == 0
        out = capsys.readouterr().out
        for name in ("quiet", "skirmish", "campaign", "blitz"):
            assert name in out

    def test_attacks_drive_command(self, capsys):
        code = main([
            "attacks", "--profile", "campaign",
            "--population", "200", "--days", "42",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "profile campaign: schedule" in out
        assert "OVERWHELMS" in out
        assert "drove 42 day(s)" in out

    def test_attacks_none_profile_is_a_no_op(self, capsys):
        assert main(["attacks", "--profile", "none"]) == 0
        assert "no attacks to drive" in capsys.readouterr().out

    def test_study_with_attacks_matches_plain_run_when_quiet(
        self, capsys, tmp_path
    ):
        import json

        plain, quiet = tmp_path / "plain.json", tmp_path / "quiet.json"
        base = [
            "study", "--population", "60", "--seed", "5",
            "--days", "2", "--warmup", "3",
        ]
        assert main(base + ["--export", str(plain)]) == 0
        assert main(
            base + ["--attacks", "quiet", "--export", str(quiet)]
        ) == 0
        capsys.readouterr()
        plain_payload = json.loads(plain.read_text())
        quiet_payload = json.loads(quiet.read_text())
        assert plain_payload.pop("attacks") is None
        assert quiet_payload.pop("attacks")["events"] == []
        assert plain_payload == quiet_payload
