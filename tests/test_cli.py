"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_study_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.population == 2000
        assert args.days == 42
        assert args.warmup == 56

    def test_attack_args(self):
        args = build_parser().parse_args(
            ["attack", "--population", "300", "--gbps", "500"]
        )
        assert args.gbps == 500.0

    def test_plan_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["purge-probe", "--plan", "platinum"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.population == 2000
        assert args.warmup == 7
        assert args.label is None
        assert args.out is None


class TestCommands:
    def test_attack_command(self, capsys):
        code = main(["attack", "--population", "200", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "path=scrubbed" in out
        assert "path=direct" in out
        assert "site down" in out

    def test_purge_probe_command(self, capsys):
        code = main(["purge-probe", "--population", "120", "--seed", "3",
                     "--trials", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "purged in week 4" in out

    def test_scan_command(self, capsys):
        code = main(["scan", "--population", "800", "--seed", "3",
                     "--warmup", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hidden=" in out

    def test_bench_command(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_clitest.json"
        code = main([
            "bench", "--population", "120", "--seed", "3",
            "--warmup", "2", "--label", "clitest", "--out", str(out_path),
        ])
        printed = capsys.readouterr().out
        assert code == 0
        assert "E1 collection" in printed
        assert f"bench written to {out_path}" in printed
        payload = json.loads(out_path.read_text())
        assert payload["label"] == "clitest"
        assert payload["population"] == 120
        counters = payload["e1_collection"]["counters"]
        assert counters["resolver.queries_sent"] > 0

    def test_bench_default_out_uses_label(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["bench", "--population", "60", "--seed", "3",
                     "--warmup", "1"])
        assert code == 0
        assert (tmp_path / "BENCH_p60.json").exists()

    def test_study_command_small(self, capsys):
        code = main([
            "study", "--population", "250", "--seed", "3",
            "--days", "8", "--warmup", "5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig. 2" in out and "Table VI" in out


class TestChaosCommand:
    def test_chaos_parser_defaults(self):
        args = build_parser().parse_args(["chaos", "--profile", "lossy-default"])
        assert args.profile == "lossy-default"
        assert args.population == 400
        assert args.seed == 2018
        assert args.warmup == 21
        assert args.out is None

    def test_chaos_profile_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--profile", "nope"])

    def test_chaos_equivalence_profile_passes(self, capsys, tmp_path):
        out_path = tmp_path / "CHAOS_clitest.json"
        code = main([
            "chaos", "--profile", "lossy-default", "--population", "80",
            "--seed", "3", "--warmup", "5", "--out", str(out_path),
        ])
        printed = capsys.readouterr().out
        assert code == 0
        assert "artifacts identical to the fault-free run" in printed
        payload = json.loads(out_path.read_text())
        assert payload["profile"] == "lossy-default"
        assert payload["identical"] is True
        assert payload["passed"] is True
        assert payload["divergences"] == []

    def test_chaos_exits_nonzero_on_divergence(self, capsys, tmp_path, monkeypatch):
        import repro.faults.chaos as chaos_module

        failing = {
            "profile": "lossy-default",
            "description": "stub",
            "expect_equivalence": True,
            "population": 10,
            "seed": 1,
            "warmup_days": 1,
            "identical": False,
            "divergences": ["collection.www.example.com.rcode"],
            "faults_injected": 5,
            "retries": {"resolver": 1, "client": 0, "http": 0},
            "unmeasured_sites": 0,
            "quarantined_nameservers": [],
            "counters": {},
            "passed": False,
        }
        monkeypatch.setattr(chaos_module, "run_chaos", lambda *a, **k: failing)
        monkeypatch.chdir(tmp_path)
        code = main(["chaos", "--profile", "lossy-default"])
        captured = capsys.readouterr()
        assert code == 1
        assert "chaos check FAILED" in captured.err
        assert (tmp_path / "CHAOS_lossy-default.json").exists()
