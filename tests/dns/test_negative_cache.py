"""Tests for RFC 2308 negative caching."""

import pytest

from repro.clock import SimulationClock
from repro.dns.authoritative import AuthoritativeServer
from repro.dns.cache import DnsCache
from repro.dns.message import Rcode
from repro.dns.name import DomainName
from repro.dns.records import RecordType
from repro.dns.root import DnsHierarchy
from repro.dns.zone import Zone
from repro.net.fabric import NetworkFabric
from repro.net.ipaddr import AddressAllocator


class TestCacheNegativeEntries:
    def _cache(self):
        clock = SimulationClock()
        return clock, DnsCache(clock)

    def test_put_get(self):
        _, cache = self._cache()
        cache.put_negative("missing.example.com", RecordType.A, "NXDOMAIN", ttl=60)
        assert cache.get_negative("missing.example.com", RecordType.A) == "NXDOMAIN"

    def test_expiry(self):
        clock, cache = self._cache()
        cache.put_negative("missing.example.com", RecordType.A, "NODATA", ttl=60)
        clock.advance(60)
        assert cache.get_negative("missing.example.com", RecordType.A) is None

    def test_zero_ttl_not_cached(self):
        _, cache = self._cache()
        cache.put_negative("x.com", RecordType.A, "NXDOMAIN", ttl=0)
        assert cache.get_negative("x.com", RecordType.A) is None

    def test_unknown_outcome_rejected(self):
        _, cache = self._cache()
        with pytest.raises(ValueError):
            cache.put_negative("x.com", RecordType.A, "MAYBE", ttl=60)

    def test_purge_clears_negatives(self):
        _, cache = self._cache()
        cache.put_negative("x.com", RecordType.A, "NXDOMAIN", ttl=60)
        cache.purge()
        assert cache.get_negative("x.com", RecordType.A) is None

    def test_evict_clears_negatives(self):
        _, cache = self._cache()
        cache.put_negative("x.com", RecordType.A, "NXDOMAIN", ttl=60)
        assert cache.evict("x.com", RecordType.A) == 1
        assert cache.get_negative("x.com", RecordType.A) is None

    def test_type_segregation(self):
        _, cache = self._cache()
        cache.put_negative("x.com", RecordType.A, "NODATA", ttl=60)
        assert cache.get_negative("x.com", RecordType.MX) is None


@pytest.fixture
def setup():
    fabric = NetworkFabric()
    clock = SimulationClock()
    allocator = AddressAllocator("10.0.0.0/8")
    hierarchy = DnsHierarchy(fabric, clock, allocator)
    ns_ip = allocator.allocate_address()
    zone = Zone("example.com", primary_ns="ns1.example.com")
    zone.set_a("www.example.com", "203.0.113.1")
    zone.set_a("ns1.example.com", ns_ip)
    server = AuthoritativeServer("ns1.example.com")
    server.host_zone(zone)
    fabric.register_dns(ns_ip, server)
    hierarchy.delegate_apex(
        "example.com", ["ns1.example.com"], glue={"ns1.example.com": ns_ip}
    )
    return clock, hierarchy, server


class TestResolverNegativeCaching:
    def test_nxdomain_cached(self, setup):
        clock, hierarchy, server = setup
        resolver = hierarchy.make_resolver()
        assert resolver.resolve("gone.example.com").rcode is Rcode.NXDOMAIN
        served_before = server.queries_served
        assert resolver.resolve("gone.example.com").rcode is Rcode.NXDOMAIN
        assert server.queries_served == served_before  # pure cache hit

    def test_nodata_cached(self, setup):
        clock, hierarchy, server = setup
        resolver = hierarchy.make_resolver()
        first = resolver.resolve("www.example.com", RecordType.MX)
        assert first.rcode is Rcode.NOERROR and not first.records
        served_before = server.queries_served
        second = resolver.resolve("www.example.com", RecordType.MX)
        assert second.rcode is Rcode.NOERROR and not second.records
        assert server.queries_served == served_before

    def test_negative_entry_expires(self, setup):
        clock, hierarchy, server = setup
        resolver = hierarchy.make_resolver()
        resolver.resolve("gone.example.com")
        clock.advance(301)  # past the capped negative TTL
        served_before = server.queries_served
        resolver.resolve("gone.example.com")
        assert server.queries_served > served_before

    def test_record_appearing_after_purge(self, setup):
        """A name that comes into existence is visible after the daily
        purge — the collector's flush also clears negative state."""
        clock, hierarchy, server = setup
        resolver = hierarchy.make_resolver()
        assert resolver.resolve("new.example.com").rcode is Rcode.NXDOMAIN
        zone = server.zone_for("new.example.com")
        zone.set_a("new.example.com", "203.0.113.50")
        resolver.purge_cache()
        assert resolver.resolve("new.example.com").ok

    def test_negative_cache_does_not_mask_positive(self, setup):
        clock, hierarchy, server = setup
        resolver = hierarchy.make_resolver()
        resolver.resolve("gone.example.com")
        assert resolver.resolve("www.example.com").ok
