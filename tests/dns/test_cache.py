"""Tests for the TTL cache."""

from repro.clock import SimulationClock
from repro.dns.cache import DnsCache
from repro.dns.name import DomainName
from repro.dns.records import RecordType, a_record, ns_record
from repro.obs import MetricsRegistry


def _cache():
    clock = SimulationClock()
    return clock, DnsCache(clock)


class TestBasics:
    def test_put_get(self):
        _, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1", ttl=300))
        records = cache.get("www.example.com", RecordType.A)
        assert records is not None and len(records) == 1

    def test_miss_returns_none(self):
        _, cache = _cache()
        assert cache.get("www.example.com", RecordType.A) is None

    def test_type_segregation(self):
        _, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1"))
        assert cache.get("www.example.com", RecordType.NS) is None

    def test_zero_ttl_never_cached(self):
        _, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1", ttl=0))
        assert cache.get("www.example.com", RecordType.A) is None

    def test_multiple_rdata_coexist(self):
        _, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1", ttl=300))
        cache.put(a_record("www.example.com", "2.2.2.2", ttl=300))
        assert len(cache.get("www.example.com", RecordType.A)) == 2

    def test_same_rdata_refreshes_expiry(self):
        clock, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1", ttl=100))
        clock.advance(90)
        cache.put(a_record("www.example.com", "1.1.1.1", ttl=100))
        clock.advance(50)  # original would have expired at t=100
        assert cache.get("www.example.com", RecordType.A) is not None


class TestTtl:
    def test_expiry(self):
        clock, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1", ttl=100))
        clock.advance(100)
        assert cache.get("www.example.com", RecordType.A) is None

    def test_remaining_ttl_decrements(self):
        clock, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1", ttl=100))
        clock.advance(40)
        records = cache.get("www.example.com", RecordType.A)
        assert records[0].ttl == 60

    def test_partial_expiry(self):
        clock, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1", ttl=50))
        cache.put(a_record("www.example.com", "2.2.2.2", ttl=500))
        clock.advance(100)
        records = cache.get("www.example.com", RecordType.A)
        assert len(records) == 1

    def test_long_ns_record_outlives_short_a(self):
        clock, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1", ttl=300))
        cache.put(ns_record("example.com", "ns1.dps.net", ttl=86400))
        clock.advance(3600)
        assert cache.get("www.example.com", RecordType.A) is None
        assert cache.get("example.com", RecordType.NS) is not None


class TestManagement:
    def test_purge(self):
        _, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1", ttl=300))
        cache.purge()
        assert cache.get("www.example.com", RecordType.A) is None
        assert len(cache) == 0

    def test_evict_by_type(self):
        _, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1"))
        cache.put(ns_record("www.example.com", "ns1.x.net"))
        assert cache.evict("www.example.com", RecordType.A) == 1
        assert cache.get("www.example.com", RecordType.NS) is not None

    def test_evict_all_types(self):
        _, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1"))
        cache.put(ns_record("www.example.com", "ns1.x.net"))
        assert cache.evict("www.example.com") == 2

    def test_contains_does_not_count_hits(self):
        _, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1"))
        cache.contains("www.example.com", RecordType.A)
        assert cache.hits == 0

    def test_hit_miss_counters(self):
        _, cache = _cache()
        cache.get("a.com", RecordType.A)
        cache.put(a_record("a.com", "1.1.1.1"))
        cache.get("a.com", RecordType.A)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_len_counts_live_records(self):
        clock, cache = _cache()
        cache.put(a_record("a.com", "1.1.1.1", ttl=10))
        cache.put(a_record("b.com", "2.2.2.2", ttl=1000))
        assert len(cache) == 2
        clock.advance(100)
        assert len(cache) == 1


class TestExpiryEdge:
    """Expiry is exclusive: at ``exp == now`` the entry is dead (an
    answer handed out now would carry TTL 0 — uncacheable)."""

    def test_live_one_second_before_expiry(self):
        clock, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1", ttl=100))
        clock.advance(99)
        records = cache.get("www.example.com", RecordType.A)
        assert records is not None
        assert records[0].ttl == 1

    def test_dead_at_exact_expiry(self):
        clock, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1", ttl=100))
        clock.advance(100)
        assert cache.get("www.example.com", RecordType.A) is None
        assert not cache.contains("www.example.com", RecordType.A)

    def test_expired_read_counts_as_miss(self):
        clock, cache = _cache()
        cache.put(a_record("www.example.com", "1.1.1.1", ttl=10))
        clock.advance(10)
        cache.get("www.example.com", RecordType.A)
        assert cache.misses == 1
        assert cache.hits == 0

    def test_negative_entry_dead_at_exact_expiry(self):
        clock, cache = _cache()
        cache.put_negative("gone.example.com", RecordType.A, "NXDOMAIN", ttl=50)
        assert cache.get_negative("gone.example.com", RecordType.A) == "NXDOMAIN"
        clock.advance(50)
        assert cache.get_negative("gone.example.com", RecordType.A) is None
        assert cache.negative_hits == 1


class TestMetricsMirroring:
    """Hit/miss/negative-hit accounting mirrors into an injected
    registry under ``cache.*`` (what ``repro bench`` snapshots)."""

    def test_counters_mirrored(self):
        clock = SimulationClock()
        metrics = MetricsRegistry()
        cache = DnsCache(clock, metrics)
        assert cache.metrics is metrics
        cache.get("a.com", RecordType.A)                      # miss
        cache.put(a_record("a.com", "1.1.1.1"))
        cache.get("a.com", RecordType.A)                      # hit
        cache.put_negative("b.com", RecordType.A, "NODATA", ttl=30)
        cache.get_negative("b.com", RecordType.A)             # negative hit
        cache.purge()
        assert metrics.snapshot("cache") == {
            "cache.hits": 1,
            "cache.misses": 1,
            "cache.negative_hits": 1,
            "cache.purges": 1,
        }

    def test_private_registry_by_default(self):
        _, cache = _cache()
        cache.get("a.com", RecordType.A)
        assert cache.metrics.value("cache.misses") == 1
