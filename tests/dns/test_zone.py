"""Tests for zones: records, delegations, the existence index."""

import pytest

from repro.dns.name import DomainName, ROOT
from repro.dns.records import RecordType, a_record, cname_record, mx_record, ns_record
from repro.dns.zone import Zone
from repro.errors import ZoneError
from repro.net.ipaddr import IPv4Address


@pytest.fixture
def zone() -> Zone:
    return Zone("example.com", primary_ns="ns1.example.com")


class TestMutation:
    def test_add_and_lookup(self, zone):
        zone.add(a_record("www.example.com", "1.1.1.1"))
        records = zone.lookup("www.example.com", RecordType.A)
        assert len(records) == 1
        assert records[0].address == IPv4Address("1.1.1.1")

    def test_lookup_missing_is_empty(self, zone):
        assert zone.lookup("www.example.com", RecordType.A) == []

    def test_duplicate_record_rejected(self, zone):
        zone.add(a_record("www.example.com", "1.1.1.1"))
        with pytest.raises(ZoneError):
            zone.add(a_record("www.example.com", "1.1.1.1"))

    def test_multiple_a_records_allowed(self, zone):
        zone.add(a_record("www.example.com", "1.1.1.1"))
        zone.add(a_record("www.example.com", "2.2.2.2"))
        assert len(zone.lookup("www.example.com", RecordType.A)) == 2

    def test_out_of_zone_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add(a_record("www.other.com", "1.1.1.1"))

    def test_soa_via_add_rejected(self, zone):
        from repro.dns.records import soa_record
        with pytest.raises(ZoneError):
            zone.add(soa_record("example.com", "ns1.example.com"))

    def test_replace(self, zone):
        zone.add(a_record("www.example.com", "1.1.1.1"))
        zone.replace(a_record("www.example.com", "2.2.2.2"))
        records = zone.lookup("www.example.com", RecordType.A)
        assert [r.address for r in records] == [IPv4Address("2.2.2.2")]

    def test_set_a_is_replace(self, zone):
        zone.set_a("www.example.com", "1.1.1.1")
        zone.set_a("www.example.com", "2.2.2.2")
        assert len(zone.lookup("www.example.com", RecordType.A)) == 1

    def test_remove_all_returns_count(self, zone):
        zone.add(a_record("www.example.com", "1.1.1.1"))
        zone.add(a_record("www.example.com", "2.2.2.2"))
        assert zone.remove_all("www.example.com", RecordType.A) == 2
        assert zone.remove_all("www.example.com", RecordType.A) == 0

    def test_remove_name_all_types(self, zone):
        zone.add(a_record("www.example.com", "1.1.1.1"))
        zone.add(mx_record("www.example.com", "mail.example.com"))
        assert zone.remove_name("www.example.com") == 2
        assert not zone.name_exists("www.example.com")

    def test_clear(self, zone):
        zone.add(a_record("www.example.com", "1.1.1.1"))
        zone.clear()
        assert len(zone) == 0
        assert not zone.name_exists("www.example.com")

    def test_serial_bumps_on_mutation(self, zone):
        before = zone.serial
        zone.add(a_record("www.example.com", "1.1.1.1"))
        assert zone.serial == before + 1
        zone.remove_all("www.example.com", RecordType.A)
        assert zone.serial == before + 2

    def test_noop_removal_does_not_bump_serial(self, zone):
        before = zone.serial
        zone.remove_all("www.example.com", RecordType.A)
        assert zone.serial == before


class TestCnameConstraints:
    def test_cname_conflicts_with_existing_data(self, zone):
        zone.add(a_record("www.example.com", "1.1.1.1"))
        with pytest.raises(ZoneError):
            zone.add(cname_record("www.example.com", "edge.cdn.net"))

    def test_data_beside_cname_is_allowed_to_fail_loudly(self, zone):
        # Our model only enforces the CNAME-addition side; adding the
        # CNAME first then A data is the hosting code's responsibility
        # to avoid (it uses remove_name + set).
        zone.add(cname_record("www.example.com", "edge.cdn.net"))
        assert zone.lookup("www.example.com", RecordType.CNAME)


class TestDelegation:
    def test_delegate_creates_cut_and_glue(self, zone):
        zone.delegate(
            "sub.example.com",
            ["ns1.sub.example.com"],
            glue={"ns1.sub.example.com": "9.9.9.9"},
        )
        assert zone.delegation_covering("deep.sub.example.com") == DomainName("sub.example.com")
        assert zone.lookup("ns1.sub.example.com", RecordType.A)

    def test_delegation_covering_misses_siblings(self, zone):
        zone.delegate("sub.example.com", ["ns1.other.net"])
        assert zone.delegation_covering("www.example.com") is None

    def test_deepest_cut_wins(self, zone):
        zone.delegate("a.example.com", ["ns1.other.net"])
        zone.delegate("b.a.example.com", ["ns2.other.net"])
        assert zone.delegation_covering("x.b.a.example.com") == DomainName("b.a.example.com")

    def test_apex_ns_is_not_a_delegation(self, zone):
        zone.add(ns_record("example.com", "ns1.example.com"))
        assert zone.delegation_covering("www.example.com") is None

    def test_delegate_origin_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.delegate("example.com", ["ns1.other.net"])

    def test_delegate_requires_nameservers(self, zone):
        with pytest.raises(ZoneError):
            zone.delegate("sub.example.com", [])

    def test_redelegate_replaces(self, zone):
        zone.delegate("sub.example.com", ["ns1.other.net"])
        zone.delegate("sub.example.com", ["ns2.other.net"])
        targets = [r.target for r in zone.lookup("sub.example.com", RecordType.NS)]
        assert targets == [DomainName("ns2.other.net")]

    def test_undelegate(self, zone):
        zone.delegate("sub.example.com", ["ns1.other.net"])
        zone.undelegate("sub.example.com")
        assert zone.delegation_covering("x.sub.example.com") is None


class TestExistenceIndex:
    def test_origin_always_exists(self, zone):
        assert zone.name_exists("example.com")

    def test_empty_non_terminal(self, zone):
        zone.add(a_record("a.b.example.com", "1.1.1.1"))
        assert zone.name_exists("b.example.com")  # ENT
        assert zone.name_exists("a.b.example.com")
        assert not zone.name_exists("c.example.com")

    def test_index_tracks_removal(self, zone):
        zone.add(a_record("a.b.example.com", "1.1.1.1"))
        zone.remove_all("a.b.example.com", RecordType.A)
        assert not zone.name_exists("b.example.com")

    def test_index_counts_multiple_records(self, zone):
        zone.add(a_record("a.b.example.com", "1.1.1.1"))
        zone.add(a_record("other.b.example.com", "2.2.2.2"))
        zone.remove_all("a.b.example.com", RecordType.A)
        assert zone.name_exists("b.example.com")  # still one descendant


class TestRootZone:
    def test_root_zone_hosts_tld_delegations(self):
        root = Zone(ROOT, primary_ns="a.root-servers.net")
        root.delegate("com", ["ns.nic.com"], glue={"ns.nic.com": "8.8.8.8"})
        assert root.delegation_covering("www.example.com") == DomainName("com")

    def test_len_counts_records(self, zone):
        zone.add(a_record("www.example.com", "1.1.1.1"))
        zone.add(mx_record("example.com", "mail.example.com"))
        assert len(zone) == 2

    def test_all_records_includes_soa(self, zone):
        zone.add(a_record("www.example.com", "1.1.1.1"))
        rtypes = {r.rtype for r in zone.all_records()}
        assert RecordType.SOA in rtypes and RecordType.A in rtypes
