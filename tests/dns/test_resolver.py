"""Tests for the recursive resolver: iterative walks, CNAME chasing,
caching, and the stale-delegation behaviour at the heart of §VI-A."""

import pytest

from repro.clock import SimulationClock
from repro.dns.authoritative import AnswerPolicy, AuthoritativeServer
from repro.dns.message import DnsResponse, Rcode
from repro.dns.name import DomainName
from repro.dns.records import RecordType, a_record, cname_record, ns_record
from repro.dns.root import DnsHierarchy
from repro.dns.zone import Zone
from repro.net.fabric import NetworkFabric
from repro.net.ipaddr import AddressAllocator, IPv4Address


@pytest.fixture
def setup():
    """A root/TLD hierarchy plus one self-hosted domain."""
    fabric = NetworkFabric()
    clock = SimulationClock()
    allocator = AddressAllocator("10.0.0.0/8")
    hierarchy = DnsHierarchy(fabric, clock, allocator)

    ns_ip = allocator.allocate_address()
    zone = Zone("example.com", primary_ns="ns1.example.com")
    zone.set_a("www.example.com", "203.0.113.10")
    zone.set_a("ns1.example.com", ns_ip)
    zone.add(ns_record("example.com", "ns1.example.com"))
    server = AuthoritativeServer("ns1.example.com")
    server.host_zone(zone)
    fabric.register_dns(ns_ip, server)
    hierarchy.delegate_apex(
        "example.com", ["ns1.example.com"], glue={"ns1.example.com": ns_ip}
    )
    return fabric, clock, allocator, hierarchy, zone, server, ns_ip


class TestBasicResolution:
    def test_a_resolution(self, setup):
        hierarchy = setup[3]
        resolver = hierarchy.make_resolver()
        result = resolver.resolve("www.example.com")
        assert result.ok
        assert result.addresses == [IPv4Address("203.0.113.10")]

    def test_ns_resolution_at_apex(self, setup):
        hierarchy = setup[3]
        result = hierarchy.make_resolver().resolve("example.com", RecordType.NS)
        assert result.ok
        assert DomainName("ns1.example.com") in [r.target for r in result.records]

    def test_nxdomain(self, setup):
        hierarchy = setup[3]
        result = hierarchy.make_resolver().resolve("missing.example.com")
        assert result.rcode is Rcode.NXDOMAIN
        assert not result.ok

    def test_unknown_tld_nxdomain(self, setup):
        hierarchy = setup[3]
        result = hierarchy.make_resolver().resolve("www.example.zz")
        assert result.rcode is Rcode.NXDOMAIN

    def test_nodata(self, setup):
        hierarchy = setup[3]
        result = hierarchy.make_resolver().resolve("www.example.com", RecordType.MX)
        assert result.rcode is Rcode.NOERROR
        assert result.records == []

    def test_undelegated_apex_nxdomain(self, setup):
        hierarchy = setup[3]
        hierarchy.undelegate_apex("example.com")
        result = hierarchy.make_resolver().resolve("www.example.com")
        assert result.rcode is Rcode.NXDOMAIN


class TestCnameChasing:
    def test_chase_within_zone(self, setup):
        _, _, _, hierarchy, zone, *_ = setup
        zone.remove_all("www.example.com", RecordType.A)
        zone.add(cname_record("www.example.com", "edge.example.com"))
        zone.set_a("edge.example.com", "203.0.113.77")
        result = hierarchy.make_resolver().resolve("www.example.com")
        assert result.ok
        assert result.addresses == [IPv4Address("203.0.113.77")]
        assert result.cname_targets == [DomainName("edge.example.com")]
        assert result.final_name == DomainName("edge.example.com")

    def test_chase_across_zones(self, setup):
        fabric, clock, allocator, hierarchy, zone, *_ = setup
        # Stand up cdn.net with the target.
        cdn_ns_ip = allocator.allocate_address()
        cdn_zone = Zone("cdn.net", primary_ns="ns1.cdn.net")
        cdn_zone.set_a("ns1.cdn.net", cdn_ns_ip)
        cdn_zone.set_a("edge.cdn.net", "198.51.100.5")
        cdn_server = AuthoritativeServer("ns1.cdn.net")
        cdn_server.host_zone(cdn_zone)
        fabric.register_dns(cdn_ns_ip, cdn_server)
        hierarchy.delegate_apex("cdn.net", ["ns1.cdn.net"], glue={"ns1.cdn.net": cdn_ns_ip})

        zone.remove_all("www.example.com", RecordType.A)
        zone.add(cname_record("www.example.com", "edge.cdn.net"))
        result = hierarchy.make_resolver().resolve("www.example.com")
        assert result.ok
        assert result.addresses == [IPv4Address("198.51.100.5")]

    def test_cname_loop_detected(self, setup):
        _, _, _, hierarchy, zone, *_ = setup
        zone.remove_all("www.example.com", RecordType.A)
        zone.add(cname_record("www.example.com", "a.example.com"))
        zone.add(cname_record("a.example.com", "www.example.com"))
        result = hierarchy.make_resolver().resolve("www.example.com")
        assert result.rcode is Rcode.SERVFAIL

    def test_dangling_cname(self, setup):
        _, _, _, hierarchy, zone, *_ = setup
        zone.remove_all("www.example.com", RecordType.A)
        zone.add(cname_record("www.example.com", "gone.example.com"))
        result = hierarchy.make_resolver().resolve("www.example.com")
        assert result.rcode is Rcode.NXDOMAIN


class TestCaching:
    def test_second_resolution_uses_cache(self, setup):
        hierarchy = setup[3]
        resolver = hierarchy.make_resolver()
        resolver.resolve("www.example.com")
        queries_before = resolver.queries_sent
        resolver.resolve("www.example.com")
        assert resolver.queries_sent == queries_before  # pure cache hit

    def test_purge_forces_requery(self, setup):
        hierarchy = setup[3]
        resolver = hierarchy.make_resolver()
        resolver.resolve("www.example.com")
        queries_before = resolver.queries_sent
        resolver.purge_cache()
        resolver.resolve("www.example.com")
        assert resolver.queries_sent > queries_before

    def test_cached_delegation_skips_root(self, setup):
        hierarchy = setup[3]
        resolver = hierarchy.make_resolver()
        resolver.resolve("www.example.com")
        # Evict only the final answer; the delegation stays cached.
        resolver.cache.evict("www.example.com", RecordType.A)
        queries_before = resolver.queries_sent
        resolver.resolve("www.example.com")
        # One query straight to the authoritative server, no root/TLD walk.
        assert resolver.queries_sent == queries_before + 1


class TestStaleDelegation:
    """The §VI-A root cause: resolvers keep using cached NS records."""

    def test_stale_ns_keeps_pointing_at_old_server(self, setup):
        fabric, clock, allocator, hierarchy, zone, server, ns_ip = setup
        resolver = hierarchy.make_resolver()
        assert resolver.resolve("www.example.com").ok  # caches NS + glue

        # The domain moves: the registry now delegates to a new server
        # with a new address — but this resolver never sees that, because
        # its cached NS/glue still point at the old server.
        new_ns_ip = allocator.allocate_address()
        new_zone = Zone("example.com", primary_ns="ns1.newdps.com")
        new_zone.set_a("www.example.com", "198.51.100.99")
        new_server = AuthoritativeServer("ns1.newdps.com")
        new_server.host_zone(new_zone)
        fabric.register_dns(new_ns_ip, new_server)
        hierarchy.delegate_apex("example.com", ["ns1.newdps.com"])

        resolver.cache.evict("www.example.com", RecordType.A)
        result = resolver.resolve("www.example.com")
        # Old server still hosts the zone with the old answer; the stale
        # cached delegation sent the query there.
        assert result.addresses == [IPv4Address("203.0.113.10")]

    def test_fresh_resolver_follows_new_delegation(self, setup):
        fabric, clock, allocator, hierarchy, zone, server, ns_ip = setup
        new_ns_ip = allocator.allocate_address()
        new_zone = Zone("example.com", primary_ns="ns1.newhost.net")
        new_zone.set_a("www.example.com", "198.51.100.99")
        new_server = AuthoritativeServer("ns1.newhost.net")
        new_server.host_zone(new_zone)
        fabric.register_dns(new_ns_ip, new_server)
        # newhost.net infrastructure so the NS name resolves.
        host_zone = Zone("newhost.net")
        host_zone.set_a("ns1.newhost.net", new_ns_ip)
        new_server.host_zone(host_zone)
        hierarchy.delegate_apex(
            "newhost.net", ["ns1.newhost.net"], glue={"ns1.newhost.net": new_ns_ip}
        )
        hierarchy.delegate_apex("example.com", ["ns1.newhost.net"])
        result = hierarchy.make_resolver().resolve("www.example.com")
        assert result.addresses == [IPv4Address("198.51.100.99")]

    def test_stale_ns_expires_by_ttl(self, setup):
        fabric, clock, allocator, hierarchy, zone, server, ns_ip = setup
        resolver = hierarchy.make_resolver()
        resolver.resolve("www.example.com")
        # After the (long) NS TTL passes, the stale delegation is gone.
        clock.advance(86400 + 1)
        assert resolver.cache.get("example.com", RecordType.NS) is None


class _BundledAnswerPolicy(AnswerPolicy):
    """Answers A queries for ``www.example.com`` the way many real
    authoritatives do: the CNAME link(s) *and* the final A record in a
    single response."""

    def __init__(self, answers):
        self._answers = answers

    def intercept(self, server, query):
        if (
            query.qname == DomainName("www.example.com")
            and query.qtype is RecordType.A
        ):
            return DnsResponse(
                query=query, authoritative=True, answers=list(self._answers)
            )
        return None


class TestSingleResponseCnameChain:
    """Regression: a CNAME + A bundled in one response must still be
    attributed to the chain (it used to be accepted as a direct answer,
    losing ``final_name``/``cname_targets``)."""

    def test_chain_attributed(self, setup):
        _, _, _, hierarchy, _, server, _ = setup
        server.policy = _BundledAnswerPolicy([
            cname_record("www.example.com", "edge.example.com"),
            a_record("edge.example.com", "203.0.113.88"),
        ])
        result = hierarchy.make_resolver().resolve("www.example.com")
        assert result.ok
        assert result.addresses == [IPv4Address("203.0.113.88")]
        assert result.cname_targets == [DomainName("edge.example.com")]
        assert result.final_name == DomainName("edge.example.com")
        # The records kept are the chain's *final* answer, not a record
        # mislabelled as belonging to the query name.
        assert all(
            r.name == DomainName("edge.example.com") for r in result.records
        )

    def test_multi_link_bundle(self, setup):
        _, _, _, hierarchy, _, server, _ = setup
        server.policy = _BundledAnswerPolicy([
            cname_record("www.example.com", "mid.example.com"),
            cname_record("mid.example.com", "edge.example.com"),
            a_record("edge.example.com", "203.0.113.89"),
        ])
        result = hierarchy.make_resolver().resolve("www.example.com")
        assert result.ok
        assert result.cname_targets == [
            DomainName("mid.example.com"),
            DomainName("edge.example.com"),
        ]
        assert result.final_name == DomainName("edge.example.com")

    def test_bundled_loop_detected(self, setup):
        _, _, _, hierarchy, _, server, _ = setup
        server.policy = _BundledAnswerPolicy([
            cname_record("www.example.com", "a.example.com"),
            cname_record("a.example.com", "www.example.com"),
        ])
        result = hierarchy.make_resolver().resolve("www.example.com")
        assert result.rcode is Rcode.SERVFAIL


class TestResolveMany:
    """The batched query path: identical answers, fewer queries."""

    @staticmethod
    def _add_siblings(zone, count):
        names = []
        for i in range(count):
            name = f"host{i}.example.com"
            zone.set_a(name, f"203.0.113.{20 + i}")
            names.append(name)
        return names

    def test_results_identical_to_sequential(self, setup):
        _, _, _, hierarchy, zone, *_ = setup
        names = self._add_siblings(zone, 6)
        names += ["missing.example.com", "www.example.zz", "www.example.com"]
        pairs = [(name, RecordType.A) for name in names]
        sequential_resolver = hierarchy.make_resolver()
        sequential = [
            sequential_resolver.resolve(name, rtype) for name, rtype in pairs
        ]
        batched = hierarchy.make_resolver().resolve_many(pairs)
        assert len(batched) == len(sequential)
        for expected, got in zip(sequential, batched):
            assert got.qname == expected.qname  # positional alignment
            assert got.rcode is expected.rcode
            assert got.records == expected.records
            assert got.cname_chain == expected.cname_chain

    def test_fewer_queries_than_naive_per_name(self, setup):
        _, _, _, hierarchy, zone, *_ = setup
        names = self._add_siblings(zone, 8)
        pairs = [(name, RecordType.A) for name in names]

        naive = hierarchy.make_resolver()
        for name, rtype in pairs:
            naive.purge_cache()
            assert naive.resolve(name, rtype).ok
        batched = hierarchy.make_resolver()
        assert all(r.ok for r in batched.resolve_many(pairs))

        assert batched.queries_sent < naive.queries_sent
        # Naive re-walks root -> TLD -> authoritative for every name;
        # the batch walks once and siblings go straight to the zone cut.
        assert naive.queries_sent == 3 * len(names)
        assert batched.queries_sent == 2 + len(names)
        assert batched.metrics.value("resolver.zonecut_hits") == len(names) - 1

    def test_memo_scoped_to_batch(self, setup):
        _, _, _, hierarchy, zone, *_ = setup
        names = self._add_siblings(zone, 3)
        resolver = hierarchy.make_resolver()
        resolver.resolve_many((name, RecordType.A) for name in names)
        # After the batch the memo is gone: a purge really does force a
        # full re-walk (nothing remembers the zone cut across batches).
        resolver.purge_cache()
        queries_before = resolver.queries_sent
        assert resolver.resolve(names[0]).ok
        assert resolver.queries_sent == queries_before + 3

    def test_empty_batch(self, setup):
        hierarchy = setup[3]
        assert hierarchy.make_resolver().resolve_many([]) == []


class TestFailureModes:
    def test_no_root_hints_rejected(self, setup):
        fabric, clock, *_ = setup
        from repro.dns.resolver import RecursiveResolver
        from repro.errors import ResolutionError
        with pytest.raises(ResolutionError):
            RecursiveResolver(fabric, clock, [])

    def test_dead_nameserver_servfail(self, setup):
        fabric, clock, allocator, hierarchy, *_ = setup
        dead_ip = allocator.allocate_address()
        hierarchy.delegate_apex("example.com", ["dead.ns.net"], glue={})
        # dead.ns.net has no records anywhere → SERVFAIL.
        result = hierarchy.make_resolver().resolve("www.example.com")
        assert result.rcode is Rcode.SERVFAIL

    def test_refusing_server_yields_refused_result(self, setup):
        fabric, clock, allocator, hierarchy, zone, server, ns_ip = setup
        server.drop_zone("example.com")  # server now refuses the name
        result = hierarchy.make_resolver().resolve("www.example.com")
        assert result.rcode in (Rcode.REFUSED, Rcode.SERVFAIL)
