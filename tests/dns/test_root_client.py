"""Tests for the root/TLD hierarchy (registry) and the stub client."""

import pytest

from repro.clock import SimulationClock
from repro.dns.authoritative import AuthoritativeServer
from repro.dns.client import DnsClient
from repro.dns.message import Rcode
from repro.dns.name import DomainName
from repro.dns.records import RecordType
from repro.dns.root import DEFAULT_TLDS, DnsHierarchy
from repro.dns.zone import Zone
from repro.errors import ConfigurationError, ZoneError
from repro.net.fabric import NetworkFabric
from repro.net.ipaddr import AddressAllocator


@pytest.fixture
def hierarchy_setup():
    fabric = NetworkFabric()
    clock = SimulationClock()
    allocator = AddressAllocator("10.0.0.0/8")
    hierarchy = DnsHierarchy(fabric, clock, allocator)
    return fabric, clock, allocator, hierarchy


class TestHierarchy:
    def test_default_tlds_served(self, hierarchy_setup):
        *_, hierarchy = hierarchy_setup
        assert set(hierarchy.tlds) == set(DEFAULT_TLDS)

    def test_tld_resolution_bootstraps(self, hierarchy_setup):
        *_, hierarchy = hierarchy_setup
        resolver = hierarchy.make_resolver()
        # Resolve a TLD's own nameserver address through the root.
        result = resolver.resolve("ns.nic.com", RecordType.A)
        assert result.ok

    def test_unknown_tld_zone_raises(self, hierarchy_setup):
        *_, hierarchy = hierarchy_setup
        with pytest.raises(ConfigurationError):
            hierarchy.tld_zone("zz")

    def test_delegate_apex_and_read_back(self, hierarchy_setup):
        *_, hierarchy = hierarchy_setup
        hierarchy.delegate_apex("example.com", ["ns1.host.net"])
        assert hierarchy.delegation_of("example.com") == [DomainName("ns1.host.net")]

    def test_delegate_replaces(self, hierarchy_setup):
        *_, hierarchy = hierarchy_setup
        hierarchy.delegate_apex("example.com", ["ns1.a.net"])
        hierarchy.delegate_apex("example.com", ["ns1.b.net", "ns2.b.net"])
        assert hierarchy.delegation_of("example.com") == [
            DomainName("ns1.b.net"),
            DomainName("ns2.b.net"),
        ]

    def test_undelegate(self, hierarchy_setup):
        *_, hierarchy = hierarchy_setup
        hierarchy.delegate_apex("example.com", ["ns1.a.net"])
        hierarchy.undelegate_apex("example.com")
        assert hierarchy.delegation_of("example.com") == []

    def test_out_of_bailiwick_glue_ignored(self, hierarchy_setup):
        *_, hierarchy = hierarchy_setup
        hierarchy.delegate_apex(
            "example.com",
            ["ns1.other.net"],
            glue={"ns1.other.net": "9.9.9.9"},  # .net glue in the .com zone
        )
        com_zone = hierarchy.tld_zone("com")
        assert com_zone.lookup("ns1.other.net", RecordType.A) == []

    def test_non_apex_delegation_rejected(self, hierarchy_setup):
        *_, hierarchy = hierarchy_setup
        with pytest.raises(ZoneError):
            hierarchy.delegate_apex("www.example.com", ["ns1.host.net"])

    def test_unserved_tld_delegation_rejected(self, hierarchy_setup):
        *_, hierarchy = hierarchy_setup
        with pytest.raises(ConfigurationError):
            hierarchy.delegate_apex("example.zz", ["ns1.host.net"])


class TestDnsClient:
    def test_direct_query(self, hierarchy_setup):
        fabric, clock, allocator, hierarchy = hierarchy_setup
        ns_ip = allocator.allocate_address()
        zone = Zone("example.com")
        zone.set_a("www.example.com", "1.2.3.4")
        server = AuthoritativeServer("ns1.example.com")
        server.host_zone(zone)
        fabric.register_dns(ns_ip, server)

        client = DnsClient(fabric)
        response = client.query(ns_ip, "www.example.com")
        assert response is not None and response.is_answer

    def test_query_void_address_returns_none(self, hierarchy_setup):
        fabric, _, allocator, _ = hierarchy_setup
        client = DnsClient(fabric)
        assert client.query(allocator.allocate_address(), "www.example.com") is None

    def test_query_counts(self, hierarchy_setup):
        fabric, _, allocator, _ = hierarchy_setup
        client = DnsClient(fabric)
        client.query(allocator.allocate_address(), "a.com")
        client.query(allocator.allocate_address(), "b.com")
        assert client.queries_sent == 2

    def test_refused_for_foreign_zone(self, hierarchy_setup):
        fabric, clock, allocator, hierarchy = hierarchy_setup
        ns_ip = allocator.allocate_address()
        server = AuthoritativeServer("ns1.example.com")
        server.host_zone(Zone("example.com"))
        fabric.register_dns(ns_ip, server)
        response = DnsClient(fabric).query(ns_ip, "www.other.org")
        assert response.rcode is Rcode.REFUSED
