"""Tests for zone master-file serialisation."""

import pytest

from repro.dns.name import DomainName
from repro.dns.records import (
    RecordType,
    a_record,
    cname_record,
    mx_record,
    ns_record,
    txt_record,
)
from repro.dns.zone import Zone
from repro.dns.zonefile import zone_from_text, zone_to_text
from repro.errors import ZoneError


def _sample_zone() -> Zone:
    zone = Zone("example.com", primary_ns="ns1.example.com")
    zone.add(ns_record("example.com", "ns1.example.com"))
    zone.add(ns_record("example.com", "ns2.hostco.net"))
    zone.add(a_record("www.example.com", "203.0.113.7", ttl=300))
    zone.add(a_record("example.com", "203.0.113.7", ttl=300))
    zone.add(mx_record("example.com", "mail.example.com"))
    zone.add(a_record("mail.example.com", "203.0.113.8", ttl=3600))
    zone.add(txt_record("example.com", 'v=spf1 include:"example" -all'))
    return zone


class TestRoundTrip:
    def test_full_round_trip(self):
        zone = _sample_zone()
        parsed = zone_from_text(zone_to_text(zone))
        assert parsed.origin == zone.origin
        original = {
            (r.name, r.rtype, str(r.rdata))
            for r in zone.all_records()
            if r.rtype is not RecordType.SOA
        }
        restored = {
            (r.name, r.rtype, str(r.rdata))
            for r in parsed.all_records()
            if r.rtype is not RecordType.SOA
        }
        assert restored == original

    def test_ttls_preserved(self):
        parsed = zone_from_text(zone_to_text(_sample_zone()))
        [www] = parsed.lookup("www.example.com", RecordType.A)
        assert www.ttl == 300

    def test_cname_round_trip(self):
        zone = Zone("example.com")
        zone.add(cname_record("www.example.com", "abc123.incapdns.net"))
        parsed = zone_from_text(zone_to_text(zone))
        [cname] = parsed.lookup("www.example.com", RecordType.CNAME)
        assert cname.target == DomainName("abc123.incapdns.net")

    def test_txt_escaping(self):
        zone = Zone("example.com")
        tricky = 'a "quoted" value with \\ backslash'
        zone.add(txt_record("example.com", tricky))
        parsed = zone_from_text(zone_to_text(zone))
        [txt] = parsed.lookup("example.com", RecordType.TXT)
        assert txt.rdata == tricky


class TestFormat:
    def test_origin_line_first(self):
        text = zone_to_text(_sample_zone())
        assert text.splitlines()[0] == "$ORIGIN example.com."

    def test_apex_rendered_as_at(self):
        text = zone_to_text(_sample_zone())
        assert any(line.startswith("@ ") for line in text.splitlines())

    def test_in_zone_names_relative(self):
        text = zone_to_text(_sample_zone())
        assert "\nwww 300 IN A" in text

    def test_out_of_zone_names_absolute(self):
        text = zone_to_text(_sample_zone())
        assert "ns2.hostco.net." in text

    def test_comments_and_blanks_ignored(self):
        text = (
            "$ORIGIN example.com.\n"
            "\n"
            "; a comment line\n"
            'www 60 IN A 10.0.0.1  ; trailing comment\n'
            'txt 60 IN TXT "semi ; colon inside"\n'
        )
        zone = zone_from_text(text)
        assert zone.lookup("www.example.com", RecordType.A)
        [txt] = zone.lookup("txt.example.com", RecordType.TXT)
        assert txt.rdata == "semi ; colon inside"


class TestParserErrors:
    def test_record_before_origin(self):
        with pytest.raises(ZoneError):
            zone_from_text("www 60 IN A 10.0.0.1\n")

    def test_unsupported_directive(self):
        with pytest.raises(ZoneError):
            zone_from_text("$TTL 300\n$ORIGIN example.com.\n")

    def test_unsupported_class(self):
        with pytest.raises(ZoneError):
            zone_from_text("$ORIGIN example.com.\nwww 60 CH A 10.0.0.1\n")

    def test_unsupported_type(self):
        with pytest.raises(ZoneError):
            zone_from_text("$ORIGIN example.com.\nwww 60 IN AAAA ::1\n")

    def test_bad_ttl(self):
        with pytest.raises(ZoneError):
            zone_from_text("$ORIGIN example.com.\nwww soon IN A 10.0.0.1\n")

    def test_unquoted_txt(self):
        with pytest.raises(ZoneError):
            zone_from_text("$ORIGIN example.com.\n@ 60 IN TXT bare\n")

    def test_malformed_mx(self):
        with pytest.raises(ZoneError):
            zone_from_text("$ORIGIN example.com.\n@ 60 IN MX mail\n")

    def test_missing_origin_entirely(self):
        with pytest.raises(ZoneError):
            zone_from_text("; nothing here\n")


class TestProviderZoneDump:
    def test_dump_live_customer_zone(self, world_factory):
        """Dump a Cloudflare-hosted customer zone and read it back."""
        from repro.dps.portal import ReroutingMethod

        world = world_factory(population_size=80, seed=91)
        site = next(
            s for s in world.population
            if s.provider is None and s.alive and not s.multicdn
        )
        cf = world.provider("cloudflare")
        site.join(cf, ReroutingMethod.NS_BASED)
        zone = cf.customer_fleet.backend.zone_for(site.apex)
        text = zone_to_text(zone)
        parsed = zone_from_text(text)
        assert parsed.lookup(site.www, RecordType.A)
