"""Tests for authoritative server answer semantics."""

import pytest

from repro.dns.authoritative import AnswerPolicy, AuthoritativeServer
from repro.dns.message import DnsQuery, DnsResponse, Rcode
from repro.dns.name import DomainName
from repro.dns.records import RecordType, a_record, cname_record
from repro.dns.zone import Zone
from repro.net.ipaddr import IPv4Address


def _server_with_zone() -> AuthoritativeServer:
    zone = Zone("example.com", primary_ns="ns1.example.com")
    zone.set_a("www.example.com", "1.1.1.1")
    zone.set_a("ns1.sub.example.com", "9.9.9.9")
    zone.delegate(
        "sub.example.com", ["ns1.sub.example.com"],
        glue={"ns1.sub.example.com": "9.9.9.9"},
    )
    server = AuthoritativeServer("ns1.example.com")
    server.host_zone(zone)
    return server


def _ask(server, name, rtype=RecordType.A) -> DnsResponse:
    return server.handle_query(DnsQuery(DomainName(name), rtype))


class TestAnswers:
    def test_authoritative_answer(self):
        response = _ask(_server_with_zone(), "www.example.com")
        assert response.is_answer and response.authoritative
        assert response.addresses() == [IPv4Address("1.1.1.1")]

    def test_refused_outside_authority(self):
        response = _ask(_server_with_zone(), "www.other.com")
        assert response.rcode is Rcode.REFUSED

    def test_nxdomain_inside_zone(self):
        response = _ask(_server_with_zone(), "missing.example.com")
        assert response.rcode is Rcode.NXDOMAIN
        assert response.authoritative

    def test_nodata_when_name_exists_with_other_type(self):
        server = _server_with_zone()
        response = _ask(server, "www.example.com", RecordType.MX)
        assert response.is_empty_noerror
        # SOA in authority for negative caching, as real servers do.
        assert any(r.rtype is RecordType.SOA for r in response.authority)

    def test_cname_answer_for_other_qtype(self):
        server = AuthoritativeServer("ns1.example.com")
        zone = Zone("example.com")
        zone.add(cname_record("www.example.com", "edge.cdn.net"))
        server.host_zone(zone)
        response = _ask(server, "www.example.com", RecordType.A)
        assert response.is_answer
        assert response.cname_target() == DomainName("edge.cdn.net")

    def test_cname_qtype_returns_cname_directly(self):
        server = AuthoritativeServer("ns1.example.com")
        zone = Zone("example.com")
        zone.add(cname_record("www.example.com", "edge.cdn.net"))
        server.host_zone(zone)
        response = _ask(server, "www.example.com", RecordType.CNAME)
        assert response.is_answer

    def test_referral_at_zone_cut(self):
        response = _ask(_server_with_zone(), "deep.sub.example.com")
        assert response.is_referral
        assert not response.authoritative
        assert DomainName("ns1.sub.example.com") in response.referral_nameservers()
        assert response.glue_for(DomainName("ns1.sub.example.com")) == [IPv4Address("9.9.9.9")]

    def test_queries_served_counter(self):
        server = _server_with_zone()
        _ask(server, "www.example.com")
        _ask(server, "www.example.com")
        assert server.queries_served == 2


class TestZoneManagement:
    def test_deepest_zone_selected(self):
        server = AuthoritativeServer("ns")
        parent = Zone("example.com")
        parent.set_a("www.example.com", "1.1.1.1")
        child = Zone("sub.example.com")
        child.set_a("www.sub.example.com", "2.2.2.2")
        server.host_zone(parent)
        server.host_zone(child)
        assert server.zone_for("www.sub.example.com") is child
        assert server.zone_for("www.example.com") is parent

    def test_drop_zone(self):
        server = _server_with_zone()
        dropped = server.drop_zone("example.com")
        assert dropped is not None
        assert _ask(server, "www.example.com").rcode is Rcode.REFUSED

    def test_drop_missing_zone_returns_none(self):
        assert AuthoritativeServer("ns").drop_zone("nope.com") is None

    def test_host_zone_replaces_same_origin(self):
        server = AuthoritativeServer("ns")
        first = Zone("example.com")
        second = Zone("example.com")
        server.host_zone(first)
        server.host_zone(second)
        assert server.zone_for("example.com") is second
        assert len(server.zones) == 1


class TestAnswerPolicy:
    def test_policy_can_short_circuit(self):
        class Refuser(AnswerPolicy):
            def intercept(self, server, query):
                return DnsResponse.refused(query)

        server = AuthoritativeServer("ns", policy=Refuser())
        zone = Zone("example.com")
        zone.set_a("www.example.com", "1.1.1.1")
        server.host_zone(zone)
        assert _ask(server, "www.example.com").rcode is Rcode.REFUSED

    def test_default_policy_is_transparent(self):
        assert _ask(_server_with_zone(), "www.example.com").is_answer

    def test_policy_sees_every_query(self):
        seen = []

        class Spy(AnswerPolicy):
            def intercept(self, server, query):
                seen.append(str(query.qname))
                return None

        server = AuthoritativeServer("ns", policy=Spy())
        server.host_zone(Zone("example.com"))
        _ask(server, "a.example.com")
        _ask(server, "b.example.com")
        assert seen == ["a.example.com", "b.example.com"]
