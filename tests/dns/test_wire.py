"""Tests for the RFC 1035 wire codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.message import DnsQuery, DnsResponse, Rcode
from repro.dns.name import DomainName
from repro.dns.records import (
    RecordType,
    a_record,
    cname_record,
    mx_record,
    ns_record,
    soa_record,
    txt_record,
)
from repro.dns.wire import (
    decode_query,
    decode_response,
    encode_query,
    encode_response,
)
from repro.errors import DnsError


class TestQueryRoundTrip:
    def test_basic(self):
        query = DnsQuery(DomainName("www.example.com"), RecordType.A)
        decoded, txid = decode_query(encode_query(query, txid=0x1234))
        assert decoded == query
        assert txid == 0x1234

    def test_recursion_desired_flag(self):
        query = DnsQuery(DomainName("a.io"), RecordType.NS, recursion_desired=True)
        decoded, _ = decode_query(encode_query(query))
        assert decoded.recursion_desired

    @pytest.mark.parametrize("rtype", list(RecordType))
    def test_all_qtypes(self, rtype):
        query = DnsQuery(DomainName("x.example.net"), rtype)
        decoded, _ = decode_query(encode_query(query))
        assert decoded.qtype is rtype

    def test_response_rejected_as_query(self):
        response = DnsResponse(query=DnsQuery(DomainName("a.com"), RecordType.A))
        with pytest.raises(DnsError):
            decode_query(encode_response(response))

    def test_truncated_rejected(self):
        data = encode_query(DnsQuery(DomainName("www.example.com"), RecordType.A))
        with pytest.raises(DnsError):
            decode_query(data[:8])


def _response(**kwargs) -> DnsResponse:
    query = DnsQuery(DomainName("www.example.com"), RecordType.A)
    return DnsResponse(query=query, **kwargs)


class TestResponseRoundTrip:
    def test_a_answer(self):
        response = _response(
            authoritative=True,
            answers=[a_record("www.example.com", "203.0.113.7", ttl=300)],
        )
        decoded, txid = decode_response(encode_response(response, txid=7))
        assert txid == 7
        assert decoded.authoritative
        assert decoded.rcode is Rcode.NOERROR
        assert decoded.answers == response.answers

    def test_full_referral(self):
        response = _response(
            authority=[
                ns_record("example.com", "ns1.example.com"),
                ns_record("example.com", "ns2.example.com"),
            ],
            additional=[
                a_record("ns1.example.com", "10.0.0.1"),
                a_record("ns2.example.com", "10.0.0.2"),
            ],
        )
        decoded, _ = decode_response(encode_response(response))
        assert decoded.is_referral
        assert decoded.authority == response.authority
        assert decoded.additional == response.additional

    def test_cname_chain(self):
        response = _response(
            answers=[
                cname_record("www.example.com", "edge.cdn.net"),
                a_record("edge.cdn.net", "198.51.100.9"),
            ]
        )
        decoded, _ = decode_response(encode_response(response))
        assert decoded.cname_target() == DomainName("edge.cdn.net")
        assert decoded.addresses() == response.addresses()

    @pytest.mark.parametrize(
        "rcode", [Rcode.NOERROR, Rcode.NXDOMAIN, Rcode.SERVFAIL, Rcode.REFUSED]
    )
    def test_rcodes(self, rcode):
        decoded, _ = decode_response(encode_response(_response(rcode=rcode)))
        assert decoded.rcode is rcode

    def test_mx_record(self):
        response = _response(answers=[mx_record("example.com", "mail.example.com")])
        decoded, _ = decode_response(encode_response(response))
        assert decoded.answers[0].target == DomainName("mail.example.com")

    def test_txt_record(self):
        response = _response(answers=[txt_record("example.com", "v=spf1 -all")])
        decoded, _ = decode_response(encode_response(response))
        assert decoded.answers[0].rdata == "v=spf1 -all"

    def test_long_txt_record_chunked(self):
        text = "x" * 700  # needs three character-strings
        response = _response(answers=[txt_record("example.com", text)])
        decoded, _ = decode_response(encode_response(response))
        assert decoded.answers[0].rdata == text

    def test_soa_record(self):
        response = _response(
            authority=[soa_record("example.com", "ns1.example.com", serial=42)]
        )
        decoded, _ = decode_response(encode_response(response))
        data = decoded.authority[0].rdata
        assert data.primary_ns == DomainName("ns1.example.com")
        assert data.serial == 42

    def test_query_rejected_as_response(self):
        with pytest.raises(DnsError):
            decode_response(encode_query(DnsQuery(DomainName("a.com"), RecordType.A)))


class TestCompression:
    def test_repeated_names_compress(self):
        records = [a_record("www.example.com", f"10.0.0.{i}") for i in range(1, 9)]
        response = _response(answers=records)
        packet = encode_response(response)
        # Without compression each record repeats the 17-byte name; with
        # pointers they cost 2 bytes each after the first.
        uncompressed_estimate = 12 + 21 + 8 * (17 + 14)
        assert len(packet) < uncompressed_estimate - 80
        decoded, _ = decode_response(packet)
        assert decoded.answers == records

    def test_suffix_sharing(self):
        response = _response(
            answers=[cname_record("www.example.com", "cdn.example.com")],
        )
        packet = encode_response(response)
        decoded, _ = decode_response(packet)
        assert decoded.answers[0].target == DomainName("cdn.example.com")

    def test_pointer_loop_rejected(self):
        # Craft a packet whose question name points at itself.
        evil = (
            bytes.fromhex("0001" "8000" "0001" "0000" "0000" "0000")
            + bytes([0xC0, 12])  # pointer to itself at offset 12
            + bytes.fromhex("0001" "0001")
        )
        with pytest.raises(DnsError):
            decode_response(evil)


labels = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=10)
names = st.lists(labels, min_size=1, max_size=4).map(DomainName)
addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestPropertyRoundTrip:
    @given(names, st.sampled_from(list(RecordType)), st.booleans(),
           st.integers(0, 0xFFFF))
    def test_query_roundtrip(self, name, rtype, rd, txid):
        query = DnsQuery(name, rtype, recursion_desired=rd)
        decoded, decoded_txid = decode_query(encode_query(query, txid))
        assert decoded == query
        assert decoded_txid == txid

    @given(
        st.lists(
            st.tuples(names, addresses, st.integers(0, 10_000)),
            min_size=0, max_size=6,
        ),
        st.lists(st.tuples(names, names), min_size=0, max_size=4),
    )
    def test_response_roundtrip(self, a_specs, ns_specs):
        answers = [
            a_record(name, int(address), ttl=ttl)
            for name, address, ttl in a_specs
        ]
        authority = [ns_record(name, target) for name, target in ns_specs]
        response = _response(answers=answers, authority=authority)
        decoded, _ = decode_response(encode_response(response))
        assert decoded.answers == answers
        assert decoded.authority == authority
