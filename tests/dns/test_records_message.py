"""Tests for resource records and DNS messages."""

import pytest

from repro.dns.message import DnsQuery, DnsResponse, Rcode
from repro.dns.name import DomainName
from repro.dns.records import (
    RecordType,
    ResourceRecord,
    a_record,
    cname_record,
    mx_record,
    ns_record,
    soa_record,
    txt_record,
)
from repro.errors import ZoneError
from repro.net.ipaddr import IPv4Address


class TestRecordConstruction:
    def test_a_record(self):
        record = a_record("www.example.com", "1.2.3.4", ttl=60)
        assert record.rtype is RecordType.A
        assert record.address == IPv4Address("1.2.3.4")
        assert record.ttl == 60

    def test_cname_record(self):
        record = cname_record("www.example.com", "edge.cdn.net")
        assert record.target == DomainName("edge.cdn.net")

    def test_ns_and_mx_targets(self):
        assert ns_record("example.com", "ns1.example.com").target == "ns1.example.com"
        assert mx_record("example.com", "mail.example.com").target == "mail.example.com"

    def test_txt_record(self):
        assert txt_record("example.com", "v=spf1").rdata == "v=spf1"

    def test_soa_record(self):
        record = soa_record("example.com", "ns1.example.com", serial=7)
        assert record.rtype is RecordType.SOA

    def test_negative_ttl_rejected(self):
        with pytest.raises(ZoneError):
            a_record("a.com", "1.2.3.4", ttl=-1)

    def test_rdata_type_mismatch_rejected(self):
        with pytest.raises(ZoneError):
            ResourceRecord(DomainName("a.com"), RecordType.A, 60, DomainName("b.com"))
        with pytest.raises(ZoneError):
            ResourceRecord(DomainName("a.com"), RecordType.CNAME, 60, IPv4Address("1.1.1.1"))

    def test_address_accessor_on_non_a_raises(self):
        with pytest.raises(ZoneError):
            _ = cname_record("a.com", "b.com").address

    def test_target_accessor_on_a_raises(self):
        with pytest.raises(ZoneError):
            _ = a_record("a.com", "1.1.1.1").target

    def test_with_ttl(self):
        record = a_record("a.com", "1.1.1.1", ttl=300)
        clone = record.with_ttl(10)
        assert clone.ttl == 10
        assert clone.rdata == record.rdata
        assert record.ttl == 300  # original untouched


def _response(**kwargs) -> DnsResponse:
    query = DnsQuery(DomainName("www.example.com"), RecordType.A)
    return DnsResponse(query=query, **kwargs)


class TestDnsResponse:
    def test_answer_classification(self):
        response = _response(answers=[a_record("www.example.com", "1.1.1.1")])
        assert response.is_answer
        assert not response.is_referral
        assert not response.is_empty_noerror

    def test_referral_classification(self):
        response = _response(
            authority=[ns_record("example.com", "ns1.example.com")],
            additional=[a_record("ns1.example.com", "2.2.2.2")],
        )
        assert response.is_referral
        assert response.referral_nameservers() == [DomainName("ns1.example.com")]
        assert response.glue_for(DomainName("ns1.example.com")) == [IPv4Address("2.2.2.2")]
        assert response.glue_for(DomainName("ns2.example.com")) == []

    def test_nodata_classification(self):
        response = _response()
        assert response.is_empty_noerror
        assert not response.is_answer

    def test_nxdomain_is_not_answer(self):
        response = DnsResponse.nxdomain(DnsQuery(DomainName("x.com"), RecordType.A))
        assert response.rcode is Rcode.NXDOMAIN
        assert not response.is_answer
        assert not response.is_referral

    def test_refused_constructor(self):
        response = DnsResponse.refused(DnsQuery(DomainName("x.com"), RecordType.A))
        assert response.rcode is Rcode.REFUSED

    def test_servfail_constructor(self):
        response = DnsResponse.servfail(DnsQuery(DomainName("x.com"), RecordType.A))
        assert response.rcode is Rcode.SERVFAIL

    def test_addresses_extraction(self):
        response = _response(
            answers=[
                cname_record("www.example.com", "edge.cdn.net"),
                a_record("edge.cdn.net", "3.3.3.3"),
            ]
        )
        assert response.addresses() == [IPv4Address("3.3.3.3")]
        assert response.cname_target() == DomainName("edge.cdn.net")

    def test_cname_target_absent(self):
        assert _response(answers=[a_record("www.example.com", "1.1.1.1")]).cname_target() is None

    def test_answer_records_filters_by_type(self):
        response = _response(
            answers=[
                cname_record("www.example.com", "e.cdn.net"),
                a_record("e.cdn.net", "1.1.1.1"),
            ]
        )
        assert len(response.answer_records(RecordType.CNAME)) == 1
        assert len(response.answer_records(RecordType.A)) == 1
        assert response.answer_records(RecordType.NS) == []
