"""Tests for DomainName."""

import pytest

from repro.dns.name import ROOT, DomainName
from repro.errors import NameError_


class TestParsing:
    def test_basic(self):
        assert DomainName("www.example.com").labels == ("www", "example", "com")

    def test_case_insensitive(self):
        assert DomainName("WWW.Example.COM") == DomainName("www.example.com")

    def test_trailing_dot_accepted(self):
        assert DomainName("example.com.") == DomainName("example.com")

    def test_root(self):
        assert DomainName("").is_root
        assert DomainName(".").is_root
        assert str(ROOT) == "."

    def test_from_labels_iterable(self):
        assert DomainName(("www", "example", "com")) == DomainName("www.example.com")

    def test_copy_constructor(self):
        name = DomainName("a.b.c")
        assert DomainName(name) == name

    @pytest.mark.parametrize("bad", ["a..b", "-bad.com", "bad-.com", "ex ample.com", "a!b.com"])
    def test_invalid_names(self, bad):
        with pytest.raises(NameError_):
            DomainName(bad)

    def test_label_too_long(self):
        with pytest.raises(NameError_):
            DomainName("a" * 64 + ".com")

    def test_name_too_long(self):
        with pytest.raises(NameError_):
            DomainName(".".join(["abcdefgh"] * 40))


class TestStructure:
    def test_parent(self):
        assert DomainName("www.example.com").parent() == DomainName("example.com")

    def test_parent_of_root_raises(self):
        with pytest.raises(NameError_):
            ROOT.parent()

    def test_child(self):
        assert DomainName("example.com").child("WWW") == DomainName("www.example.com")

    def test_tld(self):
        assert DomainName("www.example.com").tld == "com"
        with pytest.raises(NameError_):
            _ = ROOT.tld

    def test_is_subdomain_of(self):
        name = DomainName("a.b.example.com")
        assert name.is_subdomain_of("example.com")
        assert name.is_subdomain_of("b.example.com")
        assert name.is_subdomain_of(name)
        assert name.is_subdomain_of(ROOT)
        assert not name.is_subdomain_of("other.com")
        assert not DomainName("example.com").is_subdomain_of("www.example.com")

    def test_subdomain_requires_label_boundary(self):
        # "badexample.com" is not under "example.com".
        assert not DomainName("badexample.com").is_subdomain_of("example.com")

    def test_ancestors(self):
        ancestors = DomainName("a.b.example.com").ancestors()
        assert [str(a) for a in ancestors] == ["b.example.com", "example.com", "com"]

    def test_suffixes_longest_first(self):
        suffixes = DomainName("www.example.com").suffixes()
        assert [str(s) for s in suffixes] == ["www.example.com", "example.com", "com"]

    def test_apex_and_www(self):
        name = DomainName("deep.www.example.com")
        assert name.apex == DomainName("example.com")
        assert name.www() == DomainName("www.example.com")
        assert DomainName("example.com").is_apex
        assert not name.is_apex

    def test_apex_of_tld_raises(self):
        with pytest.raises(NameError_):
            _ = DomainName("com").apex


class TestValueSemantics:
    def test_equality_with_string(self):
        assert DomainName("example.com") == "EXAMPLE.com"
        assert DomainName("example.com") != "other.com"
        assert DomainName("example.com") != "not a valid...name!!"

    def test_hash_consistency(self):
        assert len({DomainName("a.com"), DomainName("A.com")}) == 1

    def test_ordering_is_reversed_label_order(self):
        # DNS canonical ordering groups names by suffix.
        names = sorted([DomainName("b.com"), DomainName("a.net"), DomainName("a.com")])
        assert [str(n) for n in names] == ["a.com", "b.com", "a.net"]

    def test_len_is_label_count(self):
        assert len(DomainName("a.b.c")) == 3
        assert len(ROOT) == 0

    def test_str_roundtrip(self):
        assert DomainName(str(DomainName("x.y.io"))) == DomainName("x.y.io")
