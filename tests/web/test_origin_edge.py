"""Tests for origin servers, edge reverse proxies, and the HTTP client."""

import pytest

from repro.net.fabric import NetworkFabric
from repro.net.ipaddr import IPv4Address, IPv4Prefix
from repro.web.edge import EdgeServer
from repro.web.html import HtmlDocument
from repro.web.http import HttpClient, HttpRequest, StatusCode
from repro.web.origin import OriginServer


def _doc(title="Example — home"):
    return HtmlDocument(title=title, meta={"site-id": "example#1"})


@pytest.fixture
def web():
    fabric = NetworkFabric()
    origin = OriginServer("example.com", "172.16.0.10", _doc())
    fabric.register_http(origin.ip, origin)
    return fabric, origin


class TestOriginServer:
    def test_serves_landing_page(self, web):
        fabric, origin = web
        response = HttpClient(fabric).get(origin.ip, "example.com")
        assert response.ok
        assert HtmlDocument.parse(response.body).title == "Example — home"

    def test_landing_url_header(self, web):
        fabric, origin = web
        response = HttpClient(fabric).get(origin.ip, "example.com")
        assert response.landing_url == "http://example.com/"
        assert response.served_by == "origin:example.com"

    def test_unknown_path_404(self, web):
        fabric, origin = web
        response = HttpClient(fabric).get(origin.ip, "example.com", "/missing")
        assert response.status == StatusCode.NOT_FOUND

    def test_unbound_address_is_none(self, web):
        fabric, _ = web
        assert HttpClient(fabric).get("172.16.0.99", "example.com") is None

    def test_dynamic_meta_changes_per_request(self):
        fabric = NetworkFabric()
        origin = OriginServer(
            "example.com", "172.16.0.10", _doc(), dynamic_meta_keys=("csrf-token",)
        )
        fabric.register_http(origin.ip, origin)
        client = HttpClient(fabric)
        first = HtmlDocument.parse(client.get(origin.ip, "example.com").body)
        second = HtmlDocument.parse(client.get(origin.ip, "example.com").body)
        assert first.title == second.title
        assert not first.matches(second)  # dynamic meta defeats matching

    def test_move_to_changes_identity(self, web):
        _, origin = web
        origin.move_to("172.16.0.50")
        assert origin.ip == IPv4Address("172.16.0.50")


class TestFirewall:
    def test_firewalled_origin_drops_unknown_sources(self):
        fabric = NetworkFabric()
        origin = OriginServer(
            "example.com", "172.16.0.10", _doc(),
            firewall_allow=[IPv4Prefix("10.0.0.0/8")],
        )
        fabric.register_http(origin.ip, origin)
        outside = HttpClient(fabric, source_ip="198.18.0.1")
        inside = HttpClient(fabric, source_ip="10.1.2.3")
        assert outside.get(origin.ip, "example.com") is None
        assert inside.get(origin.ip, "example.com").ok

    def test_firewall_drops_sourceless_requests(self):
        fabric = NetworkFabric()
        origin = OriginServer(
            "example.com", "172.16.0.10", _doc(),
            firewall_allow=[IPv4Prefix("10.0.0.0/8")],
        )
        fabric.register_http(origin.ip, origin)
        assert HttpClient(fabric).get(origin.ip, "example.com") is None

    def test_set_firewall_none_opens_up(self):
        fabric = NetworkFabric()
        origin = OriginServer(
            "example.com", "172.16.0.10", _doc(),
            firewall_allow=[IPv4Prefix("10.0.0.0/8")],
        )
        fabric.register_http(origin.ip, origin)
        origin.set_firewall(None)
        assert HttpClient(fabric, source_ip="198.18.0.1").get(origin.ip, "example.com").ok


class TestEdgeServer:
    def _edge_setup(self, firewall=False):
        fabric = NetworkFabric()
        allow = [IPv4Prefix("10.0.0.0/8")] if firewall else None
        origin = OriginServer("example.com", "172.16.0.10", _doc(), firewall_allow=allow)
        fabric.register_http(origin.ip, origin)
        edge = EdgeServer("cdnco", "10.0.0.1", fabric)
        fabric.register_http(edge.ip, edge)
        edge.configure_origin("example.com", origin.ip)
        return fabric, origin, edge

    def test_proxies_configured_host(self):
        fabric, origin, edge = self._edge_setup()
        response = HttpClient(fabric).get(edge.ip, "example.com")
        assert response.ok
        assert response.served_by == "edge:cdnco"
        assert HtmlDocument.parse(response.body).title == "Example — home"

    def test_unknown_host_404(self):
        fabric, _, edge = self._edge_setup()
        response = HttpClient(fabric).get(edge.ip, "other.com")
        assert response.status == StatusCode.NOT_FOUND

    def test_edge_passes_origin_firewall(self):
        # Edge source IP (10.x) is inside the allowed DPS ranges; a
        # direct probe is not — the exact asymmetry HTML verification hits.
        fabric, origin, edge = self._edge_setup(firewall=True)
        via_edge = HttpClient(fabric).get(edge.ip, "example.com")
        direct = HttpClient(fabric, source_ip="198.18.0.1").get(origin.ip, "example.com")
        assert via_edge.ok
        assert direct is None

    def test_cache_hit_avoids_origin(self):
        fabric, origin, edge = self._edge_setup()
        client = HttpClient(fabric)
        client.get(edge.ip, "example.com")
        served_before = origin.requests_served
        client.get(edge.ip, "example.com")
        assert origin.requests_served == served_before
        assert edge.cache_hits == 1

    def test_remove_origin_stops_proxying_and_flushes(self):
        fabric, origin, edge = self._edge_setup()
        client = HttpClient(fabric)
        client.get(edge.ip, "example.com")
        assert edge.remove_origin("example.com")
        response = client.get(edge.ip, "example.com")
        assert response.status == StatusCode.NOT_FOUND

    def test_bad_gateway_when_origin_unreachable(self):
        fabric, origin, edge = self._edge_setup()
        fabric.unregister_http(origin.ip)
        edge.flush_cache()
        response = HttpClient(fabric).get(edge.ip, "example.com")
        assert response.status == StatusCode.BAD_GATEWAY

    def test_flush_cache(self):
        fabric, origin, edge = self._edge_setup()
        client = HttpClient(fabric)
        client.get(edge.ip, "example.com")
        edge.flush_cache()
        client.get(edge.ip, "example.com")
        assert origin.requests_served == 2


class TestHttpRequest:
    def test_url_property(self):
        from repro.dns.name import DomainName
        request = HttpRequest(host=DomainName("example.com"), path="/x")
        assert request.url == "http://example.com/x"

    def test_request_counter(self):
        fabric = NetworkFabric()
        client = HttpClient(fabric)
        client.get("10.0.0.1", "a.com")
        client.get("10.0.0.1", "b.com")
        assert client.requests_sent == 2
