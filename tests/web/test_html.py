"""Tests for the HTML document model."""

from repro.web.html import HtmlDocument


class TestRenderParse:
    def test_round_trip(self):
        doc = HtmlDocument(
            title="Example — home",
            meta={"description": "d", "generator": "g"},
            body="<h1>hi</h1>",
        )
        parsed = HtmlDocument.parse(doc.render())
        assert parsed.title == doc.title
        assert parsed.meta == doc.meta
        assert parsed.body == doc.body

    def test_parse_missing_title(self):
        assert HtmlDocument.parse("<html><body>x</body></html>").title == ""

    def test_parse_ignores_malformed_meta(self):
        text = '<title>t</title><meta charset="utf-8"><meta name="a" content="b">'
        parsed = HtmlDocument.parse(text)
        assert parsed.meta == {"a": "b"}

    def test_meta_rendered_sorted(self):
        doc = HtmlDocument("t", {"b": "2", "a": "1"})
        rendered = doc.render()
        assert rendered.index('name="a"') < rendered.index('name="b"')


class TestMatching:
    def test_identical_documents_match(self):
        a = HtmlDocument("t", {"k": "v"})
        b = HtmlDocument("t", {"k": "v"})
        assert a.matches(b)

    def test_title_mismatch(self):
        assert not HtmlDocument("a", {}).matches(HtmlDocument("b", {}))

    def test_meta_value_mismatch(self):
        a = HtmlDocument("t", {"k": "v1"})
        b = HtmlDocument("t", {"k": "v2"})
        assert not a.matches(b)

    def test_extra_meta_key_mismatch(self):
        a = HtmlDocument("t", {"k": "v"})
        b = HtmlDocument("t", {"k": "v", "extra": "x"})
        assert not a.matches(b)

    def test_body_is_ignored_by_matching(self):
        a = HtmlDocument("t", {"k": "v"}, body="one")
        b = HtmlDocument("t", {"k": "v"}, body="two")
        assert a.matches(b)

    def test_fingerprint_hashable(self):
        a = HtmlDocument("t", {"k": "v"})
        assert {a.fingerprint()} == {HtmlDocument("t", {"k": "v"}).fingerprint()}
