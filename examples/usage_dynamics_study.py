#!/usr/bin/env python3
"""§IV standalone: DPS usage dynamics and their security implications.

Runs only the usage-dynamics half of the paper — daily A/CNAME/NS
collection, Table III status inference, Table IV behaviour diffing,
the Fig. 5 pause-window analysis, and the Table V origin-IP experiment —
then compares the measurement against the simulator's ground truth,
which the paper's authors never had.

Usage::

    python examples/usage_dynamics_study.py [population] [days]
"""

import sys

from repro import SimulatedInternet, SixWeekStudy, StudyConfig, WorldConfig
from repro.core import (
    render_fig2_adoption,
    render_fig3_behaviors,
    render_fig5_pause_cdf,
    render_fig6_cloudflare,
    render_table5_ip_unchanged,
)
from repro.world.admin import BehaviorKind


def main() -> None:
    population = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    days = int(sys.argv[2]) if len(sys.argv) > 2 else 42

    world = SimulatedInternet(WorldConfig(population_size=population, seed=7))
    config = StudyConfig(study_days=days, run_residual_scans=False)
    print(f"Collecting {days} daily snapshots over {population:,} sites…\n")
    report = SixWeekStudy(world, config).run()

    for render in (
        render_fig2_adoption,
        render_fig3_behaviors,
        render_fig5_pause_cdf,
        render_fig6_cloudflare,
        render_table5_ip_unchanged,
    ):
        print(render(report))
        print()

    # Measurement vs ground truth — the falsifiability bonus.
    print("Measured vs planted daily behaviour rates "
          "(the validation the paper could not do):")
    truth = report.ground_truth_daily_average()
    print(f"{'behaviour':<10} {'measured/day':>13} {'planted/day':>12}")
    for kind in BehaviorKind:
        measured = report.behavior_averages.get(kind, 0.0)
        print(f"{kind.name:<10} {measured:>13.2f} {truth.get(kind, 0.0):>12.2f}")
    if report.multicdn_flagged:
        print(f"\nmulti-CDN sites filtered out: "
              f"{sorted(report.multicdn_flagged)}")


if __name__ == "__main__":
    main()
