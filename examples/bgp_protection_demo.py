#!/usr/bin/env python3
"""The other rerouting mechanism: BGP-based infrastructure protection.

§II-A names two rerouting families. The paper studies the DNS-based one
because it dominates — and because it is the one with the residual-
resolution hole. This demo shows the contrast: with BGP-based
protection, even a *fully exposed* origin address is unattackable,
because the protected block itself routes through the scrubbers.

Sequence:

1. a site leaves a DNS-based DPS; the residual record exposes its origin;
2. a direct flood at that origin kills the site (the paper's Fig. 1b);
3. the site buys BGP-based protection for its address block;
4. the very same flood at the very same address is now scrubbed.
"""

from repro import SimulatedInternet, WorldConfig
from repro.core import DdosSimulator, ProviderMatcher, ResidualResolutionAttacker
from repro.dps import BgpProtectionService, ReroutingMethod
from repro.net.ipaddr import IPv4Prefix


def main() -> None:
    world = SimulatedInternet(WorldConfig(population_size=300, seed=6))
    cloudflare = world.provider("cloudflare")
    incapsula = world.provider("incapsula")
    matcher = ProviderMatcher(world.specs, world.routeviews)
    simulator = DdosSimulator(world.providers, matcher)

    victim = next(
        s for s in world.population
        if s.provider is None and s.alive and not s.multicdn
        and not s.is_rotating and not s.dynamic_meta and not s.firewall_inclined
    )
    print(f"Victim: {victim.www} (origin {victim.origin.ip})\n")

    # 1. Residual exposure after leaving a DNS-based DPS.
    victim.join(cloudflare, ReroutingMethod.NS_BASED)
    victim.leave(informed=True)
    attacker = ResidualResolutionAttacker(world.dns_client(), matcher)
    discovery = attacker.probe_nameservers(
        victim.www, cloudflare.customer_fleet.all_addresses()[:10]
    )
    exposed = discovery.candidate_origins[0]
    print(f"[1] Residual record at {cloudflare.name} exposes: {exposed}")

    # 2. The flood works.
    outcome = simulator.attack(exposed, attack_gbps=800.0)
    print(f"[2] 800 Gbps at the exposed origin: availability "
          f"{outcome.origin_availability:.0%} -> "
          f"{'SITE DOWN' if outcome.attack_succeeded else 'survived'}")

    # 3. BGP-based protection for the origin's block.
    block = IPv4Prefix.from_int(victim.origin.ip.value & ~0xF, 28)
    bgp = BgpProtectionService(incapsula, world.routeviews)
    bgp.protect(block)
    print(f"[3] {incapsula.name} now announces {block} from its AS "
          f"(origination: AS{world.routeviews.lookup(victim.origin.ip)})")

    # 4. The same flood at the same address is scrubbed.
    matcher_after = ProviderMatcher(world.specs, world.routeviews)
    simulator_after = DdosSimulator(world.providers, matcher_after)
    outcome = simulator_after.attack(exposed, attack_gbps=800.0)
    print(f"[4] Same 800 Gbps at the same address: path={outcome.path}, "
          f"availability {outcome.origin_availability:.0%} -> "
          f"{'survived — exposure neutralised' if not outcome.attack_succeeded else 'down'}")
    print("\nResidual resolution only matters for DNS-based rerouting "
          "(§III: 'With the A-based rerouting, there is no such threat' — "
          "and with BGP-based rerouting, exposure itself is harmless).")


if __name__ == "__main__":
    main()
