#!/usr/bin/env python3
"""§V standalone: the residual-resolution scan, step by step.

Shows the machinery of the Cloudflare case study explicitly rather than
through the study orchestrator:

1. harvest ``*.ns.cloudflare.*`` nameserver identities from customer
   delegations observed in daily snapshots;
2. resolve them to anycast addresses;
3. direct-query every site's www hostname against randomly-chosen
   nameservers from the five vantage points (Fig. 7);
4. run the Fig. 8 filter pipeline: IP-matching → A-matching → HTML
   verification;
5. print the per-stage counts and the exposed origins.
"""

from repro import SimulatedInternet, WorldConfig
from repro.core import (
    CloudflareScanner,
    DnsRecordCollector,
    FilterPipeline,
    HtmlVerifier,
    NameserverHarvest,
    ProviderMatcher,
)
from repro.net.geo import PAPER_VANTAGE_REGIONS


def main() -> None:
    world = SimulatedInternet(WorldConfig(population_size=2000, seed=11))
    print("Warming the world up (accumulating departures)…")
    world.engine.run_days(45)

    hostnames = [str(s.www) for s in world.population]
    collector = DnsRecordCollector(world.make_resolver())
    snapshot = collector.collect(hostnames, day=world.clock.day)

    harvest = NameserverHarvest()
    harvest.ingest([snapshot])
    ns_ips = harvest.resolve_addresses(world.make_resolver())
    print(f"[harvest] {len(harvest)} nameserver identities "
          f"(paper: 391), e.g. {harvest.hostnames[:3]}")

    clients = [world.dns_client(region) for region in PAPER_VANTAGE_REGIONS]
    scanner = CloudflareScanner(ns_ips, clients)
    retrieved = scanner.scan(hostnames)
    print(f"[scan] {scanner.queries_answered} answered / "
          f"{scanner.queries_ignored} ignored over {len(hostnames):,} "
          f"hostnames from {len(clients)} vantage points")

    cloudflare = world.provider("cloudflare")
    verifier = HtmlVerifier(world.http_client("oregon"))
    pipeline = FilterPipeline(
        cloudflare.prefixes, world.make_resolver(), verifier
    )
    report = pipeline.run(retrieved, "cloudflare", week=0)

    print(f"[pipeline] retrieved {report.retrieved} records")
    print(f"  IP-matching filter dropped {report.dropped_ip_filter} "
          "(active customers → edge addresses)")
    print(f"  A-matching filter dropped {report.dropped_a_filter} "
          "(publicly visible anyway)")
    print(f"  hidden records: {report.hidden_count}")
    print(f"  verified exposed origins: {report.verified_count} "
          f"({report.verified_fraction:.0%}; paper: 24.8%)")
    for record in report.hidden:
        verdict = "EXPOSED ORIGIN" if record.verified_origin else record.reason
        print(f"    {record.www:<28} -> {str(record.address):<15} {verdict}")

    matcher = ProviderMatcher(world.specs, world.routeviews)
    for record in report.hidden:
        assert not matcher.in_provider_ranges(record.address)


if __name__ == "__main__":
    main()
