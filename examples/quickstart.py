#!/usr/bin/env python3
"""Quickstart: build a simulated Internet, run the paper's six-week
study at small scale, and print every table and figure.

Usage::

    python examples/quickstart.py [population] [seed]

Defaults to a 2,000-site world (a 1:500 scale model of the paper's
top-1M list) — takes well under a minute.
"""

import sys
import time

from repro import SimulatedInternet, SixWeekStudy, StudyConfig, WorldConfig
from repro.core import render_full_report


def main() -> None:
    population = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2018

    print(f"Building a simulated Internet with {population:,} websites "
          f"(seed {seed})…")
    started = time.perf_counter()
    world = SimulatedInternet(WorldConfig(population_size=population, seed=seed))
    print(f"  {len(world.providers)} DPS platforms, "
          f"{len(world.hosting_providers)} hosting providers, "
          f"{len(world.dps_customers()):,} initial DPS customers "
          f"({time.perf_counter() - started:.1f}s)")

    print("Running the six-week measurement campaign "
          "(warm-up, 42 daily collections, 6 weekly scans)…")
    started = time.perf_counter()
    report = SixWeekStudy(world, StudyConfig()).run()
    print(f"  done in {time.perf_counter() - started:.1f}s\n")

    print(render_full_report(report))

    totals = report.cloudflare_totals
    print()
    print(f"Headline: {totals['hidden']} hidden records at the "
          f"Cloudflare-like platform, {totals['verified']} verified live "
          f"origins — residual resolution reproduced at 1:"
          f"{report.scale_factor:.0f} scale.")


if __name__ == "__main__":
    main()
