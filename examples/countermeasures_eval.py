#!/usr/bin/env python3
"""§VI-B: quantifying every countermeasure.

For a cohort of customers that switch away from a vulnerable provider,
count how many origins an attacker can still discover under each
configuration — the ablation the paper describes qualitatively.
"""

from repro import SimulatedInternet, WorldConfig
from repro.core import (
    ProviderMatcher,
    ResidualResolutionAttacker,
    leave_with_fake_a,
    silent_termination,
    track_and_compare,
)
from repro.dps import PlanTier, ReroutingMethod

COHORT = 15


def run_scenario(name, configure=None, use_fake_a=False, rotate=False):
    world = SimulatedInternet(WorldConfig(population_size=800, seed=99))
    cloudflare = world.provider("cloudflare")
    incapsula = world.provider("incapsula")
    if configure is not None:
        configure(cloudflare)
    matcher = ProviderMatcher(world.specs, world.routeviews)
    attacker = ResidualResolutionAttacker(world.dns_client(), matcher)

    cohort = [
        s for s in world.population
        if s.provider is None and s.alive and not s.multicdn
    ][:COHORT]
    exposed = 0
    for site in cohort:
        site.join(cloudflare, ReroutingMethod.NS_BASED)
        if use_fake_a:
            decoy = world.vantage_point("tokyo").source_ip
            leave_with_fake_a(site, decoy)
            site.join(incapsula, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS)
        else:
            site.switch(
                incapsula, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS,
                informed=True, rotate_origin_ip=rotate,
            )
        discovery = attacker.probe_nameservers(
            site.www, cloudflare.customer_fleet.all_addresses()[:10]
        )
        if site.origin.ip in discovery.candidate_origins:
            exposed += 1
    return exposed, len(cohort)


def main() -> None:
    scenarios = [
        ("baseline (answer-with-origin, the wild config)", {}),
        ("provider: silent termination", {"configure": silent_termination}),
        ("provider: track-and-compare", {"configure": track_and_compare}),
        ("customer: fake A record before leaving", {"use_fake_a": True}),
        ("customer: rotate origin IP after switching", {"rotate": True}),
    ]
    print(f"{COHORT} customers switch Cloudflare→Incapsula; attacker probes "
          "the previous provider.\n")
    print(f"{'scenario':<48} {'origins exposed':>16}")
    print("-" * 66)
    baseline = None
    for name, kwargs in scenarios:
        exposed, cohort = run_scenario(name, **kwargs)
        if baseline is None:
            baseline = exposed
        reduction = "" if baseline == 0 else (
            f"  (-{(1 - exposed / baseline):.0%})" if name != scenarios[0][0] else ""
        )
        print(f"{name:<48} {exposed:>7}/{cohort}{reduction}")
    print("\nEvery countermeasure from §VI-B eliminates the exposure; the "
          "baseline leaks every informed switcher's origin.")


if __name__ == "__main__":
    main()
