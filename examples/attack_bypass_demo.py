#!/usr/bin/env python3
"""Fig. 1 as a narrative: how residual resolution nullifies a DPS.

Walks one website through the paper's threat model:

1. the site is protected by a Cloudflare-like DPS — a 900 Gbps flood at
   its public address is scrubbed and the site stays up;
2. the site switches to an Incapsula-like DPS and properly closes its
   old account;
3. the attacker queries the *previous* provider's nameservers directly,
   obtains the stored origin address, and aims the same flood there —
   the new DPS never sees a packet, and the origin dies;
4. the previous provider deploys the track-and-compare countermeasure
   and the discovery fails.
"""

from repro import SimulatedInternet, WorldConfig
from repro.core import (
    DdosSimulator,
    ProviderMatcher,
    ResidualResolutionAttacker,
    track_and_compare,
)
from repro.dps import PlanTier, ReroutingMethod

ATTACK_GBPS = 900.0


def main() -> None:
    world = SimulatedInternet(WorldConfig(population_size=300, seed=4))
    cloudflare = world.provider("cloudflare")
    incapsula = world.provider("incapsula")
    matcher = ProviderMatcher(world.specs, world.routeviews)
    simulator = DdosSimulator(world.providers, matcher)

    victim = next(
        s for s in world.population
        if s.provider is None and s.alive and not s.multicdn
        and not s.dynamic_meta and not s.firewall_inclined
    )
    print(f"Victim: {victim.www} (origin {victim.origin.ip})\n")

    # -- Act 1: protection works -------------------------------------------
    victim.join(cloudflare, ReroutingMethod.NS_BASED)
    public = world.make_resolver().resolve(victim.www)
    print(f"[1] Protected by {cloudflare.name}: public resolution -> "
          f"{public.addresses[0]} (edge)")
    outcome = simulator.attack(public.addresses[0], attack_gbps=ATTACK_GBPS)
    print(f"    {ATTACK_GBPS:.0f} Gbps flood at the edge: path={outcome.path}, "
          f"origin availability {outcome.origin_availability:.0%} -> "
          f"{'ATTACK FAILED' if not outcome.attack_succeeded else 'site down'}\n")

    # -- Act 2: the switch ----------------------------------------------------
    victim.switch(incapsula, ReroutingMethod.CNAME_BASED, PlanTier.BUSINESS,
                  informed=True)
    public = world.make_resolver().resolve(victim.www)
    print(f"[2] Switched to {incapsula.name}: public resolution -> "
          f"{public.addresses[0]} (new provider's edge)\n")

    # -- Act 3: residual resolution ------------------------------------------------
    attacker = ResidualResolutionAttacker(world.dns_client("singapore"), matcher)
    discovery = attacker.probe_nameservers(
        victim.www, cloudflare.customer_fleet.all_addresses()[:10]
    )
    print(f"[3] Attacker queries {cloudflare.name}'s nameservers directly:")
    print(f"    discovered candidate origins: "
          f"{[str(ip) for ip in discovery.candidate_origins]}")
    outcome = simulator.attack(discovery.candidate_origins[0], attack_gbps=ATTACK_GBPS)
    print(f"    {ATTACK_GBPS:.0f} Gbps flood straight at the origin: "
          f"path={outcome.path}, availability "
          f"{outcome.origin_availability:.0%} -> "
          f"{'SITE DOWN — new DPS bypassed' if outcome.attack_succeeded else 'survived'}\n")

    # -- Act 4: the countermeasure ----------------------------------------------------
    track_and_compare(cloudflare)
    retry = attacker.probe_nameservers(
        victim.www, cloudflare.customer_fleet.all_addresses()[:10]
    )
    print(f"[4] {cloudflare.name} deploys track-and-compare (§VI-B): "
          f"discovery now "
          f"{'FAILS — hole closed' if not retry.succeeded else 'still works'}")


if __name__ == "__main__":
    main()
