"""Deterministic randomness for the whole simulation.

All stochastic components draw from a :class:`SeededRng`, a thin wrapper
around :class:`random.Random` that supports *forking* — deriving an
independent, reproducible child stream from a parent stream and a string
label.  Forking keeps subsystems decoupled: adding a new consumer of
randomness does not perturb the draws seen by existing consumers, so
experiment results stay stable across library versions.

Example
-------
>>> root = SeededRng(42)
>>> admins = root.fork("admin-behavior")
>>> dns = root.fork("dns-jitter")
>>> admins.random() != dns.random()
True
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

from .markers import pure_function

T = TypeVar("T")

__all__ = ["SeededRng", "stable_hash"]


@pure_function
def stable_hash(*parts: object) -> int:
    """Return a 64-bit hash of ``parts`` that is stable across processes.

    Python's built-in ``hash`` is salted per process for strings, which
    would destroy reproducibility; we use BLAKE2b instead.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "big")


class SeededRng:
    """A forkable, reproducible random stream.

    Parameters
    ----------
    seed:
        Any integer.  Two :class:`SeededRng` instances built with the same
        seed produce identical draw sequences.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._random = random.Random(self.seed)

    def fork(self, label: str) -> "SeededRng":
        """Derive an independent child stream keyed by ``label``.

        The child depends only on this stream's *seed* and the label, not
        on how many draws have been made, so fork order does not matter.
        """
        return SeededRng(stable_hash(self.seed, label))

    # -- checkpoint support -------------------------------------------

    def getstate(self) -> list:
        """The stream's position as JSON-compatible primitives.

        Captures the underlying Mersenne Twister state (version, the
        624-word state vector + index, and the pending ``gauss`` value),
        so a restored stream continues the *exact* draw sequence —
        stream offsets survive a checkpoint/resume round trip.
        """
        version, internal, gauss_next = self._random.getstate()
        return [version, list(internal), gauss_next]

    def setstate(self, state: "list | tuple") -> None:
        """Restore a position previously captured by :meth:`getstate`."""
        version, internal, gauss_next = state
        self._random.setstate((version, tuple(internal), gauss_next))

    # -- draw helpers -------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly choose one element of a non-empty sequence."""
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """Choose ``k`` distinct elements."""
        return self._random.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        """Shuffle ``seq`` in place."""
        self._random.shuffle(seq)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choose one element with probability proportional to its weight."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        return self._random.choices(list(items), weights=list(weights), k=1)[0]

    def bernoulli(self, p: float) -> bool:
        """Return True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability out of range: {p}")
        return self._random.random() < p

    def expovariate(self, rate: float) -> float:
        """Exponential draw with the given rate (mean 1/rate)."""
        return self._random.expovariate(rate)

    def geometric(self, p: float) -> int:
        """Number of Bernoulli(p) trials up to and including first success (>= 1)."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"probability out of range: {p}")
        count = 1
        while not self.bernoulli(p):
            count += 1
        return count

    def pick_subset(self, seq: Iterable[T], p: float) -> List[T]:
        """Independently keep each element with probability ``p``."""
        return [item for item in seq if self.bernoulli(p)]
