"""Lockstep sharded execution of the six-week study.

``N`` workers — in-process objects (``mode="inline"``) or forked OS
processes (``mode="process"``) — each rebuild the full deterministic
world from ``(seed, population)`` and measure one contiguous slice of
the site population.  The coordinator drives them day by day through
the same phases the monolithic loop runs:

1. **barrier** — each worker commits its per-shard checkpoint (barrier
   ``k`` before study day ``k`` runs, exactly like the monolithic
   checkpoint plane);
2. **collect** — the daily A/CNAME/NS sweep over the worker's slice;
3. **broadcast + scan** (weekly) — the workers ship their harvested
   nameserver names home, the coordinator merges them (sorted union)
   and broadcasts the campaign-wide harvest back, then every worker
   runs the §V sweeps over its slice with the *merged* harvest — the
   one step of the daily loop that genuinely needs cross-shard state;
4. **advance** — the world steps one day (every replica steps
   identically; the lockstep is never allowed to skew).

After the last barrier each worker ships its payload
(:func:`~repro.shard.merge.worker_payload`); the coordinator merges
them, overlays the result onto a freshly replayed monolithic runtime,
and runs :meth:`~repro.core.study.SixWeekStudy.finalise`.  The merged
report is byte-identical to a single-process campaign's, whatever the
shard count.

Checkpoints nest under the campaign directory: the coordinator's
manifest at the top (recording the shard count), one full per-shard
store in ``shard-<i>-of-<n>/`` each.  A resumed campaign seeks every
worker to the *lowest* barrier any shard committed — workers ahead of
it simply replay (their journals already hold the later barriers and
are never re-appended), which is the same tolerance the monolithic
plane applies to a torn journal tail.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..checkpoint.serde import config_to_dict, restore_runtime, serialize_runtime
from ..checkpoint.store import CheckpointStore
from ..core.residual_scan import NameserverHarvest
from ..core.study import SixWeekStudy, StudyConfig, StudyReport, StudyRuntime
from ..errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    ShardError,
    ShardWorkerError,
    SimulatedCrash,
    SimulationError,
)
from ..faults.crash import CrashPlan
from ..world.config import WorldConfig
from ..world.internet import SimulatedInternet
from .merge import merge_payloads, overlay_merged, worker_payload
from .plan import ShardPlan

__all__ = [
    "DEFAULT_OP_TIMEOUT",
    "WorkerSpec",
    "ShardWorker",
    "InlineExecutor",
    "ProcessExecutor",
    "shard_directory",
    "run_sharded_study",
    "resume_sharded_study",
]

SHARD_MODES = ("inline", "process")

#: Seconds the coordinator waits for one worker to answer one lockstep
#: operation before declaring it hung.  Generous: a single operation is
#: one study day over one shard's slice, which finishes in seconds even
#: on large populations — a worker silent this long is stuck, not slow.
DEFAULT_OP_TIMEOUT = 120.0

#: Seconds a worker waits for the coordinator's next operation before
#: concluding the coordinator itself is gone and exiting.  Larger than
#: the coordinator's deadline so the coordinator always rules first.
WORKER_IDLE_TIMEOUT = 600.0

#: Granularity of the bounded waits.  Both deadlines are accounted by
#: accumulating poll slices rather than reading the wall clock, so the
#: watchdog stays deterministic to reason about: the budget is a count
#: of slices, not a race against the scheduler.
_POLL_SLICE = 0.05


def shard_directory(base: "Path | str", shard_index: int, shard_count: int) -> Path:
    """The per-shard checkpoint store's location under a campaign dir."""
    return Path(base) / f"shard-{shard_index}-of-{shard_count}"


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to build its replica — picklable, so a
    spawned process can reconstruct the worker from scratch."""

    shard_index: int
    shard_count: int
    population: int
    seed: int
    config: StudyConfig
    fault_profile: Optional[str] = None
    traffic_profile: Optional[str] = None
    attack_profile: Optional[str] = None
    checkpoint_dir: Optional[str] = None
    crash_plan: Optional[CrashPlan] = None
    #: False: fresh run (create the store).  True: open the existing
    #: store and seek to ``seek_barrier`` (-1 = no committed snapshot
    #: anywhere; re-begin from scratch but keep the journal's history).
    resume: bool = False
    seek_barrier: int = -1


class ShardWorker:
    """One shard's replica: full world, slice-wide measurement state.

    Driven operation by operation from the coordinator; every operation
    asserts the worker is at the lockstep position the coordinator
    believes it is, so a skew bug dies loudly instead of merging
    garbage.
    """

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.store = self._attach_store()
        records = self.store.barriers() if self.store is not None else []
        self.latest_barrier = int(records[-1]["barrier"]) if records else -1
        self.study, self.runtime = self._begin()
        if spec.resume and spec.seek_barrier >= 0:
            self._seek(records)

    # -- construction --------------------------------------------------

    def _attach_store(self) -> Optional[CheckpointStore]:
        spec = self.spec
        if spec.checkpoint_dir is None:
            return None
        identity = dict(
            seed=spec.seed,
            population=spec.population,
            config=config_to_dict(spec.config),
            fault_profile=spec.fault_profile,
            traffic_profile=spec.traffic_profile,
            attack_profile=spec.attack_profile,
            shard={"index": spec.shard_index, "count": spec.shard_count},
        )
        if spec.resume:
            store = CheckpointStore.open(spec.checkpoint_dir)
            store.verify_inputs(**identity)
            return store
        return CheckpointStore.create(spec.checkpoint_dir, **identity)

    def _begin(self) -> "tuple[SixWeekStudy, StudyRuntime]":
        """Rebuild world + study deterministically (profile after warmup,
        mirroring the monolithic checkpoint runner)."""
        spec = self.spec
        world = SimulatedInternet(
            WorldConfig(population_size=spec.population, seed=spec.seed)
        )
        study = SixWeekStudy(world, spec.config)
        runtime = study.begin(spec.shard_index, spec.shard_count)
        if spec.fault_profile is not None:
            world.install_faults(spec.fault_profile)
        if spec.traffic_profile is not None:
            world.install_traffic(spec.traffic_profile)
        if spec.attack_profile is not None:
            world.install_attacks(spec.attack_profile)
        return study, runtime

    def _seek(self, records: List[Dict[str, object]]) -> None:
        """Replay the world to ``seek_barrier`` and overlay its snapshot."""
        target = self.spec.seek_barrier
        if target > self.latest_barrier:
            raise ShardError(
                f"shard {self.spec.shard_index} was asked to seek to "
                f"barrier {target} but has only committed up to "
                f"{self.latest_barrier}"
            )
        record = records[target]  # barriers are contiguous from 0
        state = self.store.load_snapshot(record)
        for _ in range(int(state["day_index"])):
            self.study.world.engine.run_day()
        restore_runtime(self.study, self.runtime, state)
        try:
            self.study.world.clock.require(int(state["clock_now"]))
        except SimulationError as exc:
            raise CheckpointCorruptError(
                f"replayed world clock drifted from the snapshot: {exc}"
            ) from exc

    # -- lockstep operations -------------------------------------------

    def dispatch(self, op: str, argument: object = None) -> object:
        """Execute one coordinator-issued operation."""
        if op == "barrier":
            return self._op_barrier(int(argument))
        if op == "collect":
            return self.study.collect_day(self.runtime)
        if op == "harvest_names":
            return self.runtime.harvest.state_dict()
        if op == "scan":
            return self._op_scan(argument)
        if op == "advance":
            return self.study.advance_day(self.runtime)
        if op == "finish":
            return worker_payload(self.study, self.runtime)
        raise ShardError(f"unknown shard operation {op!r}")

    def _op_barrier(self, barrier: int) -> int:
        if barrier != self.runtime.day_index:
            raise ShardError(
                f"shard {self.spec.shard_index} sits at day "
                f"{self.runtime.day_index} but the coordinator announced "
                f"barrier {barrier}; the lockstep has skewed"
            )
        if barrier > self.latest_barrier:
            crash_plan = self.spec.crash_plan
            if crash_plan is not None:
                crash_plan.fire_if_due(barrier, "before-commit")
            if self.store is not None:
                self.store.append_barrier(
                    barrier=barrier,
                    day=self.study.world.clock.day,
                    clock_now=self.study.world.clock.now,
                    state=serialize_runtime(self.study, self.runtime),
                )
            if crash_plan is not None:
                crash_plan.fire_if_due(barrier, "after-commit")
            self.latest_barrier = barrier
        return self.latest_barrier

    def _op_scan(self, merged_names: object) -> None:
        """Run the weekly sweeps with the broadcast campaign harvest."""
        broadcast = NameserverHarvest()
        broadcast.restore_state(merged_names)
        self.runtime.scan_harvest = broadcast
        self.study.scan_day(self.runtime)


# -- executors --------------------------------------------------------------


class InlineExecutor:
    """All workers in this process, stepped sequentially.

    The reference executor: no transport, no pickling, identical
    semantics — equivalence tests run against it, and it is the mode of
    choice when the campaign is small enough that process fan-out costs
    more than it buys.
    """

    def __init__(self, specs: Sequence[WorkerSpec]) -> None:
        self._specs = list(specs)
        self._workers: List[ShardWorker] = []

    def start(self) -> None:
        self._workers = [ShardWorker(spec) for spec in self._specs]

    def call_all(self, op: str, argument: object = None) -> List[object]:
        return [worker.dispatch(op, argument) for worker in self._workers]

    def close(self) -> None:
        self._workers = []


class ProcessExecutor:
    """One forked worker process per shard, coordinated over pipes.

    Fork is preferred where available (the parent's imports are shared
    copy-on-write); spawn works too because :class:`WorkerSpec` is
    picklable and the worker entrypoint is a module-level function.  A
    :class:`~repro.errors.SimulatedCrash` in any worker ends the whole
    campaign — the surviving processes are terminated and the crash is
    re-raised in the coordinator, exactly as the inline mode propagates
    it.

    Every wait on a worker is bounded.  The coordinator never issues a
    blind ``recv()``: it polls with a deadline (``op_timeout``), checks
    the process is still alive, and on expiry terminates the stragglers
    and raises :class:`~repro.errors.ShardWorkerError` naming them — a
    hung or killed worker fails the campaign loudly instead of
    deadlocking the study.
    """

    def __init__(
        self,
        specs: Sequence[WorkerSpec],
        op_timeout: Optional[float] = None,
    ) -> None:
        self._specs = list(specs)
        self._op_timeout = (
            float(op_timeout) if op_timeout is not None else DEFAULT_OP_TIMEOUT
        )
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._processes: List[object] = []
        self._connections: List[object] = []

    def start(self) -> None:
        for spec in self._specs:
            parent_end, child_end = self._context.Pipe()
            process = self._context.Process(
                target=_worker_main, args=(child_end, spec), daemon=True
            )
            process.start()
            child_end.close()
            self._processes.append(process)
            self._connections.append(parent_end)
        self._gather("start")

    def call_all(self, op: str, argument: object = None) -> List[object]:
        undeliverable: List[int] = []
        for index, connection in enumerate(self._connections):
            try:
                connection.send((op, argument))
            except (BrokenPipeError, OSError):
                # The worker's pipe end is gone — it died between
                # operations.  Recorded here, reported (with any other
                # deaths) by the gather's refusal.
                undeliverable.append(index)
        return self._gather(op, undeliverable)

    def _await_reply(self, connection: object, process: object) -> bool:
        """Bounded wait for one worker's next message.

        Returns True when a message (or the EOF of a dead worker's
        closed pipe) is ready to ``recv()``, False when the deadline
        expired with the worker still alive and silent — a straggler.
        The deadline is accounted by accumulating poll slices, never by
        reading the wall clock.
        """
        waited = 0.0
        while waited < self._op_timeout:
            if connection.poll(_POLL_SLICE):
                return True
            if not process.is_alive():
                # recv() still drains anything the worker wrote before
                # exiting; on an empty closed pipe it raises EOFError
                # and the caller maps that to the died-mid-protocol
                # refusal.
                return True
            waited += _POLL_SLICE
        return False

    def _gather(
        self, op: str, undeliverable: Sequence[int] = ()
    ) -> List[object]:
        results: List[object] = []
        crashes: List[str] = []
        failures: List[object] = []
        dead: List[int] = list(undeliverable)
        stragglers: List[int] = []
        for index, connection in enumerate(self._connections):
            if index in dead:
                continue
            if not self._await_reply(connection, self._processes[index]):
                stragglers.append(index)
                continue
            try:
                kind, value = connection.recv()
            except (EOFError, OSError):
                kind, value = "dead", None
            if kind == "ok":
                results.append(value)
            elif kind == "crashed":
                crashes.append(f"shard {index}: {value}")
            elif kind == "dead":
                dead.append(index)
            else:
                failures.append(value)
        if failures:
            self.close(force=True)
            # Workers ship the exception object itself when it pickles,
            # so refusal semantics survive the process boundary — a
            # CheckpointCorruptError in a worker's seek is the same
            # refusal it would be inline.
            first = failures[0]
            if isinstance(first, BaseException):
                raise first
            raise ShardError(f"worker failure during {op!r}: {first}")
        if crashes:
            self.close(force=True)
            raise SimulatedCrash("; ".join(crashes))
        if dead or stragglers:
            self.close(force=True)
            parts = []
            if dead:
                named = ", ".join(f"shard {index}" for index in dead)
                parts.append(f"{named} died mid-protocol without reporting")
            if stragglers:
                named = ", ".join(f"shard {index}" for index in stragglers)
                parts.append(
                    f"{named} did not answer within "
                    f"{self._op_timeout:g}s and was terminated"
                )
            raise ShardWorkerError(
                f"lockstep operation {op!r} lost worker(s): "
                + "; ".join(parts)
            )
        return results

    def close(self, force: bool = False) -> None:
        for connection in self._connections:
            if not force:
                try:
                    connection.send(("exit", None))
                except (BrokenPipeError, OSError):
                    pass
            connection.close()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        self._processes = []
        self._connections = []


def _worker_main(connection, spec: WorkerSpec) -> None:
    """Entrypoint of a worker process (module-level for spawn safety)."""
    try:
        try:
            worker = ShardWorker(spec)
            connection.send(("ok", worker.latest_barrier))
            while True:
                # The worker-side half of the deadlock fix: never block
                # forever on a coordinator that hung or was killed
                # without closing the pipe.
                waited = 0.0
                while not connection.poll(_POLL_SLICE):
                    waited += _POLL_SLICE
                    if waited >= WORKER_IDLE_TIMEOUT:
                        raise ShardWorkerError(
                            f"shard {spec.shard_index} waited "
                            f"{WORKER_IDLE_TIMEOUT:g}s for the "
                            "coordinator's next operation; giving up"
                        )
                op, argument = connection.recv()
                if op == "exit":
                    break
                result = worker.dispatch(op, argument)
                connection.send(("ok", result))
        except SimulatedCrash as crash:
            connection.send(("crashed", str(crash)))
        except EOFError:
            pass  # coordinator went away; nothing to report to
        except Exception as exc:  # repro: allow[REP021] -- a worker process must report any failure over the pipe, not die silently with a broken campaign
            try:
                connection.send(("error", exc))
            except Exception:  # repro: allow[REP021] -- unpicklable exception; fall back to its text
                connection.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        connection.close()


# -- the coordinator --------------------------------------------------------


def run_sharded_study(
    *,
    population: int,
    seed: int,
    config: Optional[StudyConfig] = None,
    fault_profile: Optional[str] = None,
    traffic_profile: Optional[str] = None,
    attack_profile: Optional[str] = None,
    shard_count: int = 1,
    mode: str = "inline",
    checkpoint_dir: "Path | str | None" = None,
    crash_plan: Optional[CrashPlan] = None,
    op_timeout: Optional[float] = None,
) -> StudyReport:
    """Run the campaign over ``shard_count`` lockstep workers and merge.

    With ``checkpoint_dir`` the campaign is crash-safe: the coordinator
    writes its manifest at the top and each worker keeps a full
    checkpoint store in its own subdirectory; :func:`resume_sharded_study`
    continues a killed campaign on the identical trajectory.
    ``crash_plan`` arms the same :class:`~repro.faults.crash.CrashPlan`
    in *every* worker — the sharded kill-matrix's fault kind.
    """
    config = config if config is not None else StudyConfig()
    _require_mode(mode)
    ShardPlan(population, shard_count)  # validates the topology
    base = Path(checkpoint_dir) if checkpoint_dir is not None else None
    if base is not None:
        CheckpointStore.create(
            base,
            seed=seed,
            population=population,
            config=config_to_dict(config),
            fault_profile=fault_profile,
            traffic_profile=traffic_profile,
            attack_profile=attack_profile,
            shard={"count": shard_count},
        )
    specs = [
        WorkerSpec(
            shard_index=index,
            shard_count=shard_count,
            population=population,
            seed=seed,
            config=config,
            fault_profile=fault_profile,
            traffic_profile=traffic_profile,
            attack_profile=attack_profile,
            checkpoint_dir=(
                str(shard_directory(base, index, shard_count))
                if base is not None
                else None
            ),
            crash_plan=crash_plan,
        )
        for index in range(shard_count)
    ]
    payloads = _drive_lockstep(
        specs, config, mode, start_barrier=0, op_timeout=op_timeout
    )
    return _finalise_merged(
        population,
        seed,
        config,
        fault_profile,
        traffic_profile,
        attack_profile,
        payloads,
    )


def resume_sharded_study(
    checkpoint_dir: "Path | str",
    *,
    population: int,
    seed: int,
    config: Optional[StudyConfig] = None,
    fault_profile: Optional[str] = None,
    traffic_profile: Optional[str] = None,
    attack_profile: Optional[str] = None,
    mode: str = "inline",
    shard_count: Optional[int] = None,
    crash_plan: Optional[CrashPlan] = None,
    op_timeout: Optional[float] = None,
) -> StudyReport:
    """Continue a killed sharded campaign on its exact trajectory.

    The shard count is read from the coordinator's manifest (and
    cross-checked against ``shard_count`` when supplied).  Every worker
    seeks to the lowest barrier committed by *any* shard — workers that
    got further replay deterministically up to their journals' existing
    records without re-appending them.
    """
    config = config if config is not None else StudyConfig()
    _require_mode(mode)
    base = Path(checkpoint_dir)
    parent = CheckpointStore.open(base)
    recorded = parent.manifest.get("shard")
    if not isinstance(recorded, dict) or "count" not in recorded or "index" in recorded:
        raise CheckpointMismatchError(
            f"{base} is not a sharded campaign's coordinator directory; "
            "resume monolithic checkpoints with resume_study"
        )
    count = int(recorded["count"])
    if shard_count is not None and shard_count != count:
        raise CheckpointMismatchError(
            f"campaign at {base} ran with {count} shard(s); the resume "
            f"asked for {shard_count} — the partition is part of the "
            "trajectory and cannot change mid-campaign"
        )
    parent.verify_inputs(
        seed=seed,
        population=population,
        config=config_to_dict(config),
        fault_profile=fault_profile,
        traffic_profile=traffic_profile,
        attack_profile=attack_profile,
        shard={"count": count},
    )

    latest_barriers: List[int] = []
    for index in range(count):
        shard_store = CheckpointStore.open(shard_directory(base, index, count))
        record = shard_store.latest()
        latest_barriers.append(int(record["barrier"]) if record else -1)
    seek_barrier = min(latest_barriers)

    specs = [
        WorkerSpec(
            shard_index=index,
            shard_count=count,
            population=population,
            seed=seed,
            config=config,
            fault_profile=fault_profile,
            traffic_profile=traffic_profile,
            attack_profile=attack_profile,
            checkpoint_dir=str(shard_directory(base, index, count)),
            crash_plan=crash_plan,
            resume=True,
            seek_barrier=seek_barrier,
        )
        for index in range(count)
    ]
    start = seek_barrier if seek_barrier >= 0 else 0
    payloads = _drive_lockstep(
        specs, config, mode, start_barrier=start, op_timeout=op_timeout
    )
    return _finalise_merged(
        population,
        seed,
        config,
        fault_profile,
        traffic_profile,
        attack_profile,
        payloads,
    )


# -- internals -------------------------------------------------------------


def _require_mode(mode: str) -> None:
    if mode not in SHARD_MODES:
        raise ShardError(
            f"unknown shard mode {mode!r}; expected one of {SHARD_MODES}"
        )


def _drive_lockstep(
    specs: Sequence[WorkerSpec],
    config: StudyConfig,
    mode: str,
    start_barrier: int,
    op_timeout: Optional[float] = None,
) -> List[Dict[str, object]]:
    """The coordinator's day loop: barrier → collect → (scan) → advance."""
    executor = (
        ProcessExecutor(specs, op_timeout=op_timeout)
        if mode == "process"
        else InlineExecutor(specs)
    )
    executor.start()
    try:
        day = start_barrier
        while True:
            executor.call_all("barrier", day)
            if day >= config.study_days:
                break
            executor.call_all("collect")
            if config.run_residual_scans and day % config.scan_every_days == 0:
                name_lists = executor.call_all("harvest_names")
                campaign_harvest = sorted(
                    {name for names in name_lists for name in names}
                )
                executor.call_all("scan", campaign_harvest)
            executor.call_all("advance")
            day += 1
        return executor.call_all("finish")
    finally:
        executor.close()


def _finalise_merged(
    population: int,
    seed: int,
    config: StudyConfig,
    fault_profile: Optional[str],
    traffic_profile: Optional[str],
    attack_profile: Optional[str],
    payloads: List[Dict[str, object]],
) -> StudyReport:
    """Merge worker payloads and run the post-loop analyses.

    The coordinator replays its own full-world replica (warm-up via
    :meth:`begin`, then the study's engine days), overlays the merged
    measurement state, and finalises — the same world-replay discipline
    the checkpoint plane's resume uses, with the merged payload in the
    role of the snapshot.
    """
    merged = merge_payloads(payloads)
    world = SimulatedInternet(WorldConfig(population_size=population, seed=seed))
    study = SixWeekStudy(world, config)
    runtime = study.begin()
    if fault_profile is not None:
        world.install_faults(fault_profile)
    if traffic_profile is not None:
        world.install_traffic(traffic_profile)
    if attack_profile is not None:
        world.install_attacks(attack_profile)
    for _ in range(int(merged["day_index"])):
        world.engine.run_day()
    try:
        world.clock.require(int(merged["clock_now"]))
    except SimulationError as exc:
        raise ShardError(
            f"coordinator world replay drifted from the workers: {exc}"
        ) from exc
    overlay_merged(study, runtime, merged)
    return study.finalise(runtime)
