"""Sharded execution of the six-week study with a byte-identical merge.

The measurement campaign partitions cleanly: world dynamics are global
and measurement-independent, per-site measurement touches only that
site's slice of state, and the one cross-site dependency (the weekly
scan's campaign-wide nameserver harvest) is a broadcast.  This package
exploits that — :mod:`~repro.shard.plan` computes the partition,
:mod:`~repro.shard.runner` drives N lockstep workers (in-process or
forked), and :mod:`~repro.shard.merge` folds their payloads into study
artifacts byte-identical to a monolithic run's, whatever the shard
count.  docs/SCALING.md walks through the argument.
"""

from .merge import merge_payloads, overlay_merged, worker_payload
from .plan import ShardPlan
from .runner import (
    DEFAULT_OP_TIMEOUT,
    InlineExecutor,
    ProcessExecutor,
    ShardWorker,
    WorkerSpec,
    resume_sharded_study,
    run_sharded_study,
    shard_directory,
)

__all__ = [
    "DEFAULT_OP_TIMEOUT",
    "ShardPlan",
    "worker_payload",
    "merge_payloads",
    "overlay_merged",
    "WorkerSpec",
    "ShardWorker",
    "InlineExecutor",
    "ProcessExecutor",
    "shard_directory",
    "run_sharded_study",
    "resume_sharded_study",
]
