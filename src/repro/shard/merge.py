"""Byte-identical aggregation of per-shard campaign state.

Every value a shard worker ships home is either *positional* (per-day
series, weekly pipeline reports) or *set-like* (harvests, quarantine
rosters, counters).  The merge rules follow directly:

* positional values merge **in shard order** — shard slices are
  contiguous in hostname order, so concatenating shard 0's domains
  before shard 1's reproduces the monolithic collection order exactly;
* set-like values merge in **canonical (sorted) order**, which is
  independent of how the observations were partitioned;
* scalar tallies (unmeasured counts, pipeline drop counters, metrics)
  are commutative sums.

Merging is pure dictionary arithmetic over the same JSON payload shape
the checkpoint plane serializes (:mod:`repro.checkpoint.serde`), so the
coordinator can overlay the merged state onto a freshly begun monolithic
runtime and hand it to :meth:`SixWeekStudy.finalise` — the analyses then
run on state byte-identical to a single-process campaign's.

Every structural disagreement between payloads (mismatched topologies,
missing shards, diverging lockstep positions) raises
:class:`~repro.errors.ShardError`: two workers that disagree cannot have
replayed the same world.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..checkpoint.serde import report_partial_to_dict, restore_report_partial
from ..core.study import SixWeekStudy, StudyRuntime
from ..errors import ShardError
from ..faults.quarantine import NameserverQuarantine
from ..markers import pure_function

__all__ = ["worker_payload", "merge_payloads", "overlay_merged"]

#: Bump on any incompatible change to the worker payload layout.
PAYLOAD_VERSION = 3


def worker_payload(study: SixWeekStudy, runtime: StudyRuntime) -> Dict[str, object]:
    """Everything one finished shard contributes to the merged campaign.

    Shipped by a worker (over a pipe, or returned inline) after its last
    study day; JSON-compatible so transports and tests can canonicalise
    it byte-stably.
    """
    report = runtime.report
    resolver = runtime.collection_resolver
    traffic_plane = study.world.fabric.traffic_plane
    attack_plane = study.world.fabric.attack_plane
    return {
        "payload_version": PAYLOAD_VERSION,
        "shard": {"index": runtime.shard_index, "count": runtime.shard_count},
        "population": report.population_size,
        "study_start_day": runtime.study_start_day,
        "day_index": runtime.day_index,
        "clock_now": study.world.clock.now,
        "report": report_partial_to_dict(report),
        "harvest": runtime.harvest.state_dict(),
        "exposure": runtime.exposure.state_dict(),
        "scan_pop_totals": sorted(
            [pop, count] for pop, count in runtime.scan_pop_totals.items()
        ),
        "quarantine": [list(entry) for entry in resolver.quarantine.snapshot()],
        "metrics": resolver.metrics.snapshot(),
        # World-side state: the plane is driven identically by every
        # replica, so this merges by agreement (see _validate_topology),
        # never by summation — summing replicated tallies would inflate
        # the background load by the shard count.
        "traffic": (
            traffic_plane.drive_state() if traffic_plane is not None else None
        ),
        # Attack state is world-side too: the schedule and its waves are
        # replicated per worker, merged by agreement, never summed.
        "attacks": (
            attack_plane.drive_state() if attack_plane is not None else None
        ),
    }


@pure_function
def merge_payloads(payloads: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Fold per-shard payloads into one monolithic-shaped payload.

    ``payloads`` may arrive in any order; they are merged in shard-index
    order, so the result is independent of worker completion order.  The
    merged payload has ``shard = {index: 0, count: 1}`` — it *is* the
    state a single worker measuring the whole population would have
    shipped.
    """
    if not payloads:
        raise ShardError("nothing to merge: no worker payloads")
    ordered = _validate_topology(payloads)

    merged_report = _merge_report_partials(
        [payload["report"] for payload in ordered]
    )

    harvest: set = set()
    for payload in ordered:
        harvest.update(payload["harvest"])

    exposure = _merge_exposure([payload["exposure"] for payload in ordered])

    pop_totals: Dict[str, int] = {}
    for payload in ordered:
        for pop, count in payload["scan_pop_totals"]:
            pop_totals[pop] = pop_totals.get(pop, 0) + int(count)

    metrics: Dict[str, int] = {}
    for payload in ordered:
        for name, value in payload["metrics"].items():
            metrics[name] = metrics.get(name, 0) + int(value)

    quarantine = NameserverQuarantine.merge_snapshots(
        payload["quarantine"] for payload in ordered
    )

    first = ordered[0]
    return {
        "payload_version": PAYLOAD_VERSION,
        "shard": {"index": 0, "count": 1},
        "population": first["population"],
        "study_start_day": first["study_start_day"],
        "day_index": first["day_index"],
        "clock_now": first["clock_now"],
        "report": merged_report,
        "harvest": sorted(harvest),
        "exposure": exposure,
        "scan_pop_totals": sorted([pop, pop_totals[pop]] for pop in pop_totals),
        "quarantine": [list(entry) for entry in quarantine],
        "metrics": {name: metrics[name] for name in sorted(metrics)},
        "traffic": first["traffic"],
        "attacks": first["attacks"],
    }


def overlay_merged(
    study: SixWeekStudy, runtime: StudyRuntime, merged: Dict[str, object]
) -> None:
    """Seat the merged campaign state in a coordinator runtime.

    ``runtime`` must come from an *unsharded* :meth:`SixWeekStudy.begin`
    on a world rebuilt from the same ``(seed, population)`` and replayed
    ``day_index`` engine days — the shard-runner's analogue of the
    checkpoint plane's world replay.  After the overlay,
    :meth:`SixWeekStudy.finalise` produces the campaign report.
    """
    if runtime.shard_count != 1:
        raise ShardError(
            "merged state overlays onto an unsharded coordinator runtime, "
            f"not shard {runtime.shard_index} of {runtime.shard_count}"
        )
    if int(merged["study_start_day"]) != runtime.study_start_day:
        raise ShardError(
            f"coordinator world starts its study at day "
            f"{runtime.study_start_day} but the workers measured a study "
            f"starting at day {merged['study_start_day']}"
        )
    runtime.day_index = int(merged["day_index"])
    restore_report_partial(runtime.report, merged["report"])
    runtime.harvest.restore_state(merged["harvest"])
    runtime.exposure.restore_state(merged["exposure"])
    runtime.scan_pop_totals = {
        pop: int(count) for pop, count in merged["scan_pop_totals"]
    }
    resolver = runtime.collection_resolver
    resolver.quarantine.restore(
        (address, int(at), int(due))
        for address, at, due in merged["quarantine"]
    )
    resolver.metrics.restore(merged["metrics"])
    traffic_state = merged["traffic"]
    traffic_plane = study.world.fabric.traffic_plane
    if (traffic_state is None) != (traffic_plane is None):
        raise ShardError(
            "workers and the coordinator disagree about whether a traffic "
            "plane is installed"
        )
    if traffic_plane is not None and traffic_plane.drive_state() != traffic_state:
        raise ShardError(
            "the coordinator's replayed traffic plane diverged from the "
            "workers'; the replicas cannot have driven the same load"
        )
    attack_state = merged["attacks"]
    attack_plane = study.world.fabric.attack_plane
    if (attack_state is None) != (attack_plane is None):
        raise ShardError(
            "workers and the coordinator disagree about whether an attack "
            "plane is installed"
        )
    if attack_plane is not None and attack_plane.drive_state() != attack_state:
        raise ShardError(
            "the coordinator's replayed attack plane diverged from the "
            "workers'; the replicas cannot have driven the same campaign"
        )


# -- internals -------------------------------------------------------------


def _validate_topology(
    payloads: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Check the payloads form one complete lockstep campaign; sort them."""
    count = len(payloads)
    for payload in payloads:
        if payload.get("payload_version") != PAYLOAD_VERSION:
            raise ShardError(
                f"worker payload version {payload.get('payload_version')!r} "
                f"is not the supported version {PAYLOAD_VERSION}"
            )
        shard = payload["shard"]
        if int(shard["count"]) != count:
            raise ShardError(
                f"shard {shard['index']} believes the topology has "
                f"{shard['count']} shard(s); {count} payload(s) arrived"
            )
    ordered = sorted(payloads, key=lambda p: int(p["shard"]["index"]))
    indices = [int(p["shard"]["index"]) for p in ordered]
    if indices != list(range(count)):
        raise ShardError(
            f"payload shard indices {indices} do not cover 0..{count - 1} "
            "exactly once"
        )
    for key in ("population", "study_start_day", "day_index", "clock_now"):
        values = {int(p[key]) for p in ordered}
        if len(values) > 1:
            raise ShardError(
                f"workers disagree on {key}: {sorted(values)}; they cannot "
                "have replayed the same world in lockstep"
            )
    # The traffic plane is world-side state every replica drives in
    # lockstep; its drive_state joins the must-agree family.
    traffic_states = [p["traffic"] for p in ordered]
    if any(state != traffic_states[0] for state in traffic_states[1:]):
        raise ShardError(
            "workers disagree on the traffic plane's state; they cannot "
            "have driven the same background load in lockstep"
        )
    # Same agreement rule for the attack plane: every replica drives the
    # identical schedule, waves and attacked-address sets.
    attack_states = [p["attacks"] for p in ordered]
    if any(state != attack_states[0] for state in attack_states[1:]):
        raise ShardError(
            "workers disagree on the attack plane's state; they cannot "
            "have driven the same attack campaign in lockstep"
        )
    return ordered


@pure_function
def _merge_report_partials(
    partials: Sequence[Dict[str, object]],
) -> Dict[str, object]:
    """Merge per-shard report payloads (shard order = hostname order)."""
    first = partials[0]
    for key in ("snapshots", "observations", "unmeasured_daily_counts"):
        lengths = {len(p[key]) for p in partials}
        if len(lengths) > 1:
            raise ShardError(
                f"workers recorded different numbers of days in {key}: "
                f"{sorted(lengths)}"
            )

    snapshots: List[Dict[str, object]] = []
    for day_position in range(len(first["snapshots"])):
        per_shard = [p["snapshots"][day_position] for p in partials]
        days = {int(s["day"]) for s in per_shard}
        if len(days) > 1:
            raise ShardError(
                f"snapshot position {day_position} spans clock days "
                f"{sorted(days)} across shards; collection fell out of "
                "lockstep"
            )
        snapshots.append(
            {
                "day": per_shard[0]["day"],
                "domains": [
                    domain for s in per_shard for domain in s["domains"]
                ],
            }
        )

    observations = [
        [entry for p in partials for entry in p["observations"][day_position]]
        for day_position in range(len(first["observations"]))
    ]

    unmeasured = [
        sum(int(p["unmeasured_daily_counts"][day_position]) for p in partials)
        for day_position in range(len(first["unmeasured_daily_counts"]))
    ]

    # A day is partial when *any* site went unmeasured — the union of the
    # per-shard verdicts.  Days are absolute clock days, so the sorted
    # union reproduces the monolithic append order.
    partial_days = sorted(
        {int(day) for p in partials for day in p["partial_days"]}
    )

    # Per-week throttled-hostname counts sum: each shard's slice of the
    # population is disjoint, so its throttled hostnames are too.
    partial_scans: Dict[int, int] = {}
    for p in partials:
        for week, count in p["partial_scan_weeks"]:
            week = int(week)
            partial_scans[week] = partial_scans.get(week, 0) + int(count)

    # The skip decision is a function of broadcast state (the merged
    # harvest) and world state, both identical across workers; diverging
    # skip lists mean the lockstep broke.
    skipped = [list(p["skipped_scan_weeks"]) for p in partials]
    if any(weeks != skipped[0] for weeks in skipped[1:]):
        raise ShardError(
            f"workers disagree on skipped scan weeks: {skipped}; the "
            "harvest broadcast cannot have reached every worker"
        )

    return {
        "snapshots": snapshots,
        "observations": observations,
        "unmeasured_daily_counts": unmeasured,
        "partial_days": partial_days,
        "skipped_scan_weeks": skipped[0],
        "partial_scan_weeks": sorted(
            [week, partial_scans[week]] for week in partial_scans
        ),
        "cloudflare_weekly": _merge_weekly(
            [p["cloudflare_weekly"] for p in partials]
        ),
        "incapsula_weekly": _merge_weekly(
            [p["incapsula_weekly"] for p in partials]
        ),
    }


@pure_function
def _merge_weekly(
    per_shard_weeks: Sequence[List[Dict[str, object]]],
) -> List[Dict[str, object]]:
    """Merge weekly pipeline reports: counts sum, hidden lists concat."""
    lengths = {len(weeks) for weeks in per_shard_weeks}
    if len(lengths) > 1:
        raise ShardError(
            f"workers ran different numbers of weekly sweeps: {sorted(lengths)}"
        )
    merged: List[Dict[str, object]] = []
    for position in range(len(per_shard_weeks[0])):
        reports = [weeks[position] for weeks in per_shard_weeks]
        identities = {(r["provider"], int(r["week"])) for r in reports}
        if len(identities) > 1:
            raise ShardError(
                f"weekly sweep position {position} mixes "
                f"{sorted(identities)} across shards"
            )
        merged.append(
            {
                "provider": reports[0]["provider"],
                "week": reports[0]["week"],
                "retrieved": sum(int(r["retrieved"]) for r in reports),
                "dropped_ip_filter": sum(
                    int(r["dropped_ip_filter"]) for r in reports
                ),
                "dropped_a_filter": sum(
                    int(r["dropped_a_filter"]) for r in reports
                ),
                "hidden": [entry for r in reports for entry in r["hidden"]],
            }
        )
    return merged


@pure_function
def _merge_exposure(
    per_shard_weeks: Sequence[List[List[str]]],
) -> List[List[str]]:
    """Merge exposure timelines: per-week sorted union of verified sets."""
    lengths = {len(weeks) for weeks in per_shard_weeks}
    if len(lengths) > 1:
        raise ShardError(
            f"workers recorded different numbers of exposure weeks: "
            f"{sorted(lengths)}"
        )
    return [
        sorted({site for weeks in per_shard_weeks for site in weeks[position]})
        for position in range(len(per_shard_weeks[0]))
    ]
