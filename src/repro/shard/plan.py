"""Shard topology: who measures which slice of the population.

A sharded study run is ``N`` workers over one deterministic world.
Every worker rebuilds the *full* world from ``(seed, population)`` —
world dynamics are global (the admin model steps every site each day
from one forked RNG stream) and measurement-independent, so replicas
stay in lockstep by construction — and measures only its contiguous
slice of the population, computed by
:func:`~repro.core.study.shard_bounds` with no coordination.

The :class:`ShardPlan` is the one value the coordinator and the workers
must agree on.  It is pure arithmetic over ``(population, shard_count)``
so it can be recomputed anywhere (a worker process, a resumed run, the
checkpoint manifest check) and always comes out the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.study import shard_bounds
from ..errors import ConfigurationError

__all__ = ["ShardPlan"]


@dataclass(frozen=True)
class ShardPlan:
    """The partition of ``population`` sites over ``shard_count`` workers."""

    population: int
    shard_count: int

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ConfigurationError(
                f"population must be >= 1, got {self.population}"
            )
        if self.shard_count < 1:
            raise ConfigurationError(
                f"shard_count must be >= 1, got {self.shard_count}"
            )
        if self.shard_count > self.population:
            raise ConfigurationError(
                f"cannot split {self.population} site(s) over "
                f"{self.shard_count} shard(s); every shard needs at "
                "least one site"
            )

    def bounds(self, shard_index: int) -> Tuple[int, int]:
        """Half-open ``[start, end)`` site-index slice of one shard."""
        return shard_bounds(self.population, shard_index, self.shard_count)

    def sizes(self) -> List[int]:
        """Slice sizes, in shard order (they differ by at most one)."""
        return [
            end - start
            for start, end in (
                self.bounds(index) for index in range(self.shard_count)
            )
        ]

    @property
    def shard_indices(self) -> range:
        """Iterate shard indices in canonical (merge) order."""
        return range(self.shard_count)
