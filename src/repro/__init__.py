"""repro — reproduction of *"Your Remnant Tells Secret: Residual
Resolution in DDoS Protection Services"* (Jin, Hao, Wang, Cotton —
DSN 2018).

The library has two halves:

* **substrates** (:mod:`repro.net`, :mod:`repro.dns`, :mod:`repro.web`,
  :mod:`repro.dps`, :mod:`repro.world`) — a deterministic simulated
  Internet: addressing and BGP data, a full DNS ecosystem, an HTTP
  layer, eleven DPS/CDN platforms, and a ranked website population with
  realistic usage dynamics;
* **the core** (:mod:`repro.core`) — the paper's measurement
  methodology: daily DNS collection, A/CNAME/NS matching, usage-
  behaviour inference, the hidden-record filter pipeline, the residual-
  resolution scanners, the attacker, and the countermeasures.

:mod:`repro.analysis` guards both halves: a static-analysis engine
(``repro lint``) that enforces the determinism invariants — no ambient
randomness, no wall-clock reads, no unordered-set iteration — with a
self-hosting tier-1 gate.

Quickstart::

    from repro import SimulatedInternet, WorldConfig, SixWeekStudy

    world = SimulatedInternet(WorldConfig(population_size=5000, seed=1))
    report = SixWeekStudy(world).run()
    print(report.cloudflare_totals)
"""

from .clock import SimulationClock
from .core import (
    DdosSimulator,
    ProviderMatcher,
    PurgeProbe,
    ResidualResolutionAttacker,
    SixWeekStudy,
    StudyConfig,
    StudyReport,
    render_full_report,
)
from .errors import ReproError
from .rng import SeededRng
from .world import SimulatedInternet, WorldConfig

__version__ = "1.0.0"

__all__ = [
    "SimulationClock",
    "DdosSimulator",
    "ProviderMatcher",
    "PurgeProbe",
    "ResidualResolutionAttacker",
    "SixWeekStudy",
    "StudyConfig",
    "StudyReport",
    "render_full_report",
    "ReproError",
    "SeededRng",
    "SimulatedInternet",
    "WorldConfig",
    "__version__",
]
