"""DNS messages: queries, responses, response codes.

Responses carry the standard three sections (answer, authority,
additional) so the recursive resolver can distinguish authoritative
answers from referrals, follow delegations using glue, and detect
CNAME chains — all behaviours the residual-resolution study depends on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..net.ipaddr import IPv4Address
from .name import DomainName
from .records import RecordType, ResourceRecord

__all__ = ["Rcode", "DnsQuery", "DnsResponse"]


class Rcode(enum.Enum):
    """Response codes used by the simulation."""

    NOERROR = "NOERROR"
    NXDOMAIN = "NXDOMAIN"
    SERVFAIL = "SERVFAIL"
    REFUSED = "REFUSED"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class DnsQuery:
    """A single-question DNS query."""

    qname: DomainName
    qtype: RecordType
    recursion_desired: bool = False

    def __str__(self) -> str:
        rd = "+rd" if self.recursion_desired else ""
        return f"? {self.qname} {self.qtype}{rd}"


@dataclass
class DnsResponse:
    """A DNS response with the three standard record sections."""

    query: DnsQuery
    rcode: Rcode = Rcode.NOERROR
    authoritative: bool = False
    answers: List[ResourceRecord] = field(default_factory=list)
    authority: List[ResourceRecord] = field(default_factory=list)
    additional: List[ResourceRecord] = field(default_factory=list)

    # -- classification ---------------------------------------------------

    @property
    def is_referral(self) -> bool:
        """A delegation: no answers, NS records in the authority section."""
        return (
            self.rcode is Rcode.NOERROR
            and not self.answers
            and any(r.rtype is RecordType.NS for r in self.authority)
        )

    @property
    def is_answer(self) -> bool:
        """True when the answer section is non-empty and rcode is NOERROR."""
        return self.rcode is Rcode.NOERROR and bool(self.answers)

    @property
    def is_empty_noerror(self) -> bool:
        """NOERROR with no answers and no referral (NODATA)."""
        return self.rcode is Rcode.NOERROR and not self.answers and not self.is_referral

    # -- extraction helpers ------------------------------------------------

    def answer_records(self, rtype: RecordType) -> List[ResourceRecord]:
        """Answer-section records of one type."""
        return [r for r in self.answers if r.rtype is rtype]

    def addresses(self) -> List[IPv4Address]:
        """All A-record addresses in the answer section."""
        return [r.address for r in self.answer_records(RecordType.A)]

    def cname_target(self) -> Optional[DomainName]:
        """Target of the first CNAME in the answer section, if any."""
        cnames = self.answer_records(RecordType.CNAME)
        return cnames[0].target if cnames else None

    def referral_nameservers(self) -> List[DomainName]:
        """Nameserver names from a referral's authority section."""
        return [r.target for r in self.authority if r.rtype is RecordType.NS]

    def glue_for(self, nameserver: DomainName) -> List[IPv4Address]:
        """Glue addresses for a referral nameserver, from the additional section."""
        return [
            r.address
            for r in self.additional
            if r.rtype is RecordType.A and r.name == nameserver
        ]

    @classmethod
    def refused(cls, query: DnsQuery) -> "DnsResponse":
        """Convenience constructor for a REFUSED response."""
        return cls(query=query, rcode=Rcode.REFUSED)

    @classmethod
    def nxdomain(cls, query: DnsQuery, authoritative: bool = True) -> "DnsResponse":
        """Convenience constructor for an NXDOMAIN response."""
        return cls(query=query, rcode=Rcode.NXDOMAIN, authoritative=authoritative)

    @classmethod
    def servfail(cls, query: DnsQuery) -> "DnsResponse":
        """Convenience constructor for a SERVFAIL response."""
        return cls(query=query, rcode=Rcode.SERVFAIL)
