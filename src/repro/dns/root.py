"""Root and TLD infrastructure — the registry of the simulated Internet.

:class:`DnsHierarchy` stands up the root zone and a set of TLD zones on
their own authoritative servers, wires them into the network fabric, and
exposes registrar-style operations: delegate an apex to a set of
nameservers (with glue when in-bailiwick), change that delegation, or
drop it.

Changing a delegation here is exactly what a website administrator does
when joining or leaving an NS-rerouting DPS provider — and, critically,
the change does *not* reach resolvers that still hold the old NS records
in cache, which is the precondition for residual resolution (§VI-A).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import ConfigurationError, ZoneError
from ..net.fabric import NetworkFabric
from ..net.geo import Region
from ..net.ipaddr import AddressAllocator, IPv4Address
from ..obs.metrics import MetricsRegistry
from ..clock import SECONDS_PER_DAY, SimulationClock
from .authoritative import AuthoritativeServer
from .name import DomainName, ROOT
from .records import RecordType
from .resolver import RecursiveResolver
from .zone import Zone

__all__ = ["DnsHierarchy", "DEFAULT_TLDS"]

#: TLDs stood up by default; enough variety for realistic populations.
DEFAULT_TLDS = ("com", "net", "org", "io", "co", "info", "biz")


class DnsHierarchy:
    """The root/TLD servers plus registrar operations."""

    def __init__(
        self,
        fabric: NetworkFabric,
        clock: SimulationClock,
        allocator: AddressAllocator,
        tlds: Iterable[str] = DEFAULT_TLDS,
    ) -> None:
        self._fabric = fabric
        self._clock = clock
        self._tld_zones: Dict[str, Zone] = {}

        # Root server.
        self._root_zone = Zone(ROOT, primary_ns="a.root-servers.net")
        self._root_ip = allocator.allocate_address()
        self._root_server = AuthoritativeServer("a.root-servers.net")
        self._root_server.host_zone(self._root_zone)
        fabric.register_dns(self._root_ip, self._root_server)

        # TLD servers, one per TLD, delegated from the root with glue.
        self._tld_servers: Dict[str, AuthoritativeServer] = {}
        for tld in tlds:
            tld_name = DomainName(tld)
            ns_host = tld_name.child("nic").child("ns")  # ns.nic.<tld>
            ip = allocator.allocate_address()
            zone = Zone(tld_name, primary_ns=ns_host)
            server = AuthoritativeServer(ns_host)
            server.host_zone(zone)
            fabric.register_dns(ip, server)
            self._tld_zones[tld] = zone
            self._tld_servers[tld] = server
            self._root_zone.delegate(tld_name, [ns_host], glue={str(ns_host): ip})
            # The TLD zone must also answer for its own nameserver's address.
            zone.set_a(ns_host, ip, ttl=SECONDS_PER_DAY)

    # -- plumbing accessors ------------------------------------------------------

    @property
    def root_hints(self) -> List[IPv4Address]:
        """Addresses a resolver should prime with."""
        return [self._root_ip]

    @property
    def tlds(self) -> List[str]:
        """TLDs the registry serves."""
        return sorted(self._tld_zones)

    def tld_zone(self, tld: str) -> Zone:
        """The zone object for a TLD (tests and provider wiring use this)."""
        try:
            return self._tld_zones[tld]
        except KeyError:
            raise ConfigurationError(f"TLD not served: {tld!r}") from None

    def make_resolver(
        self,
        region: Optional[Region] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> RecursiveResolver:
        """Build a recursive resolver primed with this hierarchy's roots.

        Pass a shared :class:`~repro.obs.metrics.MetricsRegistry` to
        aggregate query-plane counters across resolvers (``repro bench``
        does this); by default each resolver gets a private registry.
        """
        return RecursiveResolver(
            self._fabric, self._clock, self.root_hints, region=region,
            metrics=metrics,
        )

    # -- registrar operations ------------------------------------------------------

    def _zone_for_apex(self, apex: DomainName) -> Zone:
        if len(apex) != 2:
            raise ZoneError(f"can only delegate apex domains, got {apex}")
        tld = apex.tld
        if tld not in self._tld_zones:
            raise ConfigurationError(f"TLD not served: {tld!r}")
        return self._tld_zones[tld]

    def delegate_apex(
        self,
        apex: "DomainName | str",
        nameservers: Iterable["DomainName | str"],
        glue: Optional[Dict[str, "IPv4Address | str"]] = None,
    ) -> None:
        """Create or replace the delegation for an apex domain.

        ``glue`` entries outside the TLD's bailiwick are ignored, as a
        real registry would ignore them.
        """
        apex_name = DomainName(apex)
        zone = self._zone_for_apex(apex_name)
        in_bailiwick_glue = {
            host: ip
            for host, ip in (glue or {}).items()
            if DomainName(host).is_subdomain_of(zone.origin)
        }
        zone.delegate(apex_name, list(nameservers), glue=in_bailiwick_glue)

    def undelegate_apex(self, apex: "DomainName | str") -> None:
        """Drop an apex's delegation (the domain goes dark)."""
        apex_name = DomainName(apex)
        zone = self._zone_for_apex(apex_name)
        zone.undelegate(apex_name)

    def delegation_of(self, apex: "DomainName | str") -> List[DomainName]:
        """Current NS targets for an apex, per the registry."""
        apex_name = DomainName(apex)
        zone = self._zone_for_apex(apex_name)
        return [r.target for r in zone.lookup(apex_name, RecordType.NS)]
