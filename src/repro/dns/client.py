"""Stub DNS client: send one query straight at one server.

This is the attacker's and the scanner's tool of choice — the residual-
resolution probe does *not* use recursive resolution; it aims queries
directly at a previous DPS provider's nameservers (§III-B, §V-A-2).  The
client goes through the :class:`~repro.net.fabric.NetworkFabric`, so
anycast addresses land on the PoP matching the client's region.

Queries ride the fabric's fault-aware delivery path and retry transient
failures (timeouts and ``SERVFAIL``) under a
:class:`~repro.faults.retry.RetryPolicy`.  ``REFUSED`` is definitive —
that is the residual-resolution signal itself, never retried.  The
``queries_sent`` counter and the ``client.queries`` metric count logical
queries (first attempts); retries land in ``client.retries`` so recovery
overhead is visible separately.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..faults.retry import RetryPolicy, default_retry_rng
from ..net.fabric import NetworkFabric
from ..net.geo import Region
from ..net.ipaddr import IPv4Address
from ..obs.metrics import MetricsRegistry
from ..rng import SeededRng
from .message import DnsQuery, DnsResponse, Rcode
from .name import DomainName
from .records import RecordType

__all__ = ["DnsClient"]


class DnsClient:
    """Sends non-recursive queries from a fixed client region."""

    def __init__(
        self,
        fabric: NetworkFabric,
        region: Optional[Region] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_rng: Optional[SeededRng] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._fabric = fabric
        self.region = region
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self._retry_rng = retry_rng
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.queries_sent = 0
        #: Whether the most recent :meth:`query` was throttled or shed
        #: by provider-side defenses.  Deliberately per-query transient
        #: (reset on entry, never persisted): callers inspect it right
        #: after a query to rotate vantage points instead of hammering
        #: the same (server, region) path that just refused them.
        self.last_throttled = False

    def _jitter_rng(self) -> SeededRng:
        if self._retry_rng is None:
            label = self.region.name if self.region is not None else "global"
            self._retry_rng = default_retry_rng(f"dns-client-{label}")
        return self._retry_rng

    def state_dict(self) -> Dict[str, object]:
        """Persistent mutable state (counters, jitter position, metrics)."""
        return {
            "queries_sent": self.queries_sent,
            "retry_rng": (
                self._retry_rng.getstate() if self._retry_rng is not None else None
            ),
            "metrics": self.metrics.snapshot(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Reinstate state captured by :meth:`state_dict`."""
        self.queries_sent = int(state["queries_sent"])
        if state["retry_rng"] is None:
            self._retry_rng = None
        else:
            self._jitter_rng().setstate(state["retry_rng"])
        self.metrics.restore(state["metrics"])

    def query(
        self,
        server_ip: "IPv4Address | str",
        qname: "DomainName | str",
        qtype: RecordType = RecordType.A,
    ) -> Optional[DnsResponse]:
        """Query one server directly, retrying transient failures.

        Returns None when every attempt times out (dark address, packet
        loss, outage) — the simulated equivalent of a timeout — or the
        last response when the server keeps answering ``SERVFAIL``.

        A provider-defense ``throttled``/``shed`` delivery also returns
        None, with :attr:`last_throttled` raised: the verdict is
        deterministic per (day, server, name, region), so retrying the
        same path in-day is futile, and a shed REFUSED is synthetic —
        treating it as the residual-resolution signal would fabricate a
        record-purge observation.
        """
        self.queries_sent += 1
        self.metrics.incr("client.queries")
        self.last_throttled = False
        query = DnsQuery(DomainName(qname), qtype, recursion_desired=False)
        policy = self.retry_policy
        budget = policy.budget()
        response: Optional[DnsResponse] = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                budget.charge(policy.backoff_ms(attempt - 1, self._jitter_rng()))
                if budget.exhausted:
                    self.metrics.incr("client.budget_exhausted")
                    break
                self.metrics.incr("client.retries")
            delivery = self._fabric.deliver_dns(server_ip, query, self.region)
            budget.charge(delivery.latency_ms)
            if delivery.outcome in ("throttled", "shed"):
                self.last_throttled = True
                self.metrics.incr("client.throttled")
                return None
            response = delivery.response
            if response is not None and response.rcode is not Rcode.SERVFAIL:
                self.metrics.incr("client.answered")
                return response
            if delivery.outcome == "dark":
                # Nothing listens at this address — deterministic, so a
                # retry can never succeed.
                break
        if response is None:
            self.metrics.incr("client.unanswered")
        else:
            self.metrics.incr("client.servfail")
        return response
