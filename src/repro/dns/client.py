"""Stub DNS client: send one query straight at one server.

This is the attacker's and the scanner's tool of choice — the residual-
resolution probe does *not* use recursive resolution; it aims queries
directly at a previous DPS provider's nameservers (§III-B, §V-A-2).  The
client goes through the :class:`~repro.net.fabric.NetworkFabric`, so
anycast addresses land on the PoP matching the client's region.
"""

from __future__ import annotations

from typing import Optional

from ..net.fabric import NetworkFabric
from ..net.geo import Region
from ..net.ipaddr import IPv4Address
from .message import DnsQuery, DnsResponse
from .name import DomainName
from .records import RecordType

__all__ = ["DnsClient"]


class DnsClient:
    """Sends non-recursive queries from a fixed client region."""

    def __init__(self, fabric: NetworkFabric, region: Optional[Region] = None) -> None:
        self._fabric = fabric
        self.region = region
        self.queries_sent = 0

    def query(
        self,
        server_ip: "IPv4Address | str",
        qname: "DomainName | str",
        qtype: RecordType = RecordType.A,
    ) -> Optional[DnsResponse]:
        """Query one server directly.

        Returns None when nothing answers at that address — the simulated
        equivalent of a timeout.
        """
        self.queries_sent += 1
        server = self._fabric.dns_server_at(server_ip, self.region)
        if server is None:
            return None
        query = DnsQuery(DomainName(qname), qtype, recursion_desired=False)
        return server.handle_query(query, self.region)
