"""Recursive resolver with real iterative resolution.

The resolver walks the delegation tree from the root hints, follows
referrals using glue (or resolves out-of-bailiwick nameserver names),
chases CNAME chains, and caches what it learns.

Two behaviours matter specifically for the paper:

* **Cache purging** — the record collector flushes before each daily run
  (§IV-B-1) via :meth:`RecursiveResolver.purge_cache`.
* **Stale delegations** — cached NS records are reused until TTL expiry,
  so a resolver that cached a delegation to a DPS provider keeps sending
  queries there even after the registry delegation changed.  This is the
  root cause of residual resolution (§VI-A): providers keep answering
  those queries "for service continuity", and in doing so expose origins.

Transport goes through the fabric's fault-aware delivery path: each
server is tried under a :class:`~repro.faults.retry.RetryPolicy`
(timeouts and transient ``SERVFAIL`` retried with seeded-jitter
backoff), and a server that exhausts its budget triggers failover to the
next server of the zone — timeout failover, not just the REFUSED
failover real resolvers do on lame delegations.  Servers that give up
this way enter a :class:`~repro.faults.quarantine.NameserverQuarantine`
and are deprioritised until their scheduled re-probe.  A resolution
whose failure was caused by exhausted retries is marked ``gave_up`` so
the measurement layer can degrade to UNMEASURED instead of recording a
false negative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..clock import SimulationClock
from ..errors import ResolutionError
from ..faults.quarantine import NameserverQuarantine
from ..faults.retry import RetryPolicy, default_retry_rng
from ..net.fabric import NetworkFabric
from ..net.geo import Region
from ..net.ipaddr import IPv4Address
from ..obs.metrics import MetricsRegistry
from ..rng import SeededRng
from .cache import DnsCache
from .message import DnsQuery, DnsResponse, Rcode
from .name import DomainName
from .records import RecordType, ResourceRecord

__all__ = ["RecursiveResolver", "ResolutionResult"]

_MAX_CNAME_DEPTH = 8
_MAX_REFERRALS = 24
_MAX_NS_LOOKUP_DEPTH = 4
#: Negative-cache TTL when the authority section carries no SOA (RFC
#: 2308 caps negative TTLs; authorities here answer NXDOMAIN bare).
_DEFAULT_NEGATIVE_TTL = 300


@dataclass
class ResolutionResult:
    """Outcome of a full recursive resolution."""

    qname: DomainName
    qtype: RecordType
    rcode: Rcode
    records: List[ResourceRecord] = field(default_factory=list)
    cname_chain: List[Tuple[DomainName, DomainName]] = field(default_factory=list)
    #: True when the failure was caused by exhausted retries against
    #: unresponsive servers — the answer is *unknown*, not negative.
    #: Fault-free resolutions never set this.
    gave_up: bool = False

    @property
    def ok(self) -> bool:
        """True when resolution produced at least one record of qtype."""
        return self.rcode is Rcode.NOERROR and bool(self.records)

    @property
    def addresses(self) -> List[IPv4Address]:
        """A-record addresses in the final answer (qtype A only)."""
        return [r.address for r in self.records if r.rtype is RecordType.A]

    @property
    def final_name(self) -> DomainName:
        """The name the answer is for, after CNAME chasing."""
        return self.cname_chain[-1][1] if self.cname_chain else self.qname

    @property
    def cname_targets(self) -> List[DomainName]:
        """Every CNAME target encountered, in chase order."""
        return [target for _, target in self.cname_chain]


class _ZoneCutMemo:
    """Per-batch deepest-known-delegation index (:meth:`resolve_many`).

    Maps a zone-cut owner name to the server addresses its referral
    handed out during the current batch.  Sibling names under an
    already-walked zone start at that delegation directly — no repeated
    root/TLD descent, no dependence on the referral records' TTLs being
    long enough to survive in the TTL cache.
    """

    def __init__(self) -> None:
        self._servers: Dict[DomainName, List[IPv4Address]] = {}

    def record(self, cut: DomainName, servers: List[IPv4Address]) -> None:
        """Remember the servers a referral handed out for ``cut``."""
        if servers:
            self._servers[cut] = list(servers)

    def lookup(self, zone: DomainName) -> Optional[List[IPv4Address]]:
        """Servers recorded for exactly ``zone``, or None."""
        servers = self._servers.get(zone)
        return list(servers) if servers else None

    def __len__(self) -> int:
        return len(self._servers)


class RecursiveResolver:
    """An iterative-mode recursive resolver bound to one client region."""

    def __init__(
        self,
        fabric: NetworkFabric,
        clock: SimulationClock,
        root_hints: List["IPv4Address | str"],
        region: Optional[Region] = None,
        cache: Optional[DnsCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_rng: Optional[SeededRng] = None,
        quarantine: Optional[NameserverQuarantine] = None,
    ) -> None:
        if not root_hints:
            raise ResolutionError("resolver needs at least one root hint")
        self._fabric = fabric
        self._clock = clock
        self._root_hints = [IPv4Address(ip) for ip in root_hints]
        self.region = region
        #: Shared observability registry; an externally supplied cache
        #: keeps its own registry (it may be shared with other owners).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = cache if cache is not None else DnsCache(clock, self.metrics)
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self._retry_rng = retry_rng
        self.quarantine = (
            quarantine if quarantine is not None else NameserverQuarantine(clock)
        )
        self.queries_sent = 0
        self._batch_memo: Optional[_ZoneCutMemo] = None
        #: Bumped each time a server exhausts its retry budget; resolve()
        #: uses it to tell fault-induced SERVFAILs from genuine ones.
        self._transient_failures = 0

    # -- public API -----------------------------------------------------------

    def resolve(
        self, name: "DomainName | str", rtype: RecordType = RecordType.A
    ) -> ResolutionResult:
        """Fully resolve ``name``/``rtype``, chasing CNAMEs.

        CNAME links found *inside* an answer (a server returning
        ``CNAME + A`` in one response) are attributed to the chain before
        any ``rtype`` records are accepted, so ``final_name`` and
        ``cname_targets`` are correct for single-response chains too.

        A ``SERVFAIL`` result caused by servers that stopped responding
        (retry budget exhausted) is marked ``gave_up`` — the measurement
        layer treats it as *unknown* rather than a negative observation.
        """
        before = self._transient_failures
        result = self._resolve_chased(DomainName(name), rtype)
        if result.rcode is Rcode.SERVFAIL and self._transient_failures > before:
            result.gave_up = True
            self.metrics.incr("resolver.gave_up")
        return result

    def _resolve_chased(self, qname: DomainName, rtype: RecordType) -> ResolutionResult:
        self.metrics.incr("resolver.resolutions")
        chain: List[Tuple[DomainName, DomainName]] = []
        current = qname
        records: List[ResourceRecord] = []
        while True:
            if not any(r.name == current for r in records):
                records, rcode = self._lookup(current, rtype)
                if rcode is not Rcode.NOERROR:
                    return ResolutionResult(qname, rtype, rcode, [], chain)
            direct = [r for r in records if r.rtype is rtype and r.name == current]
            if direct:
                return ResolutionResult(qname, rtype, Rcode.NOERROR, direct, chain)
            cnames = [
                r
                for r in records
                if r.rtype is RecordType.CNAME and r.name == current
            ]
            if cnames and rtype is not RecordType.CNAME:
                target = cnames[0].target
                if any(seen == target for _, seen in chain) or target == current:
                    return ResolutionResult(qname, rtype, Rcode.SERVFAIL, [], chain)
                if len(chain) >= _MAX_CNAME_DEPTH:
                    return ResolutionResult(qname, rtype, Rcode.SERVFAIL, [], chain)
                chain.append((current, target))
                self.metrics.incr("resolver.cname_links")
                current = target
                continue
            # NODATA
            return ResolutionResult(qname, rtype, Rcode.NOERROR, [], chain)

    def resolve_many(
        self, queries: Iterable[Tuple["DomainName | str", RecordType]]
    ) -> List[ResolutionResult]:
        """Resolve a batch of (name, rtype) pairs, sharing discovery.

        Results align positionally with the input.  Answers are
        byte-identical to sequential :meth:`resolve` calls; the win is in
        *queries sent*: a per-batch zone-cut memo records every
        delegation walked, so sibling names under one zone go straight to
        the deepest known delegation instead of re-descending from the
        root — the saving the E8 benchmark counters prove out.
        """
        batch = [(DomainName(n), rt) for n, rt in queries]
        self.metrics.incr("resolver.batches")
        self.metrics.incr("resolver.batch_names", len(batch))
        fresh_memo = self._batch_memo is None
        if fresh_memo:
            self._batch_memo = _ZoneCutMemo()
        try:
            return [self.resolve(n, rt) for n, rt in batch]
        finally:
            if fresh_memo:
                self._batch_memo = None

    def purge_cache(self) -> None:
        """Flush the cache (the collector's pre-run hygiene step)."""
        self.cache.purge()

    # -- checkpoint support ---------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """The resolver's persistent mutable state, JSON-compatible.

        The TTL cache is deliberately absent: every study entry point
        (collector, pipeline, scanners) purges it before use, so it
        never carries across a checkpoint barrier.  What does carry is
        the query counters, the quarantine roster, the jitter-stream
        position (``None`` when no retry ever materialised it), and the
        metrics registry.
        """
        return {
            "queries_sent": self.queries_sent,
            "transient_failures": self._transient_failures,
            "retry_rng": (
                self._retry_rng.getstate() if self._retry_rng is not None else None
            ),
            "quarantine": self.quarantine.snapshot(),
            "metrics": self.metrics.snapshot(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Reinstate state captured by :meth:`state_dict`."""
        self.queries_sent = int(state["queries_sent"])
        self._transient_failures = int(state["transient_failures"])
        if state["retry_rng"] is None:
            self._retry_rng = None
        else:
            self._jitter_rng().setstate(state["retry_rng"])
        self.quarantine.restore(state["quarantine"])
        self.metrics.restore(state["metrics"])

    # -- single-name lookup ------------------------------------------------------

    def _lookup(
        self, name: DomainName, rtype: RecordType
    ) -> Tuple[List[ResourceRecord], Rcode]:
        """Records at exactly ``name`` (of rtype, or a CNAME), plus rcode."""
        cached = self.cache.get(name, rtype)
        if cached:
            return cached, Rcode.NOERROR
        if rtype is not RecordType.CNAME:
            cached_cname = self.cache.get(name, RecordType.CNAME)
            if cached_cname:
                return cached_cname, Rcode.NOERROR
        negative = self.cache.get_negative(name, rtype)
        if negative == "NXDOMAIN":
            return [], Rcode.NXDOMAIN
        if negative == "NODATA":
            return [], Rcode.NOERROR
        return self._iterate(name, rtype, depth=0)

    def _iterate(
        self, name: DomainName, rtype: RecordType, depth: int
    ) -> Tuple[List[ResourceRecord], Rcode]:
        servers = self._closest_known_servers(name, depth)
        for _ in range(_MAX_REFERRALS):
            response = self._query_any(servers, name, rtype)
            if response is None:
                return [], Rcode.SERVFAIL
            if response.rcode is Rcode.NXDOMAIN:
                self.cache.put_negative(
                    name, rtype, "NXDOMAIN", self._negative_ttl(response)
                )
                return [], Rcode.NXDOMAIN
            if response.rcode is not Rcode.NOERROR:
                return [], response.rcode
            if response.answers:
                self.cache.put_all(response.answers)
                return list(response.answers), Rcode.NOERROR
            if response.is_referral:
                self.cache.put_all(response.authority)
                self.cache.put_all(response.additional)
                next_servers = self._servers_from_referral(response, depth)
                if not next_servers:
                    return [], Rcode.SERVFAIL
                self.metrics.incr("resolver.referrals")
                if self._batch_memo is not None:
                    self._batch_memo.record(
                        self._referral_cut(response), next_servers
                    )
                servers = next_servers
                continue
            # NODATA
            self.cache.put_negative(
                name, rtype, "NODATA", self._negative_ttl(response)
            )
            return [], Rcode.NOERROR
        return [], Rcode.SERVFAIL

    @staticmethod
    def _negative_ttl(response: DnsResponse) -> int:
        for record in response.authority:
            if record.rtype is RecordType.SOA:
                return min(record.ttl, _DEFAULT_NEGATIVE_TTL)
        return _DEFAULT_NEGATIVE_TTL

    @staticmethod
    def _referral_cut(response: DnsResponse) -> DomainName:
        """Owner name of a referral's delegation (its NS records)."""
        for record in response.authority:
            if record.rtype is RecordType.NS:
                return record.name
        raise ResolutionError("referral without NS records")  # pragma: no cover

    # -- server selection -----------------------------------------------------------

    def _closest_known_servers(self, name: DomainName, depth: int) -> List[IPv4Address]:
        """Start from the deepest known delegation covering ``name``.

        During a :meth:`resolve_many` batch the zone-cut memo is
        consulted first at each depth: it holds the *server addresses* a
        referral handed out, so it short-circuits even when the cached NS
        set lacks usable glue.  Falls back to cached NS sets, then the
        root hints.  Reusing cached NS sets is what makes stale
        delegations live on until their (long) TTLs expire.
        """
        memo = self._batch_memo
        for ancestor in self._zones_towards_root(name):
            if memo is not None:
                memoised = memo.lookup(ancestor)
                if memoised:
                    self.metrics.incr("resolver.zonecut_hits")
                    return memoised
            ns_records = self.cache.get(ancestor, RecordType.NS) or []
            if not ns_records:
                continue
            addresses = self._nameserver_addresses(
                [r.target for r in ns_records], depth, allow_network=False
            )
            if addresses:
                return addresses
        return list(self._root_hints)

    @staticmethod
    def _zones_towards_root(name: DomainName) -> List[DomainName]:
        zones = [name]
        zones.extend(name.ancestors())
        return zones

    def _servers_from_referral(
        self, response: DnsResponse, depth: int
    ) -> List[IPv4Address]:
        glue: List[IPv4Address] = []
        ns_names = response.referral_nameservers()
        for ns_name in ns_names:
            glue.extend(response.glue_for(ns_name))
        if glue:
            return glue
        return self._nameserver_addresses(ns_names, depth, allow_network=True)

    def _nameserver_addresses(
        self, ns_names: List[DomainName], depth: int, allow_network: bool
    ) -> List[IPv4Address]:
        addresses: List[IPv4Address] = []
        for ns_name in ns_names:
            cached = self.cache.get(ns_name, RecordType.A) or []
            addresses.extend(r.address for r in cached)
        if addresses or not allow_network:
            return addresses
        if depth >= _MAX_NS_LOOKUP_DEPTH:
            return []
        for ns_name in ns_names:
            self.metrics.incr("resolver.ns_fallback_lookups")
            records, rcode = self._iterate(ns_name, RecordType.A, depth + 1)
            if rcode is Rcode.NOERROR:
                addresses.extend(
                    r.address for r in records if r.rtype is RecordType.A
                )
            if addresses:
                break
        return addresses

    # -- transport ----------------------------------------------------------------------

    def _jitter_rng(self) -> SeededRng:
        if self._retry_rng is None:
            label = self.region.name if self.region is not None else "global"
            self._retry_rng = default_retry_rng(f"resolver-{label}")
        return self._retry_rng

    def _query_any(
        self, servers: List[IPv4Address], name: DomainName, rtype: RecordType
    ) -> Optional[DnsResponse]:
        """Try servers in order; first one that answers usefully wins.

        REFUSED counts as unusable (try the next server), matching how
        real resolvers fail over when a lame delegation refuses them.
        A server that times out through its whole retry budget triggers
        the same failover; quarantined servers are deprioritised (tried
        only after every healthy server of the zone has failed).
        """
        refused = None
        preferred, deferred = self.quarantine.partition(servers)
        before = self._transient_failures
        for ip in preferred + deferred:
            response = self._query_server(ip, name, rtype)
            if response is None:
                continue
            if response.rcode is Rcode.REFUSED:
                refused = response
                continue
            if self._transient_failures > before:
                self.metrics.incr("resolver.failovers")
            return response
        return refused

    def _query_server(
        self, ip: IPv4Address, name: DomainName, rtype: RecordType
    ) -> Optional[DnsResponse]:
        """Query one server under the retry policy.

        Returns its first usable (non-SERVFAIL) response; None when the
        address is dark or the server stayed unresponsive through the
        whole retry budget (in which case it is quarantined and the
        transient-failure counter is bumped).  ``queries_sent`` counts
        logical queries — the first attempt to a non-dark address —
        exactly as the retry-free transport did; retries land in the
        ``resolver.retries`` metric.
        """
        policy = self.retry_policy
        budget = policy.budget()
        query = DnsQuery(name, rtype)
        saw_transient = False
        saw_throttle = False
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                budget.charge(policy.backoff_ms(attempt - 1, self._jitter_rng()))
                if budget.exhausted:
                    self.metrics.incr("resolver.budget_exhausted")
                    break
                self.metrics.incr("resolver.retries")
            delivery = self._fabric.deliver_dns(ip, query, self.region)
            budget.charge(delivery.latency_ms)
            if delivery.outcome == "dark":
                # Nothing listens there — a deterministic condition, not
                # a transient fault; never retried, never counted.
                return None
            if attempt == 1:
                self.queries_sent += 1
                self.metrics.incr("resolver.queries_sent")
            if delivery.outcome in ("throttled", "shed"):
                # Provider defenses, not server failure.  The verdict is
                # deterministic per (day, server, name) — retry-after
                # semantics — so same-day retries here are futile; honor
                # it and let _query_any fail over to another server.
                self.metrics.incr("resolver.throttled")
                saw_throttle = True
                break
            if delivery.outcome == "attack-outage":
                # The server is healthy; the flood drowning its packets
                # is world state with a pure per-(day, server, name)
                # verdict, so same-day retries are just as futile as a
                # throttle's.  No quarantine either: blaming the server
                # for attacker traffic would punish future days, and —
                # the verdict being keyed per qname — would couple shard
                # slices through the shared quarantine roster.
                self.metrics.incr("resolver.attack_outage")
                saw_throttle = True
                break
            response = delivery.response
            if response is not None and response.rcode is not Rcode.SERVFAIL:
                self.quarantine.release(ip)
                return response
            saw_transient = True
        if saw_transient:
            self.metrics.incr("resolver.unanswered")
            self.quarantine.quarantine(ip)
            self.metrics.incr("resolver.quarantined")
            self._transient_failures += 1
        elif saw_throttle:
            # A throttled or flooded server is healthy — quarantining it
            # would punish future days for one day's load, so only the
            # transient-failure marker is raised: if no other server
            # answers, the resolution degrades to ``gave_up`` (the
            # answer is unknown, never a fabricated negative).
            self.metrics.incr("resolver.unanswered")
            self._transient_failures += 1
        return None
