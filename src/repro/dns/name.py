"""Domain names.

:class:`DomainName` is the value type used across the DNS substrate and
the measurement core: case-insensitive, label-based, hashable.  Names are
always stored fully qualified (the root label is implicit; the trailing
dot is accepted on input and never printed).

The paper works almost exclusively with ``www`` portal hostnames of apex
domains (§IV-A), so helpers for apex/``www`` round-trips are provided.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..errors import NameError_
from ..rng import stable_hash

__all__ = ["DomainName", "ROOT"]

_MAX_NAME_LENGTH = 253
_MAX_LABEL_LENGTH = 63


class DomainName:
    """A fully-qualified, normalised DNS name."""

    __slots__ = ("_labels", "_hash")

    def __init__(self, name: "str | DomainName | Iterable[str]") -> None:
        if isinstance(name, DomainName):
            self._labels: Tuple[str, ...] = name._labels
            self._hash: int = name._hash
            return
        if isinstance(name, str):
            labels = _parse(name)
        else:
            labels = tuple(label.lower() for label in name)
            _validate(labels, repr(name))
        self._labels = labels
        self._hash = stable_hash(labels)

    @classmethod
    def _from_labels(cls, labels: Tuple[str, ...]) -> "DomainName":
        """Fast internal constructor for already-validated labels."""
        name = cls.__new__(cls)
        name._labels = labels
        name._hash = stable_hash(labels)
        return name

    # -- structure ------------------------------------------------------

    @property
    def labels(self) -> Tuple[str, ...]:
        """Labels from leftmost (host) to rightmost (TLD)."""
        return self._labels

    @property
    def is_root(self) -> bool:
        """True for the DNS root (empty name)."""
        return not self._labels

    @property
    def tld(self) -> str:
        """The top-level label (e.g. ``com``)."""
        if self.is_root:
            raise NameError_("root has no TLD")
        return self._labels[-1]

    def parent(self) -> "DomainName":
        """The name with its leftmost label removed."""
        if self.is_root:
            raise NameError_("root has no parent")
        return DomainName._from_labels(self._labels[1:])

    def child(self, label: str) -> "DomainName":
        """Prepend a label: ``DomainName('example.com').child('www')``."""
        return DomainName((label.lower(),) + self._labels)

    def is_subdomain_of(self, other: "DomainName | str") -> bool:
        """True when ``self`` is equal to or below ``other``."""
        parent = other if isinstance(other, DomainName) else DomainName(other)
        n = len(parent._labels)
        if n == 0:
            return True
        return self._labels[-n:] == parent._labels if len(self._labels) >= n else False

    def suffixes(self) -> "List[DomainName]":
        """Self and every ancestor, longest first (excluding the root)."""
        labels = self._labels
        return [
            DomainName._from_labels(labels[i:]) for i in range(len(labels))
        ]

    def ancestors(self) -> List["DomainName"]:
        """All proper ancestors from parent up to (excluding) the root."""
        result = []
        current = self
        while len(current._labels) > 1:
            current = current.parent()
            result.append(current)
        return result

    # -- apex / www helpers ----------------------------------------------

    @property
    def apex(self) -> "DomainName":
        """The registrable apex, approximated as the last two labels.

        The simulation uses single-label TLDs, so ``example.com`` is the
        apex of ``www.example.com`` and of itself.
        """
        if len(self._labels) < 2:
            raise NameError_(f"{self} has no apex")
        return DomainName._from_labels(self._labels[-2:])

    @property
    def is_apex(self) -> bool:
        """True when the name has exactly two labels."""
        return len(self._labels) == 2

    def www(self) -> "DomainName":
        """The ``www`` portal hostname of this name's apex."""
        return self.apex.child("www")

    # -- value semantics -------------------------------------------------

    def __str__(self) -> str:
        return ".".join(self._labels) if self._labels else "."

    def __repr__(self) -> str:
        return f"DomainName('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, str):
            try:
                other = DomainName(other)
            except NameError_:
                return False
        return isinstance(other, DomainName) and other._labels == self._labels

    def __lt__(self, other: "DomainName") -> bool:
        if not isinstance(other, DomainName):
            return NotImplemented
        return self._labels[::-1] < other._labels[::-1]

    def __hash__(self) -> int:
        # Precomputed via stable_hash: unlike salted builtin hash, the
        # value — and therefore DomainName set/dict layout — is
        # identical in every worker process.
        return self._hash

    def __len__(self) -> int:
        return len(self._labels)


def _parse(text: str) -> Tuple[str, ...]:
    stripped = text.strip().rstrip(".")
    if stripped == "":
        return ()
    labels = tuple(label.lower() for label in stripped.split("."))
    _validate(labels, repr(text))
    return labels


def _validate(labels: Tuple[str, ...], source: str) -> None:
    total = sum(len(label) + 1 for label in labels)
    if total > _MAX_NAME_LENGTH:
        raise NameError_(f"name too long: {source}")
    for label in labels:
        if not label:
            raise NameError_(f"empty label in {source}")
        if len(label) > _MAX_LABEL_LENGTH:
            raise NameError_(f"label too long in {source}")
        for ch in label:
            if not (ch.isalnum() or ch in "-_"):
                raise NameError_(f"invalid character {ch!r} in {source}")
        if label.startswith("-") or label.endswith("-"):
            raise NameError_(f"label cannot start/end with hyphen in {source}")


#: The DNS root name.
ROOT = DomainName("")
