"""Resource records.

A :class:`ResourceRecord` carries an owner name, a type, a TTL, and typed
data (``rdata``).  A/AAAA records hold :class:`~repro.net.ipaddr.IPv4Address`
values, CNAME/NS/MX hold :class:`~repro.dns.name.DomainName` targets, TXT
and SOA hold structured text.  The measurement pipeline relies on A, CNAME
and NS; MX/TXT/SOA exist because real zones have them and the origin-
exposure literature the paper builds on (Table I) uses MX records as an
exposure vector.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from ..clock import SECONDS_PER_DAY
from ..errors import ZoneError
from ..net.ipaddr import IPv4Address
from .name import DomainName

__all__ = [
    "RecordType",
    "ResourceRecord",
    "SoaData",
    "a_record",
    "cname_record",
    "ns_record",
    "mx_record",
    "txt_record",
    "soa_record",
    "DEFAULT_A_TTL",
    "DEFAULT_CNAME_TTL",
    "DEFAULT_NS_TTL",
]

#: Typical TTLs.  The paper notes NS TTLs are long relative to A TTLs
#: served by DPS providers (§VI-A, footnote 13) — that asymmetry is what
#: keeps stale delegations alive after a customer departs.
DEFAULT_A_TTL = 300
DEFAULT_CNAME_TTL = 300
DEFAULT_NS_TTL = SECONDS_PER_DAY


class RecordType(enum.Enum):
    """DNS record types modelled by the simulation."""

    A = "A"
    CNAME = "CNAME"
    NS = "NS"
    MX = "MX"
    TXT = "TXT"
    SOA = "SOA"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SoaData:
    """SOA rdata: primary nameserver, admin contact, serial."""

    primary_ns: DomainName
    admin: str
    serial: int


Rdata = Union[IPv4Address, DomainName, str, SoaData]


@dataclass(frozen=True)
class ResourceRecord:
    """One DNS resource record."""

    name: DomainName
    rtype: RecordType
    ttl: int
    rdata: Rdata

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise ZoneError(f"negative TTL on {self.name} {self.rtype}")
        expected = {
            RecordType.A: IPv4Address,
            RecordType.CNAME: DomainName,
            RecordType.NS: DomainName,
            RecordType.MX: DomainName,
            RecordType.TXT: str,
            RecordType.SOA: SoaData,
        }[self.rtype]
        if not isinstance(self.rdata, expected):
            raise ZoneError(
                f"{self.rtype} record for {self.name} needs "
                f"{expected.__name__} rdata, got {type(self.rdata).__name__}"
            )

    @property
    def address(self) -> IPv4Address:
        """The rdata as an address (A records only)."""
        if self.rtype is not RecordType.A:
            raise ZoneError(f"{self.rtype} record has no address")
        assert isinstance(self.rdata, IPv4Address)
        return self.rdata

    @property
    def target(self) -> DomainName:
        """The rdata as a name (CNAME/NS/MX records only)."""
        if self.rtype not in (RecordType.CNAME, RecordType.NS, RecordType.MX):
            raise ZoneError(f"{self.rtype} record has no target name")
        assert isinstance(self.rdata, DomainName)
        return self.rdata

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        """Copy of this record with a different TTL (used by caches).

        Bypasses re-validation — the source record is already valid and
        caches call this on every read.
        """
        clone = object.__new__(ResourceRecord)
        object.__setattr__(clone, "name", self.name)
        object.__setattr__(clone, "rtype", self.rtype)
        object.__setattr__(clone, "ttl", ttl)
        object.__setattr__(clone, "rdata", self.rdata)
        return clone

    def __str__(self) -> str:
        return f"{self.name} {self.ttl} IN {self.rtype} {self.rdata}"


# -- constructors ---------------------------------------------------------


def a_record(
    name: "DomainName | str", address: "IPv4Address | str", ttl: int = DEFAULT_A_TTL
) -> ResourceRecord:
    """Build an A record."""
    return ResourceRecord(DomainName(name), RecordType.A, ttl, IPv4Address(address))


def cname_record(
    name: "DomainName | str", target: "DomainName | str", ttl: int = DEFAULT_CNAME_TTL
) -> ResourceRecord:
    """Build a CNAME record."""
    return ResourceRecord(DomainName(name), RecordType.CNAME, ttl, DomainName(target))


def ns_record(
    name: "DomainName | str", target: "DomainName | str", ttl: int = DEFAULT_NS_TTL
) -> ResourceRecord:
    """Build an NS record."""
    return ResourceRecord(DomainName(name), RecordType.NS, ttl, DomainName(target))


def mx_record(
    name: "DomainName | str", target: "DomainName | str", ttl: int = DEFAULT_NS_TTL
) -> ResourceRecord:
    """Build an MX record (priority is irrelevant to the study and omitted)."""
    return ResourceRecord(DomainName(name), RecordType.MX, ttl, DomainName(target))


def txt_record(name: "DomainName | str", text: str, ttl: int = DEFAULT_A_TTL) -> ResourceRecord:
    """Build a TXT record."""
    return ResourceRecord(DomainName(name), RecordType.TXT, ttl, text)


def soa_record(
    name: "DomainName | str",
    primary_ns: "DomainName | str",
    admin: str = "hostmaster",
    serial: int = 1,
    ttl: int = DEFAULT_NS_TTL,
) -> ResourceRecord:
    """Build an SOA record."""
    return ResourceRecord(
        DomainName(name),
        RecordType.SOA,
        ttl,
        SoaData(DomainName(primary_ns), admin, serial),
    )
