"""RFC 1035 wire-format codec.

Encodes and decodes the simulation's DNS messages to and from the real
on-the-wire format — header, question, and the three record sections,
with standard name compression.  The simulation itself passes message
objects directly (no serialisation cost on the hot path); the codec
exists for interoperability and debugging: dumping a scanner's traffic
for inspection, feeding fixtures from captured bytes, and asserting that
the message model loses nothing a real packet carries.

Supported record types: A, NS, CNAME, SOA, MX, TXT.  Unknown types and
classes are rejected loudly rather than skipped.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from ..errors import DnsError
from ..net.ipaddr import IPv4Address
from .message import DnsQuery, DnsResponse, Rcode
from .name import DomainName
from .records import RecordType, ResourceRecord, SoaData

__all__ = [
    "encode_query",
    "decode_query",
    "encode_response",
    "decode_response",
]

_TYPE_CODES: Dict[RecordType, int] = {
    RecordType.A: 1,
    RecordType.NS: 2,
    RecordType.CNAME: 5,
    RecordType.SOA: 6,
    RecordType.MX: 15,
    RecordType.TXT: 16,
}
_CODE_TYPES = {code: rtype for rtype, code in _TYPE_CODES.items()}

_RCODE_CODES: Dict[Rcode, int] = {
    Rcode.NOERROR: 0,
    Rcode.SERVFAIL: 2,
    Rcode.NXDOMAIN: 3,
    Rcode.REFUSED: 5,
}
_CODE_RCODES = {code: rcode for rcode, code in _RCODE_CODES.items()}

_CLASS_IN = 1
_POINTER_MASK = 0xC0
_MAX_POINTER_HOPS = 64

# SOA timers we do not model; encoded as sane constants.
_SOA_REFRESH, _SOA_RETRY, _SOA_EXPIRE, _SOA_MINIMUM = 7200, 900, 1209600, 300
_MX_PREFERENCE = 10


# ---------------------------------------------------------------------------
# Name coding
# ---------------------------------------------------------------------------


class _Writer:
    """Accumulates bytes and the compression offsets of encoded names."""

    def __init__(self) -> None:
        self.buffer = bytearray()
        self._offsets: Dict[Tuple[str, ...], int] = {}

    def write(self, data: bytes) -> None:
        self.buffer.extend(data)

    def write_name(self, name: DomainName) -> None:
        labels = name.labels
        for index in range(len(labels)):
            suffix = labels[index:]
            known = self._offsets.get(suffix)
            if known is not None:
                self.buffer.extend(struct.pack("!H", 0xC000 | known))
                return
            if len(self.buffer) < 0x3FFF:
                self._offsets[suffix] = len(self.buffer)
            label = labels[index].encode("ascii")
            self.buffer.append(len(label))
            self.buffer.extend(label)
        self.buffer.append(0)


class _Reader:
    """Cursor over a packet with pointer-following name decoding."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise DnsError("truncated DNS message")
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def u16(self) -> int:
        return struct.unpack("!H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("!I", self.take(4))[0]

    def read_name(self) -> DomainName:
        labels: List[str] = []
        pos = self.pos
        jumped = False
        hops = 0
        while True:
            if pos >= len(self.data):
                raise DnsError("name runs past end of message")
            length = self.data[pos]
            if length & _POINTER_MASK == _POINTER_MASK:
                if pos + 1 >= len(self.data):
                    raise DnsError("truncated compression pointer")
                target = ((length & 0x3F) << 8) | self.data[pos + 1]
                if not jumped:
                    self.pos = pos + 2
                    jumped = True
                hops += 1
                if hops > _MAX_POINTER_HOPS:
                    raise DnsError("compression pointer loop")
                pos = target
                continue
            if length & _POINTER_MASK:
                raise DnsError(f"reserved label type: {length:#x}")
            if length == 0:
                if not jumped:
                    self.pos = pos + 1
                break
            label = self.data[pos + 1:pos + 1 + length]
            if len(label) != length:
                raise DnsError("truncated label")
            try:
                labels.append(label.decode("ascii"))
            except UnicodeDecodeError:
                raise DnsError(f"non-ASCII label bytes: {label!r}") from None
            pos += 1 + length
        return DomainName(labels) if labels else DomainName("")


# ---------------------------------------------------------------------------
# Record coding
# ---------------------------------------------------------------------------


def _encode_record(writer: _Writer, record: ResourceRecord) -> None:
    writer.write_name(record.name)
    writer.write(struct.pack("!HHI", _TYPE_CODES[record.rtype], _CLASS_IN, record.ttl))
    length_at = len(writer.buffer)
    writer.write(b"\x00\x00")  # rdlength placeholder
    start = len(writer.buffer)
    if record.rtype is RecordType.A:
        writer.write(struct.pack("!I", record.address.value))
    elif record.rtype in (RecordType.NS, RecordType.CNAME):
        writer.write_name(record.target)
    elif record.rtype is RecordType.MX:
        writer.write(struct.pack("!H", _MX_PREFERENCE))
        writer.write_name(record.target)
    elif record.rtype is RecordType.TXT:
        text = str(record.rdata).encode("utf-8")
        for offset in range(0, len(text), 255):
            chunk = text[offset:offset + 255]
            writer.write(bytes([len(chunk)]))
            writer.write(chunk)
        if not text:
            writer.write(b"\x00")
    elif record.rtype is RecordType.SOA:
        data = record.rdata
        assert isinstance(data, SoaData)
        writer.write_name(data.primary_ns)
        writer.write_name(DomainName(data.admin))
        writer.write(struct.pack(
            "!IIIII", data.serial, _SOA_REFRESH, _SOA_RETRY, _SOA_EXPIRE, _SOA_MINIMUM
        ))
    else:  # pragma: no cover - the type map is exhaustive
        raise DnsError(f"cannot encode record type {record.rtype}")
    rdlength = len(writer.buffer) - start
    writer.buffer[length_at:length_at + 2] = struct.pack("!H", rdlength)


def _decode_record(reader: _Reader) -> ResourceRecord:
    name = reader.read_name()
    type_code, class_code = reader.u16(), reader.u16()
    ttl = reader.u32()
    rdlength = reader.u16()
    end = reader.pos + rdlength
    rtype = _CODE_TYPES.get(type_code)
    if rtype is None:
        raise DnsError(f"unsupported record type code: {type_code}")
    if class_code != _CLASS_IN:
        raise DnsError(f"unsupported class: {class_code}")
    if rtype is RecordType.A:
        rdata: object = IPv4Address(reader.u32())
    elif rtype in (RecordType.NS, RecordType.CNAME):
        rdata = reader.read_name()
    elif rtype is RecordType.MX:
        reader.u16()  # preference (not modelled)
        rdata = reader.read_name()
    elif rtype is RecordType.TXT:
        parts = []
        while reader.pos < end:
            length = reader.take(1)[0]
            try:
                parts.append(reader.take(length).decode("utf-8"))
            except UnicodeDecodeError:
                raise DnsError("invalid UTF-8 in TXT rdata") from None
        rdata = "".join(parts)
    else:  # SOA
        primary = reader.read_name()
        admin = reader.read_name()
        serial = reader.u32()
        reader.take(16)  # refresh/retry/expire/minimum
        rdata = SoaData(primary, str(admin), serial)
    if reader.pos != end:
        # Compression pointers make rdata shorter than rdlength claims
        # only on malformed input.
        if reader.pos > end:
            raise DnsError("record rdata overruns its declared length")
        reader.pos = end
    return ResourceRecord(name, rtype, ttl, rdata)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------


def _flags(response: "DnsResponse | None", recursion_desired: bool) -> int:
    flags = 0
    if response is not None:
        flags |= 0x8000  # QR
        if response.authoritative:
            flags |= 0x0400  # AA
        flags |= _RCODE_CODES[response.rcode]
    if recursion_desired:
        flags |= 0x0100  # RD
    return flags


def encode_query(query: DnsQuery, txid: int = 0) -> bytes:
    """Serialise a query to wire format."""
    writer = _Writer()
    writer.write(struct.pack("!HHHHHH", txid,
                             _flags(None, query.recursion_desired), 1, 0, 0, 0))
    writer.write_name(query.qname)
    writer.write(struct.pack("!HH", _TYPE_CODES[query.qtype], _CLASS_IN))
    return bytes(writer.buffer)


def decode_query(data: bytes) -> Tuple[DnsQuery, int]:
    """Parse a wire-format query; returns (query, transaction id)."""
    reader = _Reader(data)
    txid, flags, qdcount, ancount, nscount, arcount = struct.unpack(
        "!HHHHHH", reader.take(12)
    )
    if flags & 0x8000:
        raise DnsError("message is a response, not a query")
    if qdcount != 1:
        raise DnsError(f"expected exactly one question, got {qdcount}")
    qname = reader.read_name()
    type_code, class_code = reader.u16(), reader.u16()
    qtype = _CODE_TYPES.get(type_code)
    if qtype is None or class_code != _CLASS_IN:
        raise DnsError(f"unsupported question type/class: {type_code}/{class_code}")
    return DnsQuery(qname, qtype, recursion_desired=bool(flags & 0x0100)), txid


def encode_response(response: DnsResponse, txid: int = 0) -> bytes:
    """Serialise a response (with its echoed question) to wire format."""
    writer = _Writer()
    writer.write(struct.pack(
        "!HHHHHH",
        txid,
        _flags(response, response.query.recursion_desired),
        1,
        len(response.answers),
        len(response.authority),
        len(response.additional),
    ))
    writer.write_name(response.query.qname)
    writer.write(struct.pack("!HH", _TYPE_CODES[response.query.qtype], _CLASS_IN))
    for section in (response.answers, response.authority, response.additional):
        for record in section:
            _encode_record(writer, record)
    return bytes(writer.buffer)


def decode_response(data: bytes) -> Tuple[DnsResponse, int]:
    """Parse a wire-format response; returns (response, transaction id)."""
    reader = _Reader(data)
    txid, flags, qdcount, ancount, nscount, arcount = struct.unpack(
        "!HHHHHH", reader.take(12)
    )
    if not flags & 0x8000:
        raise DnsError("message is a query, not a response")
    if qdcount != 1:
        raise DnsError(f"expected exactly one question, got {qdcount}")
    rcode = _CODE_RCODES.get(flags & 0x000F)
    if rcode is None:
        raise DnsError(f"unsupported rcode: {flags & 0x000F}")
    qname = reader.read_name()
    type_code, class_code = reader.u16(), reader.u16()
    qtype = _CODE_TYPES.get(type_code)
    if qtype is None or class_code != _CLASS_IN:
        raise DnsError(f"unsupported question type/class: {type_code}/{class_code}")
    query = DnsQuery(qname, qtype, recursion_desired=bool(flags & 0x0100))
    answers = [_decode_record(reader) for _ in range(ancount)]
    authority = [_decode_record(reader) for _ in range(nscount)]
    additional = [_decode_record(reader) for _ in range(arcount)]
    return (
        DnsResponse(
            query=query,
            rcode=rcode,
            authoritative=bool(flags & 0x0400),
            answers=answers,
            authority=authority,
            additional=additional,
        ),
        txid,
    )
