"""Simulated DNS ecosystem: names, records, zones, authoritative servers,
recursive resolution with TTL caching, and the root/TLD registry.

Residual resolution is a DNS-layer phenomenon; this package implements
the protocol mechanics faithfully enough that the vulnerability emerges
from configuration rather than being hard-coded.
"""

from .authoritative import AnswerPolicy, AuthoritativeServer
from .cache import DnsCache
from .client import DnsClient
from .message import DnsQuery, DnsResponse, Rcode
from .name import DomainName, ROOT
from .records import (
    DEFAULT_A_TTL,
    DEFAULT_CNAME_TTL,
    DEFAULT_NS_TTL,
    RecordType,
    ResourceRecord,
    SoaData,
    a_record,
    cname_record,
    mx_record,
    ns_record,
    soa_record,
    txt_record,
)
from .resolver import RecursiveResolver, ResolutionResult
from .root import DEFAULT_TLDS, DnsHierarchy
from .wire import decode_query, decode_response, encode_query, encode_response
from .zone import Zone
from .zonefile import zone_from_text, zone_to_text

__all__ = [
    "AnswerPolicy",
    "AuthoritativeServer",
    "DnsCache",
    "DnsClient",
    "DnsQuery",
    "DnsResponse",
    "Rcode",
    "DomainName",
    "ROOT",
    "DEFAULT_A_TTL",
    "DEFAULT_CNAME_TTL",
    "DEFAULT_NS_TTL",
    "RecordType",
    "ResourceRecord",
    "SoaData",
    "a_record",
    "cname_record",
    "mx_record",
    "ns_record",
    "soa_record",
    "txt_record",
    "RecursiveResolver",
    "ResolutionResult",
    "DEFAULT_TLDS",
    "DnsHierarchy",
    "decode_query",
    "decode_response",
    "encode_query",
    "encode_response",
    "Zone",
    "zone_from_text",
    "zone_to_text",
]
