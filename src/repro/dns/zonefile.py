"""Zone master-file (RFC 1035 §5) serialisation.

``zone_to_text`` renders a :class:`~repro.dns.zone.Zone` in the familiar
master-file format; ``zone_from_text`` parses one back.  Useful for test
fixtures, debugging dumps of provider state, and moving zones between
simulated hosting providers the way real operators move zone files.

Supported subset: ``$ORIGIN``, ``@``, relative and absolute names,
comments, and the record types the simulation models (SOA, NS, A,
CNAME, MX, TXT).  Directives like ``$TTL``/``$INCLUDE`` are not needed
(every record carries an explicit TTL) and are rejected explicitly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ZoneError
from .name import DomainName
from .records import (
    RecordType,
    ResourceRecord,
    SoaData,
    a_record,
    cname_record,
    mx_record,
    ns_record,
    txt_record,
)
from .zone import Zone

__all__ = ["zone_to_text", "zone_from_text"]

_MX_PREFERENCE = 10


def _render_name(name: DomainName, origin: DomainName) -> str:
    if name == origin:
        return "@"
    if name.is_subdomain_of(origin) and len(origin) > 0:
        relative = name.labels[: len(name) - len(origin)]
        return ".".join(relative)
    return f"{name}."


def zone_to_text(zone: Zone) -> str:
    """Render a zone in master-file format (SOA first, then the rest)."""
    origin = zone.origin
    lines = [f"$ORIGIN {origin}." if len(origin) else "$ORIGIN ."]
    soa = zone.soa.rdata
    assert isinstance(soa, SoaData)
    lines.append(
        f"@ {zone.soa.ttl} IN SOA {soa.primary_ns}. {soa.admin} {soa.serial}"
    )
    records = [r for r in zone.all_records() if r.rtype is not RecordType.SOA]
    records.sort(key=lambda r: (r.name, r.rtype.value, str(r.rdata)))
    for record in records:
        owner = _render_name(record.name, origin)
        if record.rtype is RecordType.A:
            rdata = str(record.address)
        elif record.rtype in (RecordType.NS, RecordType.CNAME):
            rdata = f"{record.target}."
        elif record.rtype is RecordType.MX:
            rdata = f"{_MX_PREFERENCE} {record.target}."
        else:  # TXT
            escaped = str(record.rdata).replace("\\", "\\\\").replace('"', '\\"')
            rdata = f'"{escaped}"'
        lines.append(f"{owner} {record.ttl} IN {record.rtype} {rdata}")
    return "\n".join(lines) + "\n"


def _strip_comment(line: str) -> str:
    in_quotes = False
    for index, char in enumerate(line):
        if char == '"' and (index == 0 or line[index - 1] != "\\"):
            in_quotes = not in_quotes
        elif char == ";" and not in_quotes:
            return line[:index]
    return line


def _parse_name(token: str, origin: DomainName) -> DomainName:
    if token == "@":
        return origin
    if token.endswith("."):
        return DomainName(token[:-1])
    relative = DomainName(token)
    return DomainName(relative.labels + origin.labels)


def _parse_txt(rest: str) -> str:
    stripped = rest.strip()
    if not (stripped.startswith('"') and stripped.endswith('"') and len(stripped) >= 2):
        raise ZoneError(f"TXT rdata must be quoted: {rest!r}")
    body = stripped[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


def zone_from_text(text: str) -> Zone:
    """Parse a master-file rendering back into a Zone."""
    origin: Optional[DomainName] = None
    zone: Optional[Zone] = None
    pending: List[Tuple[DomainName, int, str, str]] = []
    for raw_line in text.splitlines():
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if line.startswith("$"):
            directive, _, value = line.partition(" ")
            if directive != "$ORIGIN":
                raise ZoneError(f"unsupported directive: {directive}")
            value = value.strip()
            origin = DomainName(value[:-1] if value.endswith(".") else value)
            continue
        if origin is None:
            raise ZoneError("record before $ORIGIN")
        parts = line.split(None, 4)
        if len(parts) < 5:
            raise ZoneError(f"malformed record line: {raw_line!r}")
        owner_token, ttl_token, class_token, type_token, rest = parts
        if class_token.upper() != "IN":
            raise ZoneError(f"unsupported class: {class_token}")
        if not ttl_token.isdigit():
            raise ZoneError(f"bad TTL: {ttl_token}")
        owner = _parse_name(owner_token, origin)
        ttl = int(ttl_token)
        rtype = type_token.upper()
        if rtype == "SOA":
            soa_parts = rest.split()
            if len(soa_parts) < 3:
                raise ZoneError(f"malformed SOA: {rest!r}")
            primary = _parse_name(soa_parts[0], origin)
            zone = Zone(origin, primary_ns=primary)
            continue
        pending.append((owner, ttl, rtype, rest))
    if origin is None:
        raise ZoneError("zone file missing $ORIGIN")
    if zone is None:
        zone = Zone(origin)
    for owner, ttl, rtype, rest in pending:
        zone.add(_build_record(owner, ttl, rtype, rest, origin))
    return zone


def _build_record(
    owner: DomainName, ttl: int, rtype: str, rest: str, origin: DomainName
) -> ResourceRecord:
    if rtype == "A":
        return a_record(owner, rest.strip(), ttl=ttl)
    if rtype == "NS":
        return ns_record(owner, _parse_name(rest.strip(), origin), ttl=ttl)
    if rtype == "CNAME":
        return cname_record(owner, _parse_name(rest.strip(), origin), ttl=ttl)
    if rtype == "MX":
        parts = rest.split()
        if len(parts) != 2 or not parts[0].isdigit():
            raise ZoneError(f"malformed MX rdata: {rest!r}")
        return mx_record(owner, _parse_name(parts[1], origin), ttl=ttl)
    if rtype == "TXT":
        return txt_record(owner, _parse_txt(rest), ttl=ttl)
    raise ZoneError(f"unsupported record type: {rtype}")
