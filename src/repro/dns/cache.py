"""TTL-based DNS cache.

The recursive resolver caches positive answers, referral NS sets, and
glue.  Entries expire against the :class:`~repro.clock.SimulationClock`.
The cache exposes :meth:`purge` because the paper's record collector
flushes its resolver before every daily run so each day's snapshot is
independent (§IV-B-1) — and because *stale cached NS records* in resolver
caches are exactly what keeps traffic flowing to a previous DPS provider
(§VI-A).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..clock import SimulationClock
from ..obs.metrics import MetricsRegistry
from .name import DomainName
from .records import RecordType, ResourceRecord

__all__ = ["DnsCache"]

_Key = Tuple[DomainName, RecordType]


class DnsCache:  # repro: allow[REP063] -- purged before every study entry point; deliberately absent from the resolver's checkpoint state
    """Maps (name, type) to records with absolute expiry times.

    Also supports *negative* entries (RFC 2308): a cached NXDOMAIN or
    NODATA outcome, held for the zone's negative TTL, so repeated
    queries for missing names do not re-walk the hierarchy.

    Hit/miss/negative-hit accounting is kept both as plain attributes
    (``hits``/``misses``/``negative_hits``) and mirrored into an optional
    :class:`~repro.obs.metrics.MetricsRegistry` under ``cache.*`` so the
    query plane's behaviour shows up in ``repro bench`` snapshots.
    """

    def __init__(
        self, clock: SimulationClock, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        self._clock = clock
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._entries: Dict[_Key, List[Tuple[ResourceRecord, int]]] = {}
        #: (name, type) → (rcode marker, expiry).  The marker is the
        #: string name of the negative outcome ("NXDOMAIN"/"NODATA").
        self._negative: Dict[_Key, Tuple[str, int]] = {}
        self.hits = 0
        self.misses = 0
        self.negative_hits = 0

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry this cache reports into."""
        return self._metrics

    def put(self, record: ResourceRecord) -> None:
        """Cache one record until now + its TTL (TTL 0 is never cached)."""
        if record.ttl <= 0:
            return
        expiry = self._clock.now + record.ttl
        bucket = self._entries.setdefault((record.name, record.rtype), [])
        for i, (existing, _) in enumerate(bucket):
            if existing.rdata == record.rdata:
                bucket[i] = (record, expiry)
                return
        bucket.append((record, expiry))

    def put_all(self, records: "List[ResourceRecord]") -> None:
        """Cache several records."""
        for record in records:
            self.put(record)

    def get(
        self, name: "DomainName | str", rtype: RecordType
    ) -> Optional[List[ResourceRecord]]:
        """Live records for (name, type) with decremented TTLs, or None.

        Expired entries are evicted on read.  Counts a hit only when at
        least one record is still live.
        """
        key = (DomainName(name), rtype)
        bucket = self._entries.get(key)
        if not bucket:
            self._count_miss()
            return None
        now = self._clock.now
        live = [(rec, exp) for rec, exp in bucket if exp > now]
        if not live:
            del self._entries[key]
            self._count_miss()
            return None
        self._entries[key] = live
        self.hits += 1
        self._metrics.incr("cache.hits")
        return [rec.with_ttl(exp - now) for rec, exp in live]

    def _count_miss(self) -> None:
        self.misses += 1
        self._metrics.incr("cache.misses")

    def contains(self, name: "DomainName | str", rtype: RecordType) -> bool:
        """True when a live entry exists (does not touch hit counters)."""
        key = (DomainName(name), rtype)
        bucket = self._entries.get(key)
        if not bucket:
            return False
        now = self._clock.now
        return any(exp > now for _, exp in bucket)

    # -- negative caching (RFC 2308) -----------------------------------

    def put_negative(
        self, name: "DomainName | str", rtype: RecordType, outcome: str, ttl: int
    ) -> None:
        """Cache a negative outcome ("NXDOMAIN" or "NODATA") for ``ttl``
        seconds."""
        if outcome not in ("NXDOMAIN", "NODATA"):
            raise ValueError(f"unknown negative outcome: {outcome!r}")
        if ttl <= 0:
            return
        self._negative[(DomainName(name), rtype)] = (outcome, self._clock.now + ttl)

    def get_negative(
        self, name: "DomainName | str", rtype: RecordType
    ) -> Optional[str]:
        """A live negative outcome for (name, type), or None."""
        key = (DomainName(name), rtype)
        entry = self._negative.get(key)
        if entry is None:
            return None
        outcome, expiry = entry
        if expiry <= self._clock.now:
            del self._negative[key]
            return None
        self.negative_hits += 1
        self._metrics.incr("cache.negative_hits")
        return outcome

    def evict(self, name: "DomainName | str", rtype: Optional[RecordType] = None) -> int:
        """Drop entries for a name (one type, or every type); returns count."""
        target = DomainName(name)
        removed = 0
        if rtype is not None:
            removed += len(self._entries.pop((target, rtype), []))
            if self._negative.pop((target, rtype), None) is not None:
                removed += 1
        else:
            for key in [k for k in self._entries if k[0] == target]:
                removed += len(self._entries.pop(key))
            for key in [k for k in self._negative if k[0] == target]:
                del self._negative[key]
                removed += 1
        return removed

    def purge(self) -> None:
        """Empty the cache entirely (the collector's daily flush)."""
        self._entries.clear()
        self._negative.clear()
        self._metrics.incr("cache.purges")

    def __len__(self) -> int:
        """Number of live cached records."""
        now = self._clock.now
        return sum(
            1
            for bucket in self._entries.values()
            for _, exp in bucket
            if exp > now
        )
