"""DNS zones.

A :class:`Zone` is the authoritative data for a subtree of the namespace:
an origin name, a record store, and optional *delegations* (zone cuts)
that hand subtrees to child nameservers.  Glue records live beside the
delegation so referrals can carry nameserver addresses.

Zones are mutable — customers re-point apexes at DPS providers, providers
add and purge customer records — and every mutation bumps the SOA serial,
which the tests use to assert that stale data really is stale.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import ZoneError
from ..net.ipaddr import IPv4Address
from .name import DomainName
from .records import (
    DEFAULT_NS_TTL,
    RecordType,
    ResourceRecord,
    a_record,
    ns_record,
    soa_record,
)

__all__ = ["Zone"]

_Key = Tuple[DomainName, RecordType]


class Zone:
    """Authoritative data for one zone."""

    def __init__(
        self,
        origin: "DomainName | str",
        primary_ns: "DomainName | str" = "ns.invalid",
    ) -> None:
        self.origin = DomainName(origin)
        self._records: Dict[_Key, List[ResourceRecord]] = {}
        self._delegations: Set[DomainName] = set()
        #: Reference counts of records at or below each in-zone name,
        #: kept so existence checks are O(depth) instead of O(zone).
        self._name_index: Dict[DomainName, int] = {}
        self._soa = soa_record(self.origin, primary_ns)

    # -- bookkeeping -------------------------------------------------------

    @property
    def serial(self) -> int:
        """Current SOA serial; bumped on every mutation."""
        assert not isinstance(self._soa.rdata, (IPv4Address, DomainName, str))
        return self._soa.rdata.serial

    @property
    def soa(self) -> ResourceRecord:
        """The zone's SOA record."""
        return self._soa

    def _bump_serial(self) -> None:
        data = self._soa.rdata
        assert not isinstance(data, (IPv4Address, DomainName, str))
        self._soa = soa_record(
            self.origin, data.primary_ns, data.admin, data.serial + 1, self._soa.ttl
        )

    def _check_in_zone(self, name: DomainName) -> None:
        if not name.is_subdomain_of(self.origin):
            raise ZoneError(f"{name} is outside zone {self.origin}")

    def _index_add(self, name: DomainName, count: int = 1) -> None:
        origin_depth = len(self.origin)
        for suffix in name.suffixes():
            if len(suffix) < origin_depth:
                break
            self._name_index[suffix] = self._name_index.get(suffix, 0) + count

    def _index_remove(self, name: DomainName, count: int = 1) -> None:
        origin_depth = len(self.origin)
        for suffix in name.suffixes():
            if len(suffix) < origin_depth:
                break
            remaining = self._name_index.get(suffix, 0) - count
            if remaining > 0:
                self._name_index[suffix] = remaining
            else:
                self._name_index.pop(suffix, None)

    # -- mutation ----------------------------------------------------------

    def add(self, record: ResourceRecord) -> None:
        """Add a record (duplicates by (name, type, rdata) are rejected)."""
        self._check_in_zone(record.name)
        if record.rtype is RecordType.SOA:
            raise ZoneError("set the SOA via the constructor, not add()")
        if record.rtype is RecordType.CNAME:
            self._check_cname_constraints(record.name)
        bucket = self._records.setdefault((record.name, record.rtype), [])
        if any(existing.rdata == record.rdata for existing in bucket):
            raise ZoneError(f"duplicate record: {record}")
        bucket.append(record)
        self._index_add(record.name)
        if record.rtype is RecordType.NS and record.name != self.origin:
            self._delegations.add(record.name)
        self._bump_serial()

    def _check_cname_constraints(self, name: DomainName) -> None:
        # A CNAME cannot coexist with other data at the same name.
        for rtype in RecordType:
            if self._records.get((name, rtype)):
                raise ZoneError(f"CNAME at {name} conflicts with existing data")

    def replace(self, record: ResourceRecord) -> None:
        """Replace all records of (name, type) with a single record."""
        self.remove_all(record.name, record.rtype)
        self.add(record)

    def remove_all(self, name: "DomainName | str", rtype: RecordType) -> int:
        """Remove every record of (name, type); returns how many vanished."""
        key = (DomainName(name), rtype)
        bucket = self._records.pop(key, [])
        if rtype is RecordType.NS:
            self._delegations.discard(key[0])
        if bucket:
            self._index_remove(key[0], len(bucket))
            self._bump_serial()
        return len(bucket)

    def remove_name(self, name: "DomainName | str") -> int:
        """Remove every record at a name, all types."""
        target = DomainName(name)
        removed = 0
        for rtype in RecordType:
            bucket = self._records.pop((target, rtype), None)
            if bucket:
                removed += len(bucket)
                self._index_remove(target, len(bucket))
                if rtype is RecordType.NS:
                    self._delegations.discard(target)
        if removed:
            self._bump_serial()
        return removed

    def clear(self) -> None:
        """Remove every record in the zone."""
        self._records.clear()
        self._delegations.clear()
        self._name_index.clear()
        self._bump_serial()

    # -- convenience mutators -----------------------------------------------

    def set_a(
        self, name: "DomainName | str", address: "IPv4Address | str", ttl: int = 300
    ) -> ResourceRecord:
        """Point ``name`` at an address, replacing previous A records."""
        record = a_record(name, address, ttl)
        self.replace(record)
        return record

    def delegate(
        self,
        child: "DomainName | str",
        nameservers: Iterable["DomainName | str"],
        glue: Optional[Dict[str, "IPv4Address | str"]] = None,
        ttl: int = DEFAULT_NS_TTL,
    ) -> None:
        """Create (or replace) a zone cut delegating ``child``.

        ``glue`` maps in-bailiwick nameserver hostnames to addresses.
        """
        child_name = DomainName(child)
        self._check_in_zone(child_name)
        if child_name == self.origin:
            raise ZoneError("cannot delegate the zone origin")
        self.remove_all(child_name, RecordType.NS)
        ns_names = [DomainName(n) for n in nameservers]
        if not ns_names:
            raise ZoneError(f"delegation of {child_name} needs nameservers")
        for ns_name in ns_names:
            self.add(ns_record(child_name, ns_name, ttl))
        for host, address in (glue or {}).items():
            glue_name = DomainName(host)
            self._check_in_zone(glue_name)
            existing = {r.rdata for r in self.lookup(glue_name, RecordType.A)}
            if IPv4Address(address) not in existing:
                self.add(a_record(glue_name, address, ttl))

    def undelegate(self, child: "DomainName | str") -> None:
        """Remove a zone cut (NS records only; glue stays until removed)."""
        self.remove_all(DomainName(child), RecordType.NS)

    # -- lookup --------------------------------------------------------------

    def lookup(self, name: "DomainName | str", rtype: RecordType) -> List[ResourceRecord]:
        """Exact-match lookup; empty list when absent."""
        if rtype is RecordType.SOA and DomainName(name) == self.origin:
            return [self._soa]
        return list(self._records.get((DomainName(name), rtype), []))

    def records_at(self, name: "DomainName | str") -> List[ResourceRecord]:
        """Every record at a name, all types."""
        target = DomainName(name)
        found: List[ResourceRecord] = []
        for (record_name, _), bucket in self._records.items():
            if record_name == target:
                found.extend(bucket)
        return found

    def name_exists(self, name: "DomainName | str") -> bool:
        """True when any record exists at or below the name (ENT-aware)."""
        target = DomainName(name)
        if target == self.origin:
            return True
        return self._name_index.get(target, 0) > 0

    def delegation_covering(self, name: "DomainName | str") -> Optional[DomainName]:
        """The deepest zone cut at-or-above ``name``, if one exists."""
        if not self._delegations:
            return None
        origin_depth = len(self.origin)
        for suffix in DomainName(name).suffixes():
            if len(suffix) <= origin_depth:
                return None
            if suffix in self._delegations:
                return suffix
        return None

    def all_records(self) -> List[ResourceRecord]:
        """Every record in the zone (SOA included), for dumps and tests."""
        records = [self._soa]
        for bucket in self._records.values():
            records.extend(bucket)
        return records

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._records.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Zone({self.origin}, {len(self)} records)"
