"""Authoritative nameservers.

An :class:`AuthoritativeServer` hosts zones and answers queries with
standard semantics: authoritative answers, referrals at zone cuts (with
glue), CNAME answers for the resolver to chase, NODATA, NXDOMAIN, and
REFUSED for names it has no authority over.

A pluggable :class:`AnswerPolicy` lets platform code intervene *before*
normal lookup.  DPS providers use this hook to implement the behaviours
the paper studies: Cloudflare/Incapsula keep answering for terminated
customers (residual resolution), while well-behaved providers refuse.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..dns.name import DomainName
from ..dns.records import RecordType, ResourceRecord
from ..errors import ZoneError
from .message import DnsQuery, DnsResponse, Rcode
from .zone import Zone

__all__ = ["AnswerPolicy", "AuthoritativeServer"]


class AnswerPolicy:
    """Hook invoked before zone lookup; default does nothing.

    ``intercept`` may return a complete :class:`DnsResponse` to short-
    circuit normal processing, or None to let the zone answer.
    """

    def intercept(
        self, server: "AuthoritativeServer", query: DnsQuery
    ) -> Optional[DnsResponse]:
        """Return a response to short-circuit, or None to continue."""
        return None


class AuthoritativeServer:
    """A nameserver holding one or more zones.

    Parameters
    ----------
    name:
        The server's own hostname (e.g. ``kate.ns.cloudflare.example``).
    policy:
        Optional :class:`AnswerPolicy` consulted before zone lookup.
    """

    def __init__(self, name: "DomainName | str", policy: Optional[AnswerPolicy] = None) -> None:
        self.name = DomainName(name)
        self.policy = policy or AnswerPolicy()
        self._zones: Dict[DomainName, Zone] = {}
        self.queries_served = 0

    # -- zone management -----------------------------------------------------

    def host_zone(self, zone: Zone) -> Zone:
        """Start serving a zone; replaces any zone with the same origin."""
        self._zones[zone.origin] = zone
        return zone

    def drop_zone(self, origin: "DomainName | str") -> Optional[Zone]:
        """Stop serving a zone; returns it, or None if not hosted."""
        return self._zones.pop(DomainName(origin), None)

    def zone_for(self, name: "DomainName | str") -> Optional[Zone]:
        """The deepest hosted zone whose origin covers ``name``."""
        for suffix in DomainName(name).suffixes():
            zone = self._zones.get(suffix)
            if zone is not None:
                return zone
        # The root zone (empty origin) covers everything, but is not a
        # suffix produced above.
        return self._zones.get(DomainName(""))

    @property
    def zones(self) -> List[Zone]:
        """All hosted zones."""
        return list(self._zones.values())

    # -- query processing ------------------------------------------------------

    def handle_query(self, query: DnsQuery, client_region: object = None) -> DnsResponse:
        """Answer one query.  ``client_region`` is accepted for fabric
        compatibility; plain authoritative servers ignore it."""
        self.queries_served += 1
        intercepted = self.policy.intercept(self, query)
        if intercepted is not None:
            return intercepted
        zone = self.zone_for(query.qname)
        if zone is None:
            return DnsResponse.refused(query)
        return self._answer_from_zone(zone, query)

    def _answer_from_zone(self, zone: Zone, query: DnsQuery) -> DnsResponse:
        # 1. Referral if the name sits under a zone cut.
        cut = zone.delegation_covering(query.qname)
        if cut is not None:
            return self._referral(zone, query, cut)
        # 2. CNAME at the name (unless CNAME itself was asked for).
        if query.qtype is not RecordType.CNAME:
            cnames = zone.lookup(query.qname, RecordType.CNAME)
            if cnames:
                return DnsResponse(
                    query=query, authoritative=True, answers=list(cnames)
                )
        # 3. Exact match.
        matches = zone.lookup(query.qname, query.qtype)
        if matches:
            return DnsResponse(query=query, authoritative=True, answers=list(matches))
        # 4. NODATA vs NXDOMAIN.
        if zone.name_exists(query.qname):
            return DnsResponse(
                query=query, authoritative=True, authority=[zone.soa]
            )
        return DnsResponse.nxdomain(query)

    def _referral(self, zone: Zone, query: DnsQuery, cut: DomainName) -> DnsResponse:
        ns_records = zone.lookup(cut, RecordType.NS)
        if not ns_records:
            raise ZoneError(f"zone {zone.origin} lost NS records at cut {cut}")
        additional: List[ResourceRecord] = []
        for record in ns_records:
            target = record.target
            if target.is_subdomain_of(zone.origin):
                additional.extend(zone.lookup(target, RecordType.A))
        return DnsResponse(
            query=query,
            rcode=Rcode.NOERROR,
            authoritative=False,
            authority=list(ns_records),
            additional=additional,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AuthoritativeServer({self.name}, zones={len(self._zones)})"
