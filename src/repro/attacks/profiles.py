"""Named attack profiles: reproducible DDoS campaign recipes.

An :class:`AttackProfile` is the attack-plane analogue of
:class:`repro.traffic.profiles.TrafficProfile`: given a built world it
constructs an :class:`~repro.attacks.plane.AttackPlane` whose schedule
is generated from an RNG forked off the world's root stream — the fork
label is position-independent, so a resumed or sharded process rebuilds
the byte-identical schedule without serialising it.  ``build`` is
called at install time, after warm-up, so event start days are offsets
from the install day and a checkpointed study replays them identically.

Wave-rate calibration (see docs/ROBUSTNESS.md for the table):

* ``emergency_join_rate`` / ``splash_join_rate`` — an attacked
  unprotected site races to a DPS; co-located /24 neighbours follow at
  a lower rate ("The Web is Still Small": one flood splashes many
  origins).
* ``leave_rate`` / ``switch_rate`` — per customer per attack-day at an
  *overwhelmed* provider, an order of magnitude over the baseline
  daily churn, following the post-attack behaviour spikes measured in
  "No Time for Downtime" (PAPERS.md).

``quiet`` is the *equivalence* profile: an installed plane with an
empty schedule must leave every study artifact byte-identical to an
attack-free run — the chaos harness proves it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..obs.metrics import MetricsRegistry
from .events import AttackEvent, AttackKind, TargetKind, block_of
from .plane import AttackPlane

__all__ = [
    "AttackProfile",
    "ATTACK_PROFILES",
    "attack_profile",
    "normalize_attack_profile",
]


@dataclass(frozen=True)
class AttackProfile:
    """A named, reproducible DDoS campaign recipe."""

    name: str
    description: str
    #: Whether a study under this profile must equal an attack-free run.
    expect_equivalence: bool
    #: Strike counts per target kind across the campaign.
    site_strikes: int = 0
    block_strikes: int = 0
    provider_strikes: int = 0
    #: Provider strikes sized past the victim's scrubbing capacity —
    #: the ones that trigger the LEAVE/SWITCH churn wave.
    overwhelming_strikes: int = 0
    #: Schedule shape: first strike lands this many days after install,
    #: subsequent strikes follow every ``strike_spacing_days`` (plus a
    #: seeded jitter draw) and run for a drawn duration.
    first_strike_offset: int = 1
    strike_spacing_days: int = 5
    spacing_jitter_days: int = 2
    duration_days: Tuple[int, int] = (2, 3)
    #: Flood magnitudes; provider strikes are sized relative to the
    #: victim's aggregate scrubbing capacity at build time.
    site_magnitude_gbps: float = 40.0
    block_magnitude_gbps: float = 120.0
    provider_capacity_fraction: float = 0.35
    overwhelming_capacity_fraction: float = 1.6
    #: Wave calibration (per subject per attack-day; see module doc).
    emergency_join_rate: float = 0.45
    splash_join_rate: float = 0.12
    leave_rate: float = 0.04
    switch_rate: float = 0.08
    #: Transient fault window on attacked infrastructure.
    ns_outage_probability: float = 0.65
    origin_outage_probability: float = 0.80
    attack_latency_ms: int = 400
    #: Query-surge coupling into the traffic plane.
    surge_per_gbps: float = 0.0008
    max_surge: float = 4.0

    def build(
        self, world: object, metrics: Optional[MetricsRegistry] = None
    ) -> AttackPlane:
        """Materialise the plane against a built world, at install time.

        Schedule draws come from a label-forked stream in a fixed
        order, so every replica that installs this profile at the same
        world day regenerates the identical schedule.
        """
        rng = world.rng.fork(f"attack-plane-{self.name}")
        install_day = world.clock.day
        unprotected = [
            site
            for site in world.population
            if site.alive and site.provider is None and not site.multicdn
        ]
        alive = [site for site in world.population if site.alive]
        shares = {spec.name: spec.market_share for spec in world.specs}
        share_names = sorted(shares)
        share_weights = [shares[name] for name in share_names]
        kinds = (
            ["site"] * self.site_strikes
            + ["block"] * self.block_strikes
            + ["provider"] * self.provider_strikes
            + ["overwhelming"] * self.overwhelming_strikes
        )
        events: List[AttackEvent] = []
        day = install_day + self.first_strike_offset
        low, high = self.duration_days
        for event_id, strike in enumerate(kinds):
            duration = rng.randint(low, high)
            if strike == "site":
                if not unprotected:
                    continue
                victim = unprotected[rng.randint(0, len(unprotected) - 1)]
                events.append(
                    AttackEvent(
                        event_id,
                        AttackKind.VOLUMETRIC,
                        TargetKind.SITE_ORIGIN,
                        str(victim.www),
                        day,
                        duration,
                        self.site_magnitude_gbps,
                    )
                )
            elif strike == "block":
                if not alive:
                    continue
                anchor = alive[rng.randint(0, len(alive) - 1)]
                events.append(
                    AttackEvent(
                        event_id,
                        AttackKind.AMPLIFICATION,
                        TargetKind.HOSTING_BLOCK,
                        block_of(anchor.origin.ip),
                        day,
                        duration,
                        self.block_magnitude_gbps,
                    )
                )
            else:
                name = rng.weighted_choice(share_names, share_weights)
                provider = world.providers[name]
                capacity = provider.build.scrub_capacity_per_pop_gbps * len(
                    provider.pops
                )
                fraction = (
                    self.overwhelming_capacity_fraction
                    if strike == "overwhelming"
                    else self.provider_capacity_fraction
                )
                magnitude = round(capacity * fraction, 3)
                events.append(
                    AttackEvent(
                        event_id,
                        AttackKind.AMPLIFICATION,
                        TargetKind.PROVIDER_FLEET,
                        name,
                        day,
                        duration,
                        magnitude,
                        overwhelms=magnitude > capacity,
                    )
                )
            day += self.strike_spacing_days + (
                rng.randint(0, self.spacing_jitter_days)
                if self.spacing_jitter_days > 0
                else 0
            )
        return AttackPlane(
            profile=self,
            world=world,
            events=events,
            metrics=metrics if metrics is not None else MetricsRegistry(),
        )


ATTACK_PROFILES: Dict[str, AttackProfile] = {
    p.name: p
    for p in [
        AttackProfile(
            "quiet",
            "an installed plane with an empty schedule: no events, no "
            "waves, no surges (equivalence guaranteed)",
            expect_equivalence=True,
        ),
        AttackProfile(
            "skirmish",
            "two short volumetric floods on unprotected origins and one "
            "absorbed provider flood: JOIN waves only, defenses hold",
            expect_equivalence=False,
            site_strikes=2,
            provider_strikes=1,
            strike_spacing_days=4,
            duration_days=(1, 2),
        ),
        AttackProfile(
            "campaign",
            "a six-week campaign: origin floods with co-location "
            "splash, a hosting-block amplification, an absorbed and an "
            "overwhelming provider attack driving post-attack churn",
            expect_equivalence=False,
            site_strikes=3,
            block_strikes=1,
            provider_strikes=1,
            overwhelming_strikes=1,
            first_strike_offset=1,
            strike_spacing_days=5,
        ),
        AttackProfile(
            "blitz",
            "sustained heavy bombardment: repeated overwhelming "
            "provider attacks and block floods, churn waves every week",
            expect_equivalence=False,
            site_strikes=4,
            block_strikes=2,
            provider_strikes=2,
            overwhelming_strikes=2,
            first_strike_offset=1,
            strike_spacing_days=2,
            spacing_jitter_days=1,
            duration_days=(2, 4),
            leave_rate=0.06,
            switch_rate=0.10,
        ),
    ]
}


def attack_profile(name: str) -> AttackProfile:
    """Look up a profile by name."""
    try:
        return ATTACK_PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown attack profile {name!r}; "
            f"known: {', '.join(sorted(ATTACK_PROFILES))} (or 'none')"
        ) from None


def normalize_attack_profile(name: Optional[str]) -> Optional[str]:
    """Map CLI/manifest spellings to a canonical profile name or None.

    ``None`` and ``"none"`` both mean *no attacks*; anything else must
    name a registered profile.
    """
    if name is None or name == "none":
        return None
    return attack_profile(name).name
