"""The attack plane: scheduled DDoS events driving world dynamics.

Like the traffic plane, the attack plane straddles the shard boundary
and is split along the same two consistency rules:

* **World side** (``drive_day``): the active-event scan, the emergent
  behaviour waves (emergency JOINs, post-attack LEAVE/SWITCH churn),
  the attacked-address sets and the traffic surge factor.  Driven from
  the world engine's day step, which every replica — shard workers,
  checkpoint replays, the coordinator's merge replay — executes
  identically, so this state is *replicated* and shard merging checks
  it for byte agreement (never summed).
* **Measurement side** (``admit_dns`` / ``admit_http``): the transient
  fault window an active flood opens on the victim's infrastructure.
  Verdicts are pure hashes with no mutable state on the admission
  path: DNS fates are drawn per (day, event, region) — a flood either
  exceeds the fleet's absorption capacity that day or it doesn't, so
  the whole fleet shares one fate and the verdict cannot depend on
  *which* fleet addresses a resolver's warm-or-cold cache leads it to
  try — and HTTP fates per (day, address, region), giving /24 splash
  its per-origin texture.  Both are order-free across shard workers.  A dropped
  delivery surfaces as ``attack-outage``: a deterministic timeout the
  resolver fails over from — like a throttle, and like a throttle it
  never quarantines the flooded (but healthy) server — ultimately
  degrading to UNMEASURED, never a fabricated transition.

Wave decisions never touch the admin RNG stream: they are the pure
verdict functions of :mod:`repro.attacks.events`, so installing the
plane perturbs no baseline world dynamics and the same (seed, day,
event) always produces the same wave at any shard count.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, TYPE_CHECKING

from ..dps.catalog import normalised_market_shares
from ..errors import CheckpointCorruptError
from ..markers import pure_function
from ..net.geo import Region
from ..net.ipaddr import IPv4Address
from ..obs.metrics import MetricsRegistry
from ..world.admin import BehaviorEvent, BehaviorKind
from ..world.website import Website
from .events import (
    AttackEvent,
    TargetKind,
    block_of,
    choose_wave_enrollment,
    hash_fraction,
    wave_triggered,
    weighted_pick,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..world.internet import SimulatedInternet
    from .profiles import AttackProfile

__all__ = ["AttackVerdict", "AttackPlane"]


class AttackVerdict(NamedTuple):
    """What an active flood decided for one measurement delivery.

    ``attack-outage`` means the packet drowned in the flood: the client
    sees a timeout and ``latency_ms`` is charged to its retry budget.
    """

    outcome: str
    response: Optional[object] = None
    latency_ms: int = 0


class AttackPlane:
    """A frozen attack schedule plus its per-day world effects."""

    def __init__(
        self,
        profile: "AttackProfile",
        world: "SimulatedInternet",
        events: List[AttackEvent],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.profile = profile
        self.name = profile.name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._world = world
        self._clock = world.clock
        self._seed = world.config.seed
        #: The immutable schedule, generated once at install time.
        self.events: List[AttackEvent] = list(events)
        self._by_www: Dict[str, Website] = {
            str(site.www): site for site in world.population
        }
        shares = normalised_market_shares(world.specs)
        self._share_names = sorted(shares)
        self._share_weights = [shares[name] for name in self._share_names]
        self._specs = {spec.name: spec for spec in world.specs}
        #: World-side integer tallies (event-days, waves, splash counts).
        self.tallies: Dict[str, int] = {}
        #: Today's attacked infrastructure, recomputed each drive step:
        #: nameserver addresses under flood (DNS outage window) and
        #: origin addresses under flood (HTTP outage window).
        self._attacked_dns: Dict[str, int] = {}
        self._attacked_http: Dict[str, int] = {}
        self._surge = 1.0

    # -- world side: the daily attack step ------------------------------

    @property
    def traffic_surge(self) -> float:
        """Today's query-surge multiplier for the traffic plane."""
        return self._surge

    def active_events(self, day: int) -> List[AttackEvent]:
        """The floods running on the given day, in schedule order."""
        return [event for event in self.events if event.active_on(day)]

    def drive_day(self) -> List[BehaviorEvent]:
        """Play out one simulated day of attacks; returns wave events.

        Called from the world engine's day step, so every replica
        drives the identical sequence.  All per-site decisions go
        through the pure verdict functions — the shared admin RNG
        stream is never touched.
        """
        day = self._clock.day
        self._bump("days")
        self._attacked_dns = {}
        self._attacked_http = {}
        surge = 1.0
        emitted: List[BehaviorEvent] = []
        for event in self.active_events(day):
            self._bump(f"event_days.{event.event_id}")
            self._bump(f"kind_days.{event.kind.value}")
            surge += self.profile.surge_per_gbps * event.magnitude_gbps
            if event.target_kind is TargetKind.PROVIDER_FLEET:
                emitted.extend(self._drive_provider_attack(event, day))
            elif event.target_kind is TargetKind.SITE_ORIGIN:
                emitted.extend(self._drive_origin_attack(event, day))
            else:
                emitted.extend(self._drive_block_attack(event, day))
        self._surge = min(surge, self.profile.max_surge)
        if surge > 1.0:
            self._bump("surge_days")
        return emitted

    def _drive_provider_attack(
        self, event: AttackEvent, day: int
    ) -> List[BehaviorEvent]:
        """A flood on a provider fleet: DNS outage plus churn wave."""
        provider = self._world.providers.get(event.target)
        if provider is None:
            return []
        for address in provider.infra_fleet.all_addresses():
            self._attacked_dns[str(address)] = event.event_id
        if provider.customer_fleet is not None:
            for address in provider.customer_fleet.all_addresses():
                self._attacked_dns[str(address)] = event.event_id
        if not event.overwhelms:
            return []
        return self._churn_wave(event, day, provider.name)

    def _drive_origin_attack(
        self, event: AttackEvent, day: int
    ) -> List[BehaviorEvent]:
        """A flood on one site's origin: HTTP outage plus a JOIN wave
        on the victim and its co-located /24 neighbours."""
        victim = self._site_by_www(event.target)
        if victim is None or not victim.alive:
            return []
        for address in victim.origin_pool:
            self._attacked_http[str(address)] = event.event_id
        return self._join_wave(
            event, day, block=block_of(victim.origin.ip), victim=event.target
        )

    def _drive_block_attack(
        self, event: AttackEvent, day: int
    ) -> List[BehaviorEvent]:
        """A flood on a co-located hosting /24: every origin in the
        block is splashed ("The Web is Still Small")."""
        for site in self._world.population:
            if not site.alive:
                continue
            if block_of(site.origin.ip) == event.target:
                for address in site.origin_pool:
                    self._attacked_http[str(address)] = event.event_id
        return self._join_wave(event, day, block=event.target, victim=None)

    def _join_wave(
        self,
        event: AttackEvent,
        day: int,
        block: str,
        victim: Optional[str],
    ) -> List[BehaviorEvent]:
        """Emergency JOINs: the victim at the panic rate, co-located
        neighbours at the splash rate."""
        emitted: List[BehaviorEvent] = []
        for site in self._world.population:
            if not site.alive or site.multicdn or site.provider is not None:
                continue
            www = str(site.www)
            if www == victim:
                rate = self.profile.emergency_join_rate
                wave = "victim"
            elif block_of(site.origin.ip) == block:
                rate = self.profile.splash_join_rate
                wave = "splash"
            else:
                continue
            if not wave_triggered(
                "attack-join", self._seed, event.event_id, day, www, rate
            ):
                continue
            spec_name = weighted_pick(
                "attack-join-provider",
                self._seed,
                event.event_id,
                day,
                www,
                self._share_names,
                self._share_weights,
            )
            spec = self._specs[spec_name]
            rerouting, plan = choose_wave_enrollment(
                spec, self._seed, event.event_id, day, www
            )
            rotate = hash_fraction(
                "attack-join-rotate", self._seed, event.event_id, day, www
            ) < (1.0 - spec.ip_unchanged_rate)
            site.join(
                self._world.providers[spec_name],
                rerouting,
                plan,
                rotate_origin_ip=rotate,
            )
            self._bump(f"waves.join.{wave}")
            self._bump(f"event_waves.{event.event_id}.join")
            emitted.append(
                BehaviorEvent(day, www, BehaviorKind.JOIN, to_provider=spec_name)
            )
        return emitted

    def _churn_wave(
        self, event: AttackEvent, day: int, provider_name: str
    ) -> List[BehaviorEvent]:
        """Post-attack churn at an overwhelmed provider, calibrated to
        the LEAVE/SWITCH rates of "No Time for Downtime"."""
        emitted: List[BehaviorEvent] = []
        leave_rate = self.profile.leave_rate
        switch_rate = self.profile.switch_rate
        departure = self._world.config.departure_profile(provider_name)
        for site in self._world.population:
            if not site.alive or site.multicdn:
                continue
            if site.provider is None or site.provider.name != provider_name:
                continue
            www = str(site.www)
            draw = hash_fraction(
                "attack-churn", self._seed, event.event_id, day, www
            )
            informed = (
                hash_fraction(
                    "attack-informed", self._seed, event.event_id, day, www
                )
                < departure.informed
            )
            if draw < leave_rate:
                rehost = (
                    hash_fraction(
                        "attack-rehost", self._seed, event.event_id, day, www
                    )
                    < departure.rehost_after_leave
                )
                die = (not rehost) and (
                    hash_fraction(
                        "attack-die", self._seed, event.event_id, day, www
                    )
                    < departure.die_after_leave
                )
                site.leave(informed=informed, rehost=rehost, die=die)
                self._bump("waves.leave")
                self._bump(f"event_waves.{event.event_id}.leave")
                emitted.append(
                    BehaviorEvent(
                        day, www, BehaviorKind.LEAVE, from_provider=provider_name
                    )
                )
            elif draw < leave_rate + switch_rate:
                names = [n for n in self._share_names if n != provider_name]
                weights = [
                    w
                    for n, w in zip(self._share_names, self._share_weights)
                    if n != provider_name
                ]
                spec_name = weighted_pick(
                    "attack-switch-provider",
                    self._seed,
                    event.event_id,
                    day,
                    www,
                    names,
                    weights,
                )
                spec = self._specs[spec_name]
                rerouting, plan = choose_wave_enrollment(
                    spec, self._seed, event.event_id, day, www
                )
                rotate = (
                    hash_fraction(
                        "attack-switch-rotate", self._seed, event.event_id, day, www
                    )
                    < departure.rotate_on_switch
                )
                site.switch(
                    self._world.providers[spec_name],
                    rerouting,
                    plan,
                    informed=informed,
                    rotate_origin_ip=rotate,
                )
                self._bump("waves.switch")
                self._bump(f"event_waves.{event.event_id}.switch")
                emitted.append(
                    BehaviorEvent(
                        day,
                        www,
                        BehaviorKind.SWITCH,
                        from_provider=provider_name,
                        to_provider=spec_name,
                    )
                )
        return emitted

    def _site_by_www(self, www: str) -> Optional[Website]:
        return self._by_www.get(www)

    def _bump(self, key: str, amount: int = 1) -> None:
        if amount:
            self.tallies[key] = self.tallies.get(key, 0) + amount

    # -- measurement side: fabric admission -----------------------------

    @pure_function
    def admit_dns(
        self,
        address: IPv4Address,
        query: object,
        region: Optional[Region],
    ) -> Optional[AttackVerdict]:
        """Outage verdict for a DNS delivery into a flooded fleet.

        Pure hash of (day, event, region) against the outage
        probability: on any given day the flood either exceeds the
        fleet's absorption capacity or it does not, so every address of
        the attacked fleet shares one fate — there is no per-address or
        per-qname luck.  That event-day granularity is also what keeps
        the verdict cache-warmth-independent: *which* fleet addresses a
        site tries depends on glueless NS discovery and the zone-cut
        memo warmed earlier in the collection pass (the monolithic pass
        is warmed by every slice, a shard's only by its own), and any
        finer-grained draw would hand warm and cold passes different
        fates for the same site.  Only provider-fleet events open DNS
        windows, and a delegation's NS set never mixes fleets, so a
        candidate list under attack is uniformly one event.
        """
        event_id = self._attacked_dns.get(str(address))
        if event_id is None:
            return None
        day = self._clock.day
        region_name = region.name if region is not None else ""
        draw = hash_fraction("attack-dns", day, event_id, region_name)
        if draw < self.profile.ns_outage_probability:
            self.metrics.incr("attacks.dns.outage")
            self.metrics.incr(f"attacks.event.{event_id}.dns_outage")
            return AttackVerdict(
                "attack-outage", None, self.profile.attack_latency_ms
            )
        return None

    @pure_function
    def admit_http(
        self,
        address: IPv4Address,
        host: Optional[object],
        region: Optional[Region],
    ) -> Optional[AttackVerdict]:
        """Outage verdict for an HTTP request into a flooded origin.

        Stresses HTML verification's origin matching: a flooded origin
        times out instead of answering, degrading verification to the
        carry-forward path rather than fabricating a transition.  Drawn
        per (day, address, region): the verifier's targets come from
        the day's snapshot, not from cache-dependent discovery, so
        per-origin texture here is shard-safe (unlike DNS fates, which
        must be uniform per event-day).
        """
        event_id = self._attacked_http.get(str(address))
        if event_id is None:
            return None
        day = self._clock.day
        region_name = region.name if region is not None else ""
        draw = hash_fraction("attack-http", day, str(address), region_name)
        if draw < self.profile.origin_outage_probability:
            self.metrics.incr("attacks.http.outage")
            self.metrics.incr(f"attacks.event.{event_id}.http_outage")
            return AttackVerdict(
                "attack-outage", None, self.profile.attack_latency_ms
            )
        return None

    # -- checkpoint / shard support ------------------------------------

    def drive_state(self) -> Dict[str, object]:
        """The world-side state every shard replica must agree on.

        This is the shard payload's ``attacks`` entry: merged by byte
        agreement, never summed (the schedule and its effects are
        replicated per worker, not partitioned).
        """
        return {
            "profile": self.name,
            "events": [event.as_dict() for event in self.events],
            "attacked_dns": sorted(
                [address, event_id]
                for address, event_id in self._attacked_dns.items()
            ),
            "attacked_http": sorted(
                [address, event_id]
                for address, event_id in self._attacked_http.items()
            ),
            "surge_bp": int(round(self._surge * 10_000)),
            "tallies": sorted(
                [key, value] for key, value in self.tallies.items()
            ),
        }

    def state_dict(self) -> Dict[str, object]:
        """Full mutable state as JSON primitives (checkpoint snapshots).

        The drive-side state plus the measurement-side outage counters.
        The schedule itself is rebuilt from (seed, profile) at resume
        time and *verified* against the snapshot — structural refusal
        on disagreement.
        """
        state = self.drive_state()
        state["surge"] = self._surge
        state["metrics"] = self.metrics.snapshot()
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        """Reinstate state captured by :meth:`state_dict`.

        The rebuilt plane replayed the same engine days before restore,
        so the snapshot must *agree* with what replay recomputed; any
        disagreement means the snapshot belongs to a different
        trajectory and is refused loudly.
        """
        if state.get("profile") != self.name:
            raise CheckpointCorruptError(
                f"attack snapshot was taken under profile "
                f"{state.get('profile')!r}, not {self.name!r}"
            )
        rebuilt = [event.as_dict() for event in self.events]
        if list(state.get("events", [])) != rebuilt:
            raise CheckpointCorruptError(
                "attack snapshot's event schedule does not match the "
                "schedule rebuilt from (seed, profile); refusing to "
                "marry states from different trajectories"
            )
        saved_dns = {
            str(address): int(event_id)
            for address, event_id in state.get("attacked_dns", [])
        }
        saved_http = {
            str(address): int(event_id)
            for address, event_id in state.get("attacked_http", [])
        }
        if saved_dns != self._attacked_dns or saved_http != self._attacked_http:
            raise CheckpointCorruptError(
                "attack snapshot's attacked-address sets disagree with "
                "the replayed world's; the snapshot belongs to a "
                "different trajectory"
            )
        if "surge" in state:
            self._surge = float(state["surge"])
        self.tallies = {
            str(key): int(value) for key, value in state["tallies"]
        }
        if "metrics" in state:
            self.metrics.restore(state["metrics"])
