"""The attack-event plane: DDoS events that drive the world.

ROADMAP item 5: a seeded schedule of volumetric/amplification
:class:`~repro.attacks.events.AttackEvent`\\ s whose effects flow through
world state transitions — emergency JOIN waves, post-attack LEAVE/SWITCH
waves calibrated to "No Time for Downtime" (PAPERS.md), co-location
splash per "The Web is Still Small" — plus load surges into the traffic
plane and transient outage windows on the victim's infrastructure.
"""

from .events import AttackEvent, AttackKind, TargetKind
from .plane import AttackPlane, AttackVerdict
from .profiles import (
    ATTACK_PROFILES,
    AttackProfile,
    attack_profile,
    normalize_attack_profile,
)

__all__ = [
    "AttackEvent",
    "AttackKind",
    "TargetKind",
    "AttackPlane",
    "AttackVerdict",
    "AttackProfile",
    "ATTACK_PROFILES",
    "attack_profile",
    "normalize_attack_profile",
]
