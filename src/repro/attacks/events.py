"""Attack events and the pure wave-verdict functions they trigger.

An :class:`AttackEvent` is a frozen fact: what kind of flood, aimed at
what, starting when, how hard.  The schedule is generated once at
install time (:mod:`repro.attacks.profiles`) and never mutates, so every
replica of the world — shard workers, checkpoint replays, the
coordinator's merge replay — carries a byte-identical copy.

Everything *decided* in response to an event goes through the pure
verdict functions below: whether a site joins in panic, whether a
customer of an overwhelmed provider leaves or switches, which provider a
wave migrant picks, what enrollment they buy.  Each verdict is a
:func:`~repro.rng.stable_hash` function of (seed, event, day, subject) —
no RNG stream, no clock writes, no mutable counters — so verdicts are
independent of site iteration order and identical across shard counts
(the REP06x order-free requirement, enforced by the REP07x purity gate).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..dps.catalog import ProviderSpec
from ..dps.plans import PlanTier
from ..dps.portal import ReroutingMethod
from ..markers import pure_function
from ..net.ipaddr import IPv4Address
from ..rng import stable_hash

__all__ = [
    "AttackKind",
    "TargetKind",
    "AttackEvent",
    "block_of",
    "hash_fraction",
    "wave_triggered",
    "weighted_pick",
    "choose_wave_enrollment",
]


class AttackKind(enum.Enum):
    """The flood mechanics (IXP / Internet-core papers, PAPERS.md)."""

    VOLUMETRIC = "volumetric"
    AMPLIFICATION = "amplification"

    def __str__(self) -> str:
        return self.value


class TargetKind(enum.Enum):
    """What the flood is aimed at."""

    #: One website's origin server (the unprotected-victim scenario).
    SITE_ORIGIN = "site-origin"
    #: A provider's nameserver fleet (the Dyn-style provider outage).
    PROVIDER_FLEET = "provider-fleet"
    #: A co-located hosting /24 — one flood splashes every origin in the
    #: block ("The Web is Still Small", PAPERS.md).
    HOSTING_BLOCK = "hosting-block"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class AttackEvent:
    """One scheduled DDoS event (immutable after install)."""

    event_id: int
    kind: AttackKind
    target_kind: TargetKind
    #: ``www`` hostname, provider name, or ``a.b.c.0/24`` block key.
    target: str
    start_day: int
    duration_days: int
    magnitude_gbps: float
    #: True when the magnitude exceeds the victim provider's aggregate
    #: scrubbing capacity — the trigger for the LEAVE/SWITCH wave.
    overwhelms: bool = False

    def active_on(self, day: int) -> bool:
        """Whether the flood is running on the given simulated day."""
        return self.start_day <= day < self.start_day + self.duration_days

    def as_dict(self) -> Dict[str, object]:
        """JSON primitives for shard payloads and exports."""
        return {
            "event_id": self.event_id,
            "kind": self.kind.value,
            "target_kind": self.target_kind.value,
            "target": self.target,
            "start_day": self.start_day,
            "duration_days": self.duration_days,
            "magnitude_gbps": self.magnitude_gbps,
            "overwhelms": self.overwhelms,
        }


def block_of(address: "IPv4Address | str") -> str:
    """The /24 co-location block key an origin address lives in."""
    value = int(IPv4Address(address))
    return f"{IPv4Address((value >> 8) << 8)}/24"


# ---------------------------------------------------------------------------
# Pure wave verdicts
# ---------------------------------------------------------------------------


@pure_function
def hash_fraction(*parts: object) -> float:
    """A deterministic draw in [0, 1) keyed on the given parts."""
    return (stable_hash(*parts) % 10_000) / 10_000.0


@pure_function
def wave_triggered(
    label: str,
    seed: int,
    event_id: int,
    day: int,
    subject: str,
    rate: float,
) -> bool:
    """Whether one site reacts to one event on one day.

    Order-free by construction: the verdict hashes
    (label, seed, event, day, subject) against the calibrated rate, so
    it is identical no matter how the population is iterated or
    partitioned across shard workers.
    """
    if rate <= 0.0:
        return False
    return hash_fraction(label, seed, event_id, day, subject) < rate


@pure_function
def weighted_pick(
    label: str,
    seed: int,
    event_id: int,
    day: int,
    subject: str,
    names: Sequence[str],
    weights: Sequence[float],
) -> str:
    """Deterministic weighted choice (market-share provider pick).

    The same (label, seed, event, day, subject) always lands on the
    same name — the pure-hash analogue of the admin model's
    ``weighted_choice``, which must not be used on wave paths because it
    would perturb the shared admin RNG stream.
    """
    total = sum(weights)
    draw = hash_fraction(label, seed, event_id, day, subject) * total
    acc = 0.0
    for name, weight in zip(names, weights):
        acc += weight
        if draw < acc:
            return name
    return names[-1]


@pure_function
def choose_wave_enrollment(
    spec: ProviderSpec,
    seed: int,
    event_id: int,
    day: int,
    subject: str,
) -> Tuple[ReroutingMethod, PlanTier]:
    """Rerouting method and plan for an under-attack enrollment.

    Mirrors the admin model's platform constraints (Cloudflare CNAME
    needs business/enterprise, Incapsula has no free tier) but draws
    from stable hashes, and emergency migrants buy paid plans — "No
    Time for Downtime" finds post-attack customers upgrade, not
    downgrade.
    """
    methods = spec.rerouting_methods
    if len(methods) == 1:
        rerouting = methods[0]
    elif hash_fraction("attack-rerouting", seed, event_id, day, subject) < spec.cname_share:
        rerouting = ReroutingMethod.CNAME_BASED
    else:
        rerouting = next(
            m for m in methods if m is not ReroutingMethod.CNAME_BASED
        )
    if spec.name == "cloudflare" and rerouting is ReroutingMethod.CNAME_BASED:
        plan = (
            PlanTier.BUSINESS
            if hash_fraction("attack-plan", seed, event_id, day, subject) < 0.7
            else PlanTier.ENTERPRISE
        )
    elif hash_fraction("attack-plan", seed, event_id, day, subject) < 0.6:
        plan = PlanTier.PRO
    else:
        plan = PlanTier.BUSINESS
    return rerouting, plan
