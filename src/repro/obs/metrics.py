"""Lightweight observability: monotonic counters and simulated-time timers.

The query plane (resolver, cache, scanners) is the hot path of every
experiment in the paper — daily collection over the population, the
Fig. 8 A-matching filter, the §V residual scanners.  This module gives
those subsystems a shared, injectable :class:`MetricsRegistry` so a run
can report *what the query plane actually did*: queries sent, referrals
walked, cache hits/misses/negative hits, CNAME links chased, zone-cut
memo hits.

Design constraints (enforced by ``repro lint``):

* **Deterministic** — counters are plain monotonic integers; timers
  measure *simulated* seconds against a
  :class:`~repro.clock.SimulationClock`, never the wall clock.
* **Injectable** — no module-level global registry.  Subsystems accept a
  registry (or create a private one), so two resolvers never share
  counters by accident and tests can assert exact totals.

Counter names are dotted, ``subsystem.metric`` (``resolver.queries_sent``,
``cache.hits``), so :meth:`MetricsRegistry.snapshot` can cut
per-subsystem views with a prefix.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..clock import SimulationClock
from ..errors import SimulationError

__all__ = ["MetricsRegistry", "SimTimer", "defense_counter"]


def defense_counter(provider: str, tier: str, kind: str) -> str:
    """Canonical name for a traffic-defense counter.

    The background-traffic plane records every defense verdict against
    a measurement delivery under
    ``traffic.defense.<provider>.<tier>.<kind>`` — ``kind`` is one of
    ``throttled`` (rate-limit drop), ``shed`` (breaker open / load
    shedding), ``refused`` (synthetic REFUSED actually synthesised) or
    ``breaker_open`` — split by provider and load tier so ``repro
    bench`` and the E1/E8 exports can show *who* shed *under what
    pressure*.  Keeping the scheme in one place means dashboards and
    tests never drift from the emitting code.
    """
    return f"traffic.defense.{provider}.{tier}.{kind}"


class SimTimer:
    """Context manager timing a block in *simulated* seconds.

    On exit it adds the elapsed simulated seconds to
    ``<name>.sim_seconds`` and bumps ``<name>.activations``.  Workloads
    that never advance the clock record zero seconds — by design: the
    simulation has no other notion of time.
    """

    def __init__(
        self, registry: "MetricsRegistry", name: str, clock: SimulationClock
    ) -> None:
        self._registry = registry
        self._name = name
        self._clock = clock
        self._started_at: Optional[int] = None

    def __enter__(self) -> "SimTimer":
        self._started_at = self._clock.now
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._started_at is None:  # pragma: no cover - misuse guard
            return
        elapsed = self._clock.now - self._started_at
        self._registry.incr(f"{self._name}.sim_seconds", elapsed)
        self._registry.incr(f"{self._name}.activations")
        self._started_at = None


class MetricsRegistry:
    """Named monotonic counters with namespaced snapshots.

    >>> metrics = MetricsRegistry()
    >>> metrics.incr("resolver.queries_sent", 3)
    >>> metrics.value("resolver.queries_sent")
    3
    >>> metrics.snapshot(prefix="resolver")
    {'resolver.queries_sent': 3}
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    # -- counters ------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` (>= 0) to counter ``name``; returns the total.

        Counters are monotonic: a negative increment raises
        :class:`~repro.errors.SimulationError` so a buggy caller cannot
        silently rewind a total.
        """
        if amount < 0:
            raise SimulationError(
                f"counter {name!r} is monotonic; cannot add {amount}"
            )
        total = self._counters.get(name, 0) + int(amount)
        self._counters[name] = total
        return total

    def value(self, name: str) -> int:
        """Current total for ``name`` (0 when never incremented)."""
        return self._counters.get(name, 0)

    def timer(self, name: str, clock: SimulationClock) -> SimTimer:
        """A :class:`SimTimer` recording under ``name``."""
        return SimTimer(self, name, clock)

    def restore(self, counters: Dict[str, int]) -> None:
        """Replace every counter with a previously taken :meth:`snapshot`.

        The checkpoint plane's restore side: counters are monotonic
        *within* a run, and a resume re-seats them at the exact totals
        the snapshot recorded so the continued run counts from there.
        Negative values are rejected — they cannot have come from a
        registry.
        """
        for name, value in counters.items():
            if int(value) < 0:
                raise SimulationError(
                    f"counter {name!r} cannot restore to {value}"
                )
        self._counters = {name: int(value) for name, value in counters.items()}

    def merge(self, other: "MetricsRegistry | Dict[str, int]") -> None:
        """Fold another registry's totals into this one, counter-wise.

        The sharded study's aggregation primitive: each worker counts
        its own slice's queries, and the coordinator sums the per-shard
        registries into campaign totals.  Addition is commutative, so
        the merged totals are independent of worker completion order.
        Accepts either a registry or a :meth:`snapshot` dict (what a
        worker process ships over the wire).
        """
        counters = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name in sorted(counters):
            self.incr(name, int(counters[name]))

    # -- snapshots -----------------------------------------------------

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, int]:
        """Counters as a sorted dict, optionally one subsystem only.

        ``prefix`` matches whole dotted segments: ``"cache"`` selects
        ``cache.hits`` but not ``cachex.hits``.
        """
        if prefix is None:
            return {name: self._counters[name] for name in sorted(self._counters)}
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {
            name: self._counters[name]
            for name in sorted(self._counters)
            if name.startswith(dotted) or name == prefix
        }

    def __len__(self) -> int:
        """Number of distinct counters."""
        return len(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self._counters)} counters)"
