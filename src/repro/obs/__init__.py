"""Observability for the query plane.

:mod:`repro.obs.metrics` — injectable monotonic counters and
simulated-time timers, threaded through the resolver, the DNS cache, and
the §V scanners;

:mod:`repro.obs.bench` — the ``repro bench`` harness running the E1
(daily collection) and E8 (residual scan) workloads and emitting a
``BENCH_<label>.json`` perf-trajectory point.  Imported lazily by the
CLI — not re-exported here, so that importing :mod:`repro.dns` (which
uses the metrics) never drags in the world-building machinery.
"""

from .metrics import MetricsRegistry, SimTimer

__all__ = ["MetricsRegistry", "SimTimer"]
