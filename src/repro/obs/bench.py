"""The ``repro bench`` harness: E1/E8 workloads with query-plane counters.

Runs the two hot workloads every experiment in the paper funnels
through, against a fully wired world, with a shared
:class:`~repro.obs.metrics.MetricsRegistry` threaded through every
resolver and scanner:

* **E1 — daily collection** (§IV-B-1): one cache-purged A/CNAME/NS
  collection pass over the whole population, batched through
  :meth:`~repro.dns.resolver.RecursiveResolver.resolve_many`.
* **E8 — residual scan** (§V / Fig. 8): nameserver harvest, the
  Cloudflare direct-query sweep, the Incapsula CNAME tracker, and the
  filter pipeline — plus a *batched vs. naive* resolution comparison
  over the scan's recursive-resolution names, proving the zone-cut
  memo's query saving with the counters themselves.

The result dict is what ``repro bench`` serialises to
``BENCH_<label>.json``: counter totals, workload shapes, and wall time,
so the repository's perf trajectory has real data points.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.collector import DnsRecordCollector
from ..core.htmlverify import HtmlVerifier
from ..core.matching import ProviderMatcher
from ..core.pipeline import FilterPipeline
from ..core.residual_scan import CloudflareScanner, IncapsulaScanner, NameserverHarvest
from ..dns.name import DomainName
from ..dns.records import RecordType
from ..net.geo import PAPER_VANTAGE_REGIONS
from ..obs.metrics import MetricsRegistry
from ..world.internet import SimulatedInternet

__all__ = ["run_bench", "compare_query_paths", "run_shard_scaling"]


def _wall_now() -> float:
    """Wall-clock seconds (monotonic).

    The single sanctioned wall-clock read in the library: the bench
    harness reports how long workloads take on real hardware.  The value
    is *reported only* — nothing in the simulation consumes it, so
    determinism is unaffected (suppressed REP002).
    """
    return time.perf_counter()  # repro: allow[REP002] -- reported only; nothing in the simulation consumes the value


def compare_query_paths(
    world: SimulatedInternet,
    pairs: List[Tuple[DomainName, RecordType]],
) -> Dict[str, Dict[str, float]]:
    """Resolve ``pairs`` batched and naively; report queries per name.

    *Batched* uses one resolver and one
    :meth:`~repro.dns.resolver.RecursiveResolver.resolve_many` call, so
    the batch shares the TTL cache and the per-batch zone-cut memo.
    *Naive* resolves each name with no shared state (cache purged
    between names) — the one-resolver-per-lookup pattern the hot callers
    used to approximate, re-walking root/TLD for every single name.
    """
    outcomes: Dict[str, Dict[str, float]] = {}

    batched_resolver = world.make_resolver()
    batched_results = batched_resolver.resolve_many(pairs)
    outcomes["batched"] = _query_cost(
        batched_resolver.queries_sent, batched_results
    )

    naive_resolver = world.make_resolver()
    naive_results = []
    for name, rtype in pairs:
        naive_resolver.purge_cache()
        naive_results.append(naive_resolver.resolve(name, rtype))
    outcomes["naive"] = _query_cost(naive_resolver.queries_sent, naive_results)
    return outcomes


def _query_cost(queries_sent: int, results) -> Dict[str, float]:
    resolved = sum(1 for result in results if result.ok)
    return {
        "names": len(results),
        "resolved": resolved,
        "queries_sent": queries_sent,
        "queries_per_resolved": queries_sent / max(1, resolved),
    }


def _measure_slice(
    world: SimulatedInternet, hostnames: List[str]
) -> Tuple[int, int]:
    """One worker's share of the E1 collection: (resolved, queries_sent)."""
    resolver = world.make_resolver()
    collector = DnsRecordCollector(resolver)
    snapshot = collector.collect(hostnames, day=world.clock.day)
    resolved = sum(1 for domain in snapshot if domain.resolved)
    return resolved, resolver.queries_sent


def _scaling_worker(connection, world, hostnames) -> None:
    """Forked-child entrypoint: measure one slice, ship the tallies home."""
    try:
        connection.send(("ok", _measure_slice(world, hostnames)))
    except Exception as exc:  # repro: allow[REP021] -- a forked measurement child must report failure over the pipe, not die silently
        connection.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        connection.close()


def run_shard_scaling(  # repro: allow[REP040] -- wall-clock scaling curve is the measurement itself; reported only, never fed back into the simulation
    world: SimulatedInternet,
    *,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
) -> Dict[str, object]:
    """Wall-time the sharded E1 collection at each worker count.

    For each entry in ``shard_counts`` the population's hostname list is
    partitioned with the same contiguous balanced bounds the shard
    runner uses, and every slice is collected by a worker forked *after*
    the world was built — the copy-on-write fork shares the parent's
    world, so the expensive build is paid once and the parent's replica
    is never mutated, making every point measure an identical workload.
    On platforms without ``fork`` the slices run sequentially in-process
    (no parallelism, but the same per-slice work), recorded as
    ``mode="sequential"``.

    The per-point resolver tallies (``resolved``, ``queries_sent``) are
    deterministic functions of (population, seed, day, worker count) —
    queries grow with the worker count because each worker's resolver
    has its own TTL cache — so they double as a cross-machine identity
    check on the curve.  Wall seconds and ``cpus`` are reported only.
    """
    # Imported lazily: core.study reaches back into this package for
    # MetricsRegistry, and a top-level import would close the cycle
    # through obs/__init__ while this module is still initialising.
    from ..core.study import shard_bounds
    from ..errors import ShardError

    hostnames = [str(site.www) for site in world.population]
    can_fork = "fork" in multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork") if can_fork else None

    points: List[Dict[str, object]] = []
    for count in shard_counts:
        slices = [
            hostnames[slice(*shard_bounds(len(hostnames), index, count))]
            for index in range(count)
        ]
        started = _wall_now()
        resolved = queries = 0
        if context is not None:
            processes = []
            pipes = []
            for names in slices:
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_scaling_worker, args=(child_end, world, names)
                )
                process.start()
                child_end.close()
                processes.append(process)
                pipes.append(parent_end)
            errors: List[str] = []
            for parent_end in pipes:
                try:
                    kind, value = parent_end.recv()
                except EOFError:
                    kind, value = "error", "worker died without reporting"
                if kind == "ok":
                    resolved += value[0]
                    queries += value[1]
                else:
                    errors.append(str(value))
                parent_end.close()
            for process in processes:
                process.join()
            if errors:
                raise ShardError(
                    f"shard-scaling worker(s) failed at {count} worker(s): "
                    + "; ".join(errors)
                )
        else:
            for names in slices:
                slice_resolved, slice_queries = _measure_slice(world, names)
                resolved += slice_resolved
                queries += slice_queries
        points.append(
            {
                "workers": count,
                "mode": "fork" if context is not None else "sequential",
                "resolved": resolved,
                "queries_sent": queries,
                "wall_seconds": _wall_now() - started,
            }
        )

    return {
        "population": len(hostnames),
        "seed": world.config.seed,
        "sim_day": world.clock.day,
        "cpus": os.cpu_count() or 1,
        "points": points,
    }


def run_bench(  # repro: allow[REP040] -- timing real hardware is the bench's purpose; wall times are reported, never fed back into the simulation
    world: SimulatedInternet,
    warmup_days: int = 7,
    label: Optional[str] = None,
    traffic: Optional[str] = None,
    attacks: Optional[str] = None,
) -> Dict[str, object]:
    """Run the E1/E8 workloads and return the BENCH payload.

    ``traffic`` names a background-load profile to install before the
    warm-up; the E1/E8 workloads then run against a fleet under load,
    and the payload grows a ``traffic`` section with the plane's tallies
    and defense counters.  ``attacks`` names a DDoS campaign to schedule
    the same way; the payload then grows an ``attacks`` section with the
    schedule and wave counters.  With both ``None`` (the default) the
    payload — E1 counters included — is byte-identical to a pre-plane
    bench, which is exactly what the CI equivalence gate compares.
    """
    bench_label = label or f"p{len(world.population)}"
    started = _wall_now()
    metrics = MetricsRegistry()

    traffic_plane = None
    traffic_metrics = MetricsRegistry()
    if traffic is not None:
        traffic_plane = world.install_traffic(traffic, metrics=traffic_metrics)
    attack_plane = None
    attack_metrics = MetricsRegistry()
    if attacks is not None:
        attack_plane = world.install_attacks(attacks, metrics=attack_metrics)

    with metrics.timer("bench.warmup", world.clock):
        world.engine.run_days(warmup_days)

    hostnames = [str(site.www) for site in world.population]

    # -- E1: daily collection ------------------------------------------
    e1_started = _wall_now()
    collector = DnsRecordCollector(world.make_resolver(metrics=metrics))
    snapshot = collector.collect(hostnames, day=world.clock.day)
    e1 = {
        "hostnames": len(hostnames),
        "resolved": sum(1 for domain in snapshot if domain.resolved),
        "counters": metrics.snapshot(),
        "wall_seconds": _wall_now() - e1_started,
    }

    # -- E8: residual scan ---------------------------------------------
    e8_started = _wall_now()
    scan_metrics = MetricsRegistry()
    matcher = ProviderMatcher(world.specs, world.routeviews)
    verifier = HtmlVerifier(world.http_client(PAPER_VANTAGE_REGIONS[0]))

    harvest = NameserverHarvest()
    harvest.ingest([snapshot])
    ns_ips = harvest.resolve_addresses(
        world.make_resolver(metrics=scan_metrics)
    )

    cf_retrieved = cf_hidden = 0
    if ns_ips and "cloudflare" in world.providers:
        scanner = CloudflareScanner(
            ns_ips,
            [world.dns_client(region) for region in PAPER_VANTAGE_REGIONS],
            rng=world.rng.fork("bench-e8-scan"),
            metrics=scan_metrics,
        )
        retrieved = scanner.scan(hostnames)
        cf_retrieved = len(retrieved)
        pipeline = FilterPipeline(
            world.provider("cloudflare").prefixes,
            world.make_resolver(metrics=scan_metrics),
            verifier,
        )
        cf_report = pipeline.run(retrieved, "cloudflare", week=0)
        cf_hidden = cf_report.hidden_count

    incap_retrieved = incap_hidden = 0
    incap_canonicals: List[DomainName] = []
    if "incapsula" in world.providers:
        incap_scanner = IncapsulaScanner(
            world.make_resolver(metrics=scan_metrics), matcher
        )
        incap_scanner.ingest([snapshot])
        incap_canonicals = list(incap_scanner.known_canonicals)
        incap_records = incap_scanner.scan()
        incap_retrieved = len(incap_records)
        incap_pipeline = FilterPipeline(
            world.provider("incapsula").prefixes,
            world.make_resolver(metrics=scan_metrics),
            verifier,
        )
        incap_hidden = incap_pipeline.run(
            incap_records, "incapsula", week=0
        ).hidden_count

    # The scan's recursive-resolution name set: harvested nameserver
    # hostnames plus collected canonicals — sibling-heavy, exactly where
    # the zone-cut memo pays off.  Both paths resolve the same names.
    comparison_pairs = [
        (hostname, RecordType.A) for hostname in harvest.hostnames
    ] + [(canonical, RecordType.A) for canonical in incap_canonicals]
    comparison = (
        compare_query_paths(world, comparison_pairs)
        if comparison_pairs
        else {}
    )

    e8 = {
        "harvested_nameservers": len(harvest),
        "cloudflare_retrieved": cf_retrieved,
        "cloudflare_hidden": cf_hidden,
        "incapsula_canonicals": len(incap_canonicals),
        "incapsula_retrieved": incap_retrieved,
        "incapsula_hidden": incap_hidden,
        "counters": scan_metrics.snapshot(),
        "query_path_comparison": comparison,
        "wall_seconds": _wall_now() - e8_started,
    }

    payload = {
        "label": bench_label,
        "population": len(world.population),
        "seed": world.config.seed,
        "warmup_days": warmup_days,
        "sim_day": world.clock.day,
        "warmup_sim_seconds": metrics.value("bench.warmup.sim_seconds"),
        "e1_collection": e1,
        "e8_residual_scan": e8,
        "wall_seconds_total": _wall_now() - started,
    }
    if traffic_plane is not None:
        payload["traffic"] = {
            "profile": traffic,
            "tier": traffic_plane.tier,
            "tallies": {
                name: traffic_plane.tallies[name]
                for name in sorted(traffic_plane.tallies)
            },
            "defense_counters": traffic_metrics.snapshot(),
        }
    if attack_plane is not None:
        payload["attacks"] = {
            "profile": attacks,
            "events": [event.as_dict() for event in attack_plane.events],
            "surge": attack_plane.traffic_surge,
            "tallies": {
                name: attack_plane.tallies[name]
                for name in sorted(attack_plane.tallies)
            },
            "flood_counters": attack_metrics.snapshot(),
        }
    return payload
