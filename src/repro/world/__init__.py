"""The simulated world: websites, hosting, administrator behaviour, the
day-step event engine, and the :class:`SimulatedInternet` composition
root."""

from .admin import AdminBehaviorModel, BehaviorEvent, BehaviorKind
from .config import BehaviorRates, DepartureProfile, WorldConfig
from .events import WorldEngine
from .hosting import HostingProvider
from .internet import SimulatedInternet
from .population import PopulationBuilder, TLD_WEIGHTS
from .website import GroundTruthStatus, Website

__all__ = [
    "AdminBehaviorModel",
    "BehaviorEvent",
    "BehaviorKind",
    "BehaviorRates",
    "DepartureProfile",
    "WorldConfig",
    "WorldEngine",
    "HostingProvider",
    "SimulatedInternet",
    "PopulationBuilder",
    "TLD_WEIGHTS",
    "GroundTruthStatus",
    "Website",
]
