"""World-model configuration and calibration constants.

Every stochastic knob of the simulated population lives here.  Defaults
are calibrated so a 1M-scale population reproduces the paper's measured
statistics; smaller populations reproduce the same *rates* and the
benches report scale factors alongside raw counts.

Calibration targets (see EXPERIMENTS.md for the full derivation):

* overall DPS adoption 14.85%, top-10k adoption 38.98% (§IV-B-2);
* daily behaviour counts per 1M sites: 195 JOIN, 145 LEAVE, 87 PAUSE,
  62 RESUME, 21 SWITCH (Fig. 3);
* pause-duration CDF: <50% resume within a day, ~30% exceed 5 days
  (Fig. 5), Incapsula slightly shorter than Cloudflare;
* origin-IP unchanged rates per provider (Table V, via the catalog);
* Table VI magnitudes: the hidden-record composition is driven by what
  departing customers do next (switch / stay / re-host / go dark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["BehaviorRates", "DepartureProfile", "WorldConfig"]

#: The population size the paper's absolute numbers refer to.
PAPER_POPULATION = 1_000_000


@dataclass(frozen=True)
class BehaviorRates:
    """Per-site daily probabilities driving Fig. 3's counts.

    The numerators are the paper's average daily counts; denominators
    are the relevant at-risk pools at 1M scale (148,500 DPS customers,
    851,500 non-customers, 122,800 pause-capable customers).
    """

    join_daily: float = 195 / 851_500
    leave_daily: float = 145 / 148_500
    switch_daily: float = 21 / 148_500
    pause_daily: float = 87 / 122_800


@dataclass(frozen=True)
class DepartureProfile:
    """What a customer does around leaving a platform.

    ``informed`` is the probability the provider is told (footnote 9);
    uninformed departures leave the edge answer in place and therefore
    never leak an origin.  After an outright LEAVE, the site either
    keeps serving from the same origin, re-hosts to a new address, or
    goes dark — the latter two produce *unverifiable* hidden records,
    the switchers produce the verifiable ones (§V-A).
    """

    informed: float = 0.80
    rehost_after_leave: float = 0.22
    die_after_leave: float = 0.09
    #: Probability of rotating the origin IP when switching providers
    #: (switching "is typically not required to change the origin IP",
    #: §IV-C-3, so this is small).
    rotate_on_switch: float = 0.15


@dataclass
class WorldConfig:
    """Complete configuration of the simulated world."""

    population_size: int = 20_000
    seed: int = 2018

    # --- adoption (Fig. 2) ------------------------------------------------
    overall_adoption: float = 0.1485
    top_sites_fraction: float = 0.01
    top_sites_adoption: float = 0.3898

    # --- behaviour rates (Fig. 3) ------------------------------------------
    rates: BehaviorRates = field(default_factory=BehaviorRates)

    # --- departures (Table VI composition) ---------------------------------
    departures: Dict[str, DepartureProfile] = field(
        default_factory=lambda: {
            "default": DepartureProfile(),
            # Incapsula has no free tier; its business customers rarely
            # re-host or vanish, and usually close their accounts
            # properly — which is why its (few) hidden records verify as
            # origins far more often (69% vs 24.8%, Table VI).
            "incapsula": DepartureProfile(
                informed=0.90,
                rehost_after_leave=0.04,
                die_after_leave=0.02,
                rotate_on_switch=0.05,
            ),
        }
    )

    # --- pause behaviour (Fig. 5) ---------------------------------------------
    #: Probability a paused site never resumes (drives RESUME < PAUSE:
    #: 62 resumes vs 87 pauses per day in the paper → ~0.29).
    pause_never_resume: float = 0.29
    #: P(resume next day) — the CDF's first step (just under half).
    #: Set slightly below the paper's measured step because a six-week
    #: observation window right-censors long pauses: the *measured* CDF
    #: sits above the planted one.
    pause_one_day: float = 0.42
    #: P(resume within 2-5 days), uniform across those days.
    pause_short: float = 0.22
    #: Remaining mass is a long tail: 6 + Exp(mean 9) days.
    pause_tail_mean_days: float = 9.0
    #: Incapsula customers pause slightly shorter (Fig. 5).
    incapsula_one_day_bonus: float = 0.07

    # --- website properties ---------------------------------------------------------
    #: Fraction of origins emitting per-request (dynamic) meta tags —
    #: HTML verification false negatives (§IV-C-3).
    dynamic_meta_fraction: float = 0.08
    #: Fraction of DPS customers firewalling the origin to provider
    #: ranges — direct probes dropped (§IV-C-3).
    firewall_fraction: float = 0.10
    #: Fraction of sites behind a multi-CDN front-end (filtered out of
    #: behaviour stats, §IV-B-3).
    multicdn_fraction: float = 0.002
    #: Table I attack-vector prevalence: fraction of sites with an
    #: unprotected auxiliary subdomain (``dev.``) on the origin host,
    #: and with an MX record pointing at the origin host.  Calibrated to
    #: the Vissers et al. finding that >70% of protected sites are
    #: vulnerable to at least one exposure vector.
    subdomain_leak_fraction: float = 0.15
    mx_leak_fraction: float = 0.20
    #: Fraction of sites whose origin is multi-homed behind round-robin
    #: DNS: the site serves from several addresses and the public A
    #: record rotates daily.  A DPS's *stored* origin for such a site is
    #: usually absent from any single day's public answer — making it a
    #: hidden record — yet still serves the site, so it HTML-verifies.
    #: This is what gives Incapsula's (business-heavy) hidden records
    #: their high verified rate in Table VI.
    rotating_origin_fraction: float = 0.08
    #: Addresses in a rotating origin's pool.
    origin_pool_size: int = 3

    # --- plan mix (purge horizons / Fig. 9 tail) ------------------------------------
    plan_mix: Dict[str, float] = field(
        default_factory=lambda: {
            "free": 0.70,
            "pro": 0.15,
            "business": 0.10,
            "enterprise": 0.05,
        }
    )

    def departure_profile(self, provider_name: str) -> DepartureProfile:
        """The departure profile for a provider (falling back to default)."""
        return self.departures.get(provider_name, self.departures["default"])

    @property
    def scale_factor(self) -> float:
        """How many real-world (1M-list) sites one simulated site stands for."""
        return PAPER_POPULATION / self.population_size
