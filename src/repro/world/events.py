"""The day-step event engine.

Advances the simulated world one day at a time: every administrator
takes their daily actions, multi-CDN front-ends re-select member CDNs,
and providers purge stale records past their plan horizons.  All
ground-truth behaviour events are logged so measurements can be
validated against what actually happened.

The paper notes its real experiment intervals varied between 20 and 30
hours, which aggregated behaviours into visible spikes (§IV-B-3);
``interval_jitter_hours`` reproduces that artefact on demand.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from ..clock import SECONDS_PER_HOUR, SimulationClock
from ..rng import SeededRng
from .admin import AdminBehaviorModel, BehaviorEvent, BehaviorKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .internet import SimulatedInternet

__all__ = ["WorldEngine"]


class WorldEngine:
    """Drives the simulated world forward in daily steps."""

    def __init__(
        self,
        world: "SimulatedInternet",
        interval_jitter_hours: int = 0,
    ) -> None:
        self.world = world
        self.interval_jitter_hours = interval_jitter_hours
        self.events: List[BehaviorEvent] = []
        self._jitter_rng: SeededRng = world.rng.fork("interval-jitter")

    @property
    def clock(self) -> SimulationClock:
        """The world's clock."""
        return self.world.clock

    @property
    def admin(self) -> AdminBehaviorModel:
        """The world's administrator model."""
        return self.world.admin

    # ------------------------------------------------------------------

    def run_day(self) -> List[BehaviorEvent]:
        """Execute one observation interval; returns its events.

        With ``interval_jitter_hours`` set, intervals vary around 24 h
        (the paper's real intervals were 20-30 h, §IV-B-3) and behaviour
        rates scale with the elapsed time, aggregating events into the
        spikes visible in Fig. 3.
        """
        day = self.clock.day
        interval_hours = self._draw_interval_hours()
        rate_scale = interval_hours / 24.0
        todays: List[BehaviorEvent] = []
        for site in self.world.population:
            todays.extend(self.admin.step_site(site, day, rate_scale))
            site.rotate_public_address(day)
        self._flip_multicdn(day)
        # Attacks are part of the day's world dynamics: active floods
        # emit emergent JOIN/LEAVE/SWITCH waves (pure verdicts, never
        # the admin RNG stream) and surge the background-traffic load.
        # Every replica drives the identical sequence.
        attacks = self.world.fabric.attack_plane
        attack_surge = 1.0
        if attacks is not None:
            todays.extend(attacks.drive_day())
            attack_surge = attacks.traffic_surge
        self.events.extend(todays)
        # Background traffic is part of the day's world dynamics: every
        # replica of this world (shard workers, checkpoint replays)
        # drives the identical load sequence, so the plane's buckets,
        # breakers and load tier stay byte-identical everywhere.
        traffic = self.world.fabric.traffic_plane
        if traffic is not None:
            traffic.drive_day(attack_surge)
        self.clock.advance(interval_hours * SECONDS_PER_HOUR)
        # Stale-record purging is a start-of-day platform job: records
        # whose horizon elapses on day N are gone before day N's queries.
        for provider in self.world.providers.values():
            provider.purge_expired()
        return todays

    def run_days(self, days: int) -> List[BehaviorEvent]:
        """Execute several days; returns all events across them."""
        collected: List[BehaviorEvent] = []
        for _ in range(days):
            collected.extend(self.run_day())
        return collected

    # ------------------------------------------------------------------

    def _draw_interval_hours(self) -> int:
        if self.interval_jitter_hours <= 0:
            return 24
        jitter = self._jitter_rng.randint(
            -self.interval_jitter_hours, self.interval_jitter_hours
        )
        return max(1, 24 + jitter)

    def _flip_multicdn(self, day: int) -> None:
        service = self.world.multicdn
        if service is None:
            return
        for site in self.world.population:
            if not site.multicdn:
                continue
            member = service.provider_for(site.www, day)
            canonicals: Dict[str, object] = getattr(site, "multicdn_canonicals", {})
            canonical = canonicals.get(member)
            if canonical is not None:
                site.hosting.set_www_cname(site.apex, canonical)

    # ------------------------------------------------------------------
    # Ground-truth summaries (used to validate measurements)
    # ------------------------------------------------------------------

    def events_of_kind(self, kind: BehaviorKind) -> List[BehaviorEvent]:
        """All logged events of one behaviour kind."""
        return [event for event in self.events if event.kind is kind]

    def daily_counts(self) -> Dict[int, Dict[BehaviorKind, int]]:
        """Events per day per kind — the ground truth behind Fig. 3."""
        table: Dict[int, Dict[BehaviorKind, int]] = {}
        for event in self.events:
            table.setdefault(event.day, {kind: 0 for kind in BehaviorKind})
            table[event.day][event.kind] += 1
        return table
