"""The composition root: a complete simulated Internet.

:class:`SimulatedInternet` wires every substrate together —
root/TLD DNS, hosting providers, the eleven DPS platforms, the website
population, the vantage-point cloud, the RouteViews database — and hands
the measurement core the same interfaces the paper's scanners had:
recursive resolvers, stub DNS clients, HTTP clients, and BGP data.

Address plan
------------
==================  =====================
10.0.0.0/9          DPS provider platforms
10.128.0.0/9        root/TLD infrastructure
172.16.0.0/12      hosting providers (origin space)
100.64.0.0/10       hosting overflow (very large populations only)
192.168.0.0/16      off-net ("shared ISP") edge addresses
198.18.0.0/15       vantage-point cloud
==================  =====================
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..clock import SimulationClock
from ..dns.client import DnsClient
from ..dns.resolver import RecursiveResolver
from ..dns.root import DnsHierarchy
from ..dps.catalog import PAPER_PROVIDERS, ProviderSpec, build_providers
from ..dps.multicdn import MultiCdnService
from ..dps.provider import DpsProvider
from ..errors import ConfigurationError
from ..faults.plan import FaultPlan
from ..faults.profiles import FaultProfile, profile as lookup_profile
from ..net.asn import AsRegistry
from ..net.fabric import NetworkFabric
from ..net.geo import PAPER_VANTAGE_REGIONS, Region, VantagePoint, region as lookup_region
from ..net.ipaddr import AddressAllocator
from ..net.routeviews import RouteViewsDb
from ..obs.metrics import MetricsRegistry
from ..rng import SeededRng
from ..traffic.plane import TrafficPlane
from ..traffic.profiles import TrafficProfile, traffic_profile as lookup_traffic
from ..web.http import HttpClient
from .admin import AdminBehaviorModel
from .config import WorldConfig
from .events import WorldEngine
from .hosting import HostingProvider
from .population import PopulationBuilder
from .website import Website

__all__ = ["SimulatedInternet"]

_NUM_HOSTING_PROVIDERS = 6
#: Sites per hosting provider before the fleet grows.  Each provider
#: owns one /16 origin pool (~65k addresses); capping occupancy at 50k
#: leaves headroom for origin moves and round-robin pools.  Populations
#: up to 300k sites keep the classic six-provider fleet, so every world
#: small enough to have existed before the cap stays byte-identical.
_SITES_PER_HOSTING_PROVIDER = 50_000
#: The 172.16.0.0/12 hosting space holds sixteen /16 pools; providers
#: beyond that draw from the CGNAT overflow block.
_PROVIDERS_PER_HOSTING_SPACE = 16
_MULTICDN_MEMBERS = ("fastly", "cloudfront", "akamai")


class SimulatedInternet:
    """Everything the study needs, wired together and ready to run."""

    def __init__(
        self,
        config: Optional[WorldConfig] = None,
        specs: Optional[List[ProviderSpec]] = None,
        with_multicdn: bool = True,
    ) -> None:
        self.config = config or WorldConfig()
        self.rng = SeededRng(self.config.seed)
        self.clock = SimulationClock()
        self.fabric = NetworkFabric()
        self.as_registry = AsRegistry()

        provider_space = AddressAllocator("10.0.0.0/9")
        infra_space = AddressAllocator("10.128.0.0/9")
        hosting_space = AddressAllocator("172.16.0.0/12")
        offnet_space = AddressAllocator("192.168.0.0/16")
        cloud_space = AddressAllocator("198.18.0.0/15")

        self.hierarchy = DnsHierarchy(self.fabric, self.clock, infra_space)

        # Off-net block: addresses some Akamai/CDNetworks edges hold that
        # belong to other organisations (footnote 6).
        offnet_prefix = offnet_space.allocate_prefix(17)
        self.as_registry.register(64600, "shared-isp", [offnet_prefix])
        offnet_allocator = AddressAllocator(offnet_prefix)

        # Vantage-point cloud.
        cloud_prefix = cloud_space.allocate_prefix(18)
        self.as_registry.register(64700, "cloudlab", [cloud_prefix])
        cloud_allocator = AddressAllocator(cloud_prefix)
        self.vantage_points: Dict[str, VantagePoint] = {}
        for name in PAPER_VANTAGE_REGIONS:
            self.vantage_points[name] = VantagePoint(
                name=f"vp-{name}",
                region=lookup_region(name),
                source_ip=cloud_allocator.allocate_address(),
            )

        # DPS platforms.
        self.specs: List[ProviderSpec] = list(specs if specs is not None else PAPER_PROVIDERS)
        self.providers: Dict[str, DpsProvider] = build_providers(
            self.fabric,
            self.clock,
            self.hierarchy,
            self.as_registry,
            provider_space,
            offnet_allocator=offnet_allocator,
            specs=self.specs,
        )

        # Hosting providers.  The fleet grows with the population so the
        # per-provider /16 origin pools never exhaust: six providers up
        # to 300k sites (the historical layout, unchanged for every
        # world that could previously be built), one more per 50k sites
        # beyond that, spilling into the CGNAT overflow space once the
        # hosting /12 is fully carved.
        num_hosting = max(
            _NUM_HOSTING_PROVIDERS,
            -(-self.config.population_size // _SITES_PER_HOSTING_PROVIDER),
        )
        hosting_overflow: Optional[AddressAllocator] = None
        self.hosting_providers: List[HostingProvider] = []
        for i in range(num_hosting):
            space = hosting_space
            if i >= _PROVIDERS_PER_HOSTING_SPACE:
                if hosting_overflow is None:
                    hosting_overflow = AddressAllocator("100.64.0.0/10")
                space = hosting_overflow
            self.hosting_providers.append(
                HostingProvider(
                    f"hostco{i + 1}",
                    64800 + i,
                    self.fabric,
                    self.hierarchy,
                    self.as_registry,
                    space,
                )
            )

        # Multi-CDN front-end (optional).
        self.multicdn: Optional[MultiCdnService] = None
        if with_multicdn:
            members = [m for m in _MULTICDN_MEMBERS if m in self.providers]
            if len(members) >= 2:
                self.multicdn = MultiCdnService("cedexis-like", members)

        # Administrator model and population.
        self.admin = AdminBehaviorModel(
            self.config, self.providers, self.specs, self.rng.fork("admin")
        )
        builder = PopulationBuilder(
            self.config,
            self.hosting_providers,
            self.providers,
            self.specs,
            self.admin,
            self.rng.fork("population"),
            multicdn=self.multicdn,
        )
        self.population: List[Website] = builder.build()
        self._by_www: Dict[str, Website] = {str(s.www): s for s in self.population}

        # BGP view, built after every organisation has announced.
        self.routeviews = RouteViewsDb.from_registry(self.as_registry)

        self.engine = WorldEngine(self)

    # ------------------------------------------------------------------
    # Scanner-facing interfaces
    # ------------------------------------------------------------------

    def make_resolver(
        self,
        region_name: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> RecursiveResolver:
        """A fresh recursive resolver, optionally pinned to a region.

        ``metrics`` lets callers aggregate query-plane counters across
        several resolvers into one registry (see ``repro bench``).
        """
        return self.hierarchy.make_resolver(
            self._region_or_none(region_name), metrics=metrics
        )

    def dns_client(
        self,
        region_name: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> DnsClient:
        """A stub client for direct-to-nameserver queries."""
        return DnsClient(
            self.fabric, self._region_or_none(region_name), metrics=metrics
        )

    def http_client(
        self,
        region_name: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> HttpClient:
        """An HTTP client sourced from a vantage point's address."""
        if region_name is None:
            return HttpClient(self.fabric, metrics=metrics)
        vp = self.vantage_point(region_name)
        return HttpClient(
            self.fabric,
            source_ip=vp.source_ip,
            region=vp.region,
            metrics=metrics,
        )

    def install_faults(
        self,
        profile: "FaultProfile | FaultPlan | str",
        metrics: Optional[MetricsRegistry] = None,
    ) -> FaultPlan:
        """Install a fault plan on the fabric and return it.

        Accepts a profile name (see :data:`repro.faults.PROFILES`), a
        :class:`~repro.faults.profiles.FaultProfile`, or a ready-built
        :class:`~repro.faults.plan.FaultPlan`.  Profiles are built at
        install time, so their day-windowed rules are relative to the
        clock's current day.  The plan's RNG is forked from the world's
        root RNG — installation never perturbs world dynamics.
        """
        if isinstance(profile, str):
            profile = lookup_profile(profile)
        if isinstance(profile, FaultProfile):
            plan = profile.build(
                self, metrics if metrics is not None else MetricsRegistry()
            )
        else:
            plan = profile
        self.fabric.fault_plan = plan
        return plan

    def clear_faults(self) -> None:
        """Remove any installed fault plan (deliveries become perfect)."""
        self.fabric.fault_plan = None

    def install_traffic(
        self,
        profile: "TrafficProfile | TrafficPlane | str",
        metrics: Optional[MetricsRegistry] = None,
    ) -> TrafficPlane:
        """Install a background-traffic plane and return it.

        Accepts a profile name (see
        :data:`repro.traffic.TRAFFIC_PROFILES`), a
        :class:`~repro.traffic.profiles.TrafficProfile`, or a ready-built
        :class:`~repro.traffic.plane.TrafficPlane`.  From then on the
        world engine drives one day of background load per day step, and
        the provider defense stack may throttle or shed measurement
        deliveries through the fabric.  The plane's RNG is forked from
        the world's root RNG — installation never perturbs world
        dynamics.
        """
        if isinstance(profile, str):
            profile = lookup_traffic(profile)
        if isinstance(profile, TrafficProfile):
            plane = profile.build(self, metrics)
        else:
            plane = profile
        self.fabric.traffic_plane = plane
        return plane

    def clear_traffic(self) -> None:
        """Remove any installed traffic plane (background load stops)."""
        self.fabric.traffic_plane = None

    def install_attacks(
        self,
        profile: "object | str",
        metrics: Optional[MetricsRegistry] = None,
    ):
        """Install an attack plane and return it.

        Accepts a profile name (see
        :data:`repro.attacks.ATTACK_PROFILES`), an
        :class:`~repro.attacks.profiles.AttackProfile`, or a ready-built
        :class:`~repro.attacks.plane.AttackPlane`.  The schedule is
        generated at install time from a label-forked RNG stream, so
        event days are relative to the clock's current day and every
        replica that installs at the same day rebuilds it
        byte-identically.  Wave verdicts are pure hashes — installation
        never perturbs baseline world dynamics.
        """
        # Imported here, not at module top: repro.attacks imports the
        # world's admin/website modules, and this module is part of the
        # same package's init chain.
        from ..attacks.plane import AttackPlane
        from ..attacks.profiles import AttackProfile, attack_profile as lookup_attack

        if isinstance(profile, str):
            profile = lookup_attack(profile)
        if isinstance(profile, AttackProfile):
            plane = profile.build(self, metrics)
        elif isinstance(profile, AttackPlane):
            plane = profile
        else:
            raise ConfigurationError(
                f"cannot install attacks from {type(profile).__name__}"
            )
        self.fabric.attack_plane = plane
        return plane

    def clear_attacks(self) -> None:
        """Remove any installed attack plane (the campaign stops)."""
        self.fabric.attack_plane = None

    def vantage_point(self, region_name: str) -> VantagePoint:
        """One of the five measurement vantage points (Fig. 7)."""
        try:
            return self.vantage_points[region_name]
        except KeyError:
            raise ConfigurationError(f"no vantage point in {region_name!r}") from None

    def website(self, www: str) -> Website:
        """Ground-truth lookup of a site by its www hostname."""
        try:
            return self._by_www[www]
        except KeyError:
            raise ConfigurationError(f"unknown website: {www!r}") from None

    def provider(self, name: str) -> DpsProvider:
        """One of the DPS platforms by name."""
        try:
            return self.providers[name]
        except KeyError:
            raise ConfigurationError(f"unknown provider: {name!r}") from None

    def _region_or_none(self, region_name: Optional[str]) -> Optional[Region]:
        if region_name is None:
            return None
        return lookup_region(region_name)

    # ------------------------------------------------------------------
    # Ground-truth summaries
    # ------------------------------------------------------------------

    def dps_customers(self) -> List[Website]:
        """All sites currently on a DPS platform (ground truth)."""
        return [site for site in self.population if site.provider is not None]

    def adoption_by_provider(self) -> Dict[str, int]:
        """Ground-truth customer counts per provider."""
        counts: Dict[str, int] = {}
        for site in self.dps_customers():
            assert site.provider is not None
            counts[site.provider.name] = counts.get(site.provider.name, 0) + 1
        return counts
