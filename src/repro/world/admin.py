"""Administrator behaviour model.

Encodes how website administrators act, calibrated to the paper's
measured rates (see :mod:`repro.world.config`): who joins which provider
(market shares, Fig. 2), which rerouting and plan they pick (Fig. 6),
whether they rotate the origin IP (Table V), how long pauses last
(Fig. 5), and what happens around departures (footnote 9, Table VI
composition).

The model is deliberately *generative*: the measurement pipeline never
reads it — it only sees DNS and HTTP, like the paper's scanners did.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dps.catalog import ProviderSpec, normalised_market_shares
from ..dps.plans import PlanTier
from ..dps.portal import ReroutingMethod
from ..dps.provider import DpsProvider
from ..rng import SeededRng
from .config import WorldConfig
from .website import GroundTruthStatus, Website

__all__ = ["BehaviorKind", "BehaviorEvent", "AdminBehaviorModel"]


class BehaviorKind(enum.Enum):
    """Table IV's usage behaviours."""

    JOIN = "J"
    LEAVE = "L"
    PAUSE = "P"
    RESUME = "R"
    SWITCH = "S"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class BehaviorEvent:
    """One ground-truth behaviour occurrence."""

    day: int
    website: str
    kind: BehaviorKind
    from_provider: Optional[str] = None
    to_provider: Optional[str] = None


class AdminBehaviorModel:
    """Drives every site's administrator, one day at a time."""

    def __init__(
        self,
        config: WorldConfig,
        providers: Dict[str, DpsProvider],
        specs: List[ProviderSpec],
        rng: SeededRng,
    ) -> None:
        self.config = config
        self.providers = providers
        self.specs = {spec.name: spec for spec in specs}
        shares = normalised_market_shares(specs)
        self._share_names = list(shares)
        self._share_weights = [shares[name] for name in self._share_names]
        self._rng = rng

    # ------------------------------------------------------------------
    # Enrollment choices (shared with the population generator)
    # ------------------------------------------------------------------

    def choose_provider(self, exclude: Optional[str] = None) -> ProviderSpec:
        """Pick a provider by market share, optionally excluding one."""
        if exclude is None:
            name = self._rng.weighted_choice(self._share_names, self._share_weights)
            return self.specs[name]
        names = [n for n in self._share_names if n != exclude]
        weights = [w for n, w in zip(self._share_names, self._share_weights) if n != exclude]
        return self.specs[self._rng.weighted_choice(names, weights)]

    def choose_enrollment(self, spec: ProviderSpec) -> Tuple[ReroutingMethod, PlanTier]:
        """Pick rerouting method and plan consistent with the platform.

        Cloudflare's CNAME setup requires a business/enterprise plan
        ([21]); its NS customers follow the general plan mix.
        """
        methods = spec.rerouting_methods
        if len(methods) == 1:
            rerouting = methods[0]
        elif self._rng.bernoulli(spec.cname_share):
            rerouting = ReroutingMethod.CNAME_BASED
        else:
            rerouting = next(m for m in methods if m is not ReroutingMethod.CNAME_BASED)
        if spec.name == "cloudflare" and rerouting is ReroutingMethod.CNAME_BASED:
            plan = PlanTier.BUSINESS if self._rng.bernoulli(0.7) else PlanTier.ENTERPRISE
        elif spec.name == "incapsula":
            # No free tier.
            plan = self._choose_plan(exclude_free=True)
        else:
            plan = self._choose_plan(exclude_free=False)
        return rerouting, plan

    def _choose_plan(self, exclude_free: bool) -> PlanTier:
        mix = dict(self.config.plan_mix)
        if exclude_free:
            mix.pop("free", None)
        tiers = [PlanTier(name) for name in mix]
        return self._rng.weighted_choice(tiers, list(mix.values()))

    def rotate_on_join(self, spec: ProviderSpec) -> bool:
        """Whether the admin rotates the origin IP at JOIN/RESUME.

        Complement of Table V's per-provider unchanged rate.
        """
        return self._rng.bernoulli(1.0 - spec.ip_unchanged_rate)

    def draw_pause_duration(self, provider_name: str) -> Optional[int]:
        """Days until resume, or None for a pause that never resumes.

        The mixture reproduces Fig. 5: just under half resume in one
        day, a quarter within 2-5 days, and ~30% exceed 5 days.
        """
        cfg = self.config
        if self._rng.bernoulli(cfg.pause_never_resume):
            return None
        one_day = cfg.pause_one_day
        if provider_name == "incapsula":
            one_day += cfg.incapsula_one_day_bonus
        u = self._rng.random()
        if u < one_day:
            return 1
        if u < one_day + cfg.pause_short:
            return self._rng.randint(2, 5)
        return 6 + int(self._rng.expovariate(1.0 / cfg.pause_tail_mean_days))

    # ------------------------------------------------------------------
    # Daily step
    # ------------------------------------------------------------------

    def step_site(
        self, site: Website, day: int, rate_scale: float = 1.0
    ) -> List[BehaviorEvent]:
        """Apply one observation interval of administrator behaviour.

        ``rate_scale`` is the interval length in days (the paper's real
        intervals varied between 20 and 30 hours, §IV-B-3): behaviour
        probabilities scale with elapsed time, which is what aggregates
        events into the spikes of Fig. 3.
        """
        if not site.alive or site.multicdn:
            return []
        if site.provider is None:
            return self._step_unprotected(site, day, rate_scale)
        if site.status is GroundTruthStatus.ON:
            return self._step_on(site, day, rate_scale)
        return self._step_paused(site, day, rate_scale)

    @staticmethod
    def _scaled(probability: float, rate_scale: float) -> float:
        return min(1.0, probability * rate_scale)

    def _step_unprotected(
        self, site: Website, day: int, rate_scale: float = 1.0
    ) -> List[BehaviorEvent]:
        if not self._rng.bernoulli(self._scaled(self.config.rates.join_daily, rate_scale)):
            return []
        spec = self.choose_provider()
        rerouting, plan = self.choose_enrollment(spec)
        site.join(
            self.providers[spec.name],
            rerouting,
            plan,
            rotate_origin_ip=self.rotate_on_join(spec),
        )
        return [BehaviorEvent(day, str(site.www), BehaviorKind.JOIN, to_provider=spec.name)]

    def _step_on(
        self, site: Website, day: int, rate_scale: float = 1.0
    ) -> List[BehaviorEvent]:
        assert site.provider is not None
        rates = self.config.rates
        provider_name = site.provider.name
        profile = self.config.departure_profile(provider_name)
        u = self._rng.random() / rate_scale
        if u < rates.leave_daily:
            rehost = self._rng.bernoulli(profile.rehost_after_leave)
            die = (not rehost) and self._rng.bernoulli(profile.die_after_leave)
            site.leave(
                informed=self._rng.bernoulli(profile.informed),
                rehost=rehost,
                die=die,
            )
            return [
                BehaviorEvent(day, str(site.www), BehaviorKind.LEAVE, from_provider=provider_name)
            ]
        u -= rates.leave_daily
        if u < rates.switch_daily:
            spec = self.choose_provider(exclude=provider_name)
            rerouting, plan = self.choose_enrollment(spec)
            site.switch(
                self.providers[spec.name],
                rerouting,
                plan,
                informed=self._rng.bernoulli(profile.informed),
                rotate_origin_ip=self._rng.bernoulli(profile.rotate_on_switch),
            )
            return [
                BehaviorEvent(
                    day,
                    str(site.www),
                    BehaviorKind.SWITCH,
                    from_provider=provider_name,
                    to_provider=spec.name,
                )
            ]
        u -= rates.switch_daily
        if site.provider.build.supports_pause and u < rates.pause_daily:
            duration = self.draw_pause_duration(provider_name)
            resume_on = None if duration is None else day + duration
            site.pause(day, resume_on)
            return [
                BehaviorEvent(day, str(site.www), BehaviorKind.PAUSE, from_provider=provider_name)
            ]
        return []

    def _step_paused(
        self, site: Website, day: int, rate_scale: float = 1.0
    ) -> List[BehaviorEvent]:
        assert site.provider is not None
        provider_name = site.provider.name
        if site.resume_on_day is not None and day >= site.resume_on_day:
            spec = self.specs[provider_name]
            site.resume(rotate_origin_ip=self.rotate_on_join(spec))
            return [
                BehaviorEvent(day, str(site.www), BehaviorKind.RESUME, to_provider=provider_name)
            ]
        # Never-resume pauses eventually turn into departures.
        if site.resume_on_day is None and self._rng.bernoulli(
            self._scaled(self.config.rates.leave_daily, rate_scale)
        ):
            profile = self.config.departure_profile(provider_name)
            site.leave(informed=self._rng.bernoulli(profile.informed))
            return [
                BehaviorEvent(day, str(site.www), BehaviorKind.LEAVE, from_provider=provider_name)
            ]
        return []
