"""Ranked website population generator.

Synthesises an Alexa-style top-N list: pronounceable apex domains over a
weighted TLD mix, each with a hosting provider, an origin server with a
distinctive landing page, and a hosted zone.  Initial DPS adoption is
rank-dependent to reproduce the paper's finding that popular sites adopt
far more (38.98% in the top 10k vs 14.85% overall, §IV-B-2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..dps.catalog import ProviderSpec
from ..dps.multicdn import MultiCdnService
from ..dps.provider import DpsProvider
from ..rng import SeededRng
from ..web.origin import OriginServer
from .admin import AdminBehaviorModel
from .config import WorldConfig
from .hosting import HostingProvider
from .website import Website

__all__ = ["PopulationBuilder", "TLD_WEIGHTS"]

#: TLD mix for generated apexes (weights roughly follow the real top-1M).
TLD_WEIGHTS: Dict[str, float] = {
    "com": 0.60,
    "net": 0.12,
    "org": 0.10,
    "io": 0.08,
    "co": 0.05,
    "info": 0.03,
    "biz": 0.02,
}

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


class PopulationBuilder:
    """Builds the website population and applies initial DPS adoption."""

    def __init__(
        self,
        config: WorldConfig,
        hosting_providers: List[HostingProvider],
        providers: Dict[str, DpsProvider],
        specs: List[ProviderSpec],
        admin: AdminBehaviorModel,
        rng: SeededRng,
        multicdn: Optional[MultiCdnService] = None,
    ) -> None:
        self.config = config
        self.hosting_providers = hosting_providers
        self.providers = providers
        self.specs = {spec.name: spec for spec in specs}
        self.admin = admin
        self.multicdn = multicdn
        self._rng = rng

    # ------------------------------------------------------------------

    def _domain_for_rank(self, rank: int) -> str:
        rng = self._rng
        syllables = "".join(
            rng.choice(_CONSONANTS) + rng.choice(_VOWELS)
            for _ in range(rng.randint(2, 3))
        )
        tld = rng.weighted_choice(list(TLD_WEIGHTS), list(TLD_WEIGHTS.values()))
        return f"{syllables}{rank}.{tld}"

    def _rest_adoption_rate(self) -> float:
        cfg = self.config
        rest_fraction = 1.0 - cfg.top_sites_fraction
        rate = (
            cfg.overall_adoption - cfg.top_sites_fraction * cfg.top_sites_adoption
        ) / rest_fraction
        return max(0.0, min(1.0, rate))

    def build(self) -> List[Website]:
        """Create the full ranked population.

        Adoption is *stratified*: each tier (top sites / the rest) gets
        exactly its calibrated share of adopters, sampled uniformly, so
        small populations still match the paper's 38.98% / 14.85% rates
        instead of drifting with Bernoulli noise.
        """
        cfg = self.config
        rest_rate = self._rest_adoption_rate()
        top_cutoff = max(1, int(cfg.population_size * cfg.top_sites_fraction))
        population: List[Website] = []
        top_candidates: List[Website] = []
        rest_candidates: List[Website] = []
        for rank in range(1, cfg.population_size + 1):
            site = self._build_site(rank)
            population.append(site)
            if site.multicdn:
                self._enroll_multicdn(site)
                continue
            if rank <= top_cutoff:
                top_candidates.append(site)
            else:
                rest_candidates.append(site)
        for candidates, rate in (
            (top_candidates, cfg.top_sites_adoption),
            (rest_candidates, rest_rate),
        ):
            count = round(len(candidates) * rate)
            for site in self._rng.sample(candidates, count):
                spec = self.admin.choose_provider()
                rerouting, plan = self.admin.choose_enrollment(spec)
                site.join(self.providers[spec.name], rerouting, plan)
        return population

    def _build_site(self, rank: int) -> Website:
        hosting = self.hosting_providers[rank % len(self.hosting_providers)]
        apex = self._domain_for_rank(rank)
        origin_ip = hosting.allocate_origin_ip()
        document = HostingProvider.default_document(apex, rank)
        dynamic = self._rng.bernoulli(self.config.dynamic_meta_fraction)
        origin = OriginServer(
            apex,
            origin_ip,
            document,
            dynamic_meta_keys=("csrf-token",) if dynamic else (),
        )
        hosting.deploy_origin(origin)
        zone = hosting.host_zone(apex, origin_ip)
        site = Website(
            rank=rank,
            apex=apex,
            hosting=hosting,
            origin=origin,
            dynamic_meta=dynamic,
            firewall_inclined=self._rng.bernoulli(self.config.firewall_fraction),
            multicdn=(
                self.multicdn is not None
                and self._rng.bernoulli(self.config.multicdn_fraction)
            ),
            has_dev_subdomain=self._rng.bernoulli(self.config.subdomain_leak_fraction),
            has_mx_leak=self._rng.bernoulli(self.config.mx_leak_fraction),
            leak_label=self._rng.choice(
                ["dev", "staging", "test", "ftp", "cpanel", "origin"]
            ),
        )
        # Table I leak records live in the hosting zone from day one.
        for record in site.leak_records():
            zone.add(record)
        # Multi-homed round-robin origins (see WorldConfig).
        if self._rng.bernoulli(self.config.rotating_origin_fraction):
            for _ in range(self.config.origin_pool_size - 1):
                alias = hosting.allocate_origin_ip()
                hosting.register_alias(origin, alias)
                site.origin_pool.append(alias)
        return site

    def _enroll_multicdn(self, site: Website) -> None:
        """Onboard a multi-CDN site at every member platform.

        The event engine flips its CNAME among the members daily; the
        behaviour detector must filter these sites out (§IV-B-3).
        """
        assert self.multicdn is not None
        self.multicdn.enroll(site.www)
        canonical_by_member: Dict[str, object] = {}
        for member in self.multicdn.members:
            provider = self.providers[member]
            instructions = provider.onboard(
                site.www,
                site.origin.ip,
                rerouting=self.specs[member].rerouting_methods[-1],
            )
            canonical_by_member[member] = instructions.cname
        site.multicdn_canonicals = canonical_by_member  # type: ignore[attr-defined]
        first = self.multicdn.provider_for(site.www, day=0)
        site.hosting.set_www_cname(site.apex, canonical_by_member[first])
