"""Websites: ground truth and administrator DNS operations.

A :class:`Website` bundles everything one site owns — its apex, its
``www`` portal hostname, its origin server, its hosting provider — plus
the *ground-truth* DPS state that the measurement pipeline later tries
to recover.  Methods implement the administrator actions of Table IV
at the DNS/portal level: join, leave, pause, resume, switch.

Keeping ground truth alongside the mechanics is what turns the
reproduction into a falsifiable experiment: the paper could only
*measure*; we can measure **and** compare against what actually
happened.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..clock import SECONDS_PER_HOUR
from ..dns.name import DomainName
from ..dps.plans import PlanTier
from ..dps.portal import ReroutingMethod
from ..dps.provider import DpsProvider
from ..errors import SimulationError
from ..web.origin import OriginServer
from .hosting import HostingProvider

__all__ = ["Website", "GroundTruthStatus"]


class GroundTruthStatus(enum.Enum):
    """The site's actual DPS state (what Table III tries to infer)."""

    ON = "ON"
    OFF = "OFF"
    NONE = "NONE"

    def __str__(self) -> str:
        return self.value


class Website:
    """One website of the ranked population."""

    def __init__(
        self,
        rank: int,
        apex: "DomainName | str",
        hosting: HostingProvider,
        origin: OriginServer,
        dynamic_meta: bool = False,
        firewall_inclined: bool = False,
        multicdn: bool = False,
        has_dev_subdomain: bool = False,
        has_mx_leak: bool = False,
        leak_label: str = "dev",
    ) -> None:
        self.rank = rank
        self.apex = DomainName(apex)
        self.www = self.apex.child("www")
        self.hosting = hosting
        self.origin = origin
        self.dynamic_meta = dynamic_meta
        self.firewall_inclined = firewall_inclined
        self.multicdn = multicdn
        #: Table I exposure vectors this site carries: an unprotected
        #: ``dev`` subdomain on the origin host, and an MX record whose
        #: mail host shares the origin machine.
        self.has_dev_subdomain = has_dev_subdomain
        self.has_mx_leak = has_mx_leak
        #: Which auxiliary label the leaked subdomain uses (sites vary:
        #: dev, staging, test, ftp, cpanel …).
        self.leak_label = leak_label
        #: Round-robin origin pool; ``[origin.ip]`` for single-homed
        #: sites.  The event engine rotates the public A record through
        #: the pool daily while the site is unprotected.
        self.origin_pool = [origin.ip]
        self.alive = True

        # Ground-truth DPS state.
        self.provider: Optional[DpsProvider] = None
        self.status = GroundTruthStatus.NONE
        self.rerouting: Optional[ReroutingMethod] = None
        self.plan: Optional[PlanTier] = None
        #: Day index the site is scheduled to resume, if paused
        #: (None = not scheduled; resolves PAUSE → RESUME durations).
        self.resume_on_day: Optional[int] = None
        #: Day the current pause began (for exposure-window accounting).
        self.paused_on_day: Optional[int] = None

    # ------------------------------------------------------------------
    # Table IV administrator actions
    # ------------------------------------------------------------------

    def join(
        self,
        provider: DpsProvider,
        rerouting: ReroutingMethod,
        plan: PlanTier = PlanTier.FREE,
        rotate_origin_ip: bool = False,
    ) -> None:
        """Enable DPS protection (NONE → ON)."""
        if self.provider is not None:
            raise SimulationError(f"{self.www} is already on {self.provider.name}")
        if not self.alive:
            raise SimulationError(f"{self.www} is dead and cannot join a DPS")
        if rotate_origin_ip:
            self._rotate_origin()
        instructions = provider.onboard(
            self.www, self.origin.ip, rerouting, plan,
            imported_records=self.leak_records(),
        )
        if rerouting is ReroutingMethod.NS_BASED:
            self.hosting.delegate_apex_to(self.apex, instructions.nameservers)
        elif rerouting is ReroutingMethod.CNAME_BASED:
            assert instructions.cname is not None
            self.hosting.set_www_cname(self.apex, instructions.cname)
        else:
            assert instructions.edge_ip is not None
            self.hosting.set_www_a(self.apex, instructions.edge_ip)
        if self.firewall_inclined:
            self.origin.set_firewall(provider.prefixes)
        self.provider = provider
        self.rerouting = rerouting
        self.plan = plan
        self.status = GroundTruthStatus.ON
        self.resume_on_day = None
        self.paused_on_day = None

    # -- Table I leak records ----------------------------------------------

    def leak_records(self) -> list:
        """The zone records carrying this site's exposure vectors, with
        the *current* origin address."""
        from ..dns.records import a_record, mx_record

        records = []
        if self.has_dev_subdomain:
            records.append(
                a_record(self.apex.child(self.leak_label), self.origin.ip, ttl=SECONDS_PER_HOUR)
            )
        if self.has_mx_leak:
            mail_host = self.apex.child("mail")
            records.append(mx_record(self.apex, mail_host))
            records.append(a_record(mail_host, self.origin.ip, ttl=SECONDS_PER_HOUR))
        return records

    def refresh_leak_records(self) -> None:
        """Re-point the leak records at the current origin address in
        the site's own hosting zone (admins keep aux records in sync)."""
        if not (self.has_dev_subdomain or self.has_mx_leak):
            return
        zone = self.hosting.zone_of(self.apex)
        from ..dns.records import RecordType

        if self.has_dev_subdomain:
            zone.set_a(self.apex.child(self.leak_label), self.origin.ip, ttl=SECONDS_PER_HOUR)
        if self.has_mx_leak:
            zone.set_a(self.apex.child("mail"), self.origin.ip, ttl=SECONDS_PER_HOUR)

    def pause(self, day: int, resume_on_day: Optional[int]) -> None:
        """Temporarily disable protection (ON → OFF)."""
        if self.provider is None or self.status is not GroundTruthStatus.ON:
            raise SimulationError(f"{self.www} cannot pause (not ON)")
        self.provider.pause(self.www)
        self.status = GroundTruthStatus.OFF
        self.paused_on_day = day
        self.resume_on_day = resume_on_day

    def resume(self, rotate_origin_ip: bool = False) -> None:
        """Re-enable a paused protection (OFF → ON)."""
        if self.provider is None or self.status is not GroundTruthStatus.OFF:
            raise SimulationError(f"{self.www} cannot resume (not OFF)")
        if rotate_origin_ip:
            self._rotate_origin()
            self.provider.update_origin(self.www, self.origin.ip)
        self.provider.resume(self.www)
        self.status = GroundTruthStatus.ON
        self.resume_on_day = None
        self.paused_on_day = None

    def leave(
        self,
        informed: bool = True,
        rehost: bool = False,
        die: bool = False,
    ) -> None:
        """Leave the platform entirely (ON/OFF → NONE)."""
        provider = self._require_provider()
        provider.terminate(self.www, informed=informed)
        if self.rerouting is ReroutingMethod.NS_BASED:
            self.hosting.redelegate_to_self(self.apex)
        self.hosting.set_www_a(self.apex, self.origin.ip)
        self.origin.set_firewall(None)
        self.provider = None
        self.rerouting = None
        self.plan = None
        self.status = GroundTruthStatus.NONE
        self.resume_on_day = None
        self.paused_on_day = None
        if rehost and not die:
            new_ip = self._rotate_origin()
            self.hosting.set_www_a(self.apex, new_ip)
        if die:
            self._retire_pool_extras()
            self.hosting.retire_origin(self.origin)
            self.hosting.remove_www(self.apex)
            self.alive = False

    def switch(
        self,
        new_provider: DpsProvider,
        rerouting: ReroutingMethod,
        plan: PlanTier = PlanTier.FREE,
        informed: bool = True,
        rotate_origin_ip: bool = False,
    ) -> None:
        """Move to another platform (P1 → P2) without an intermediate
        unprotected window."""
        old_provider = self._require_provider()
        if new_provider is old_provider:
            raise SimulationError(f"{self.www} cannot switch to the same provider")
        old_rerouting = self.rerouting
        old_provider.terminate(self.www, informed=informed)
        if rotate_origin_ip:
            self._rotate_origin()
        instructions = new_provider.onboard(
            self.www, self.origin.ip, rerouting, plan,
            imported_records=self.leak_records(),
        )
        if rerouting is ReroutingMethod.NS_BASED:
            self.hosting.delegate_apex_to(self.apex, instructions.nameservers)
        else:
            if old_rerouting is ReroutingMethod.NS_BASED:
                self.hosting.redelegate_to_self(self.apex)
            if rerouting is ReroutingMethod.CNAME_BASED:
                assert instructions.cname is not None
                self.hosting.set_www_cname(self.apex, instructions.cname)
            else:
                assert instructions.edge_ip is not None
                self.hosting.set_www_a(self.apex, instructions.edge_ip)
        if self.firewall_inclined:
            self.origin.set_firewall(new_provider.prefixes)
        self.provider = new_provider
        self.rerouting = rerouting
        self.plan = plan
        self.status = GroundTruthStatus.ON
        self.resume_on_day = None
        self.paused_on_day = None

    # ------------------------------------------------------------------

    @property
    def is_rotating(self) -> bool:
        """True for multi-homed round-robin origins."""
        return len(self.origin_pool) > 1

    def rotate_public_address(self, day: int) -> None:
        """Round-robin DNS: point today's public A record at the next
        pool member (only meaningful while unprotected)."""
        if not self.is_rotating or not self.alive or self.multicdn:
            return
        if self.status is not GroundTruthStatus.NONE:
            return
        current = self.origin_pool[day % len(self.origin_pool)]
        self.hosting.set_www_a(self.apex, current)

    def _rotate_origin(self):
        """Move the origin to a fresh address, collapsing any round-
        robin pool (the admin re-deploys onto one new machine) and
        keeping auxiliary records in sync."""
        self._retire_pool_extras()
        new_ip = self.hosting.move_origin(self.origin)
        self.origin_pool = [new_ip]
        self.refresh_leak_records()
        return new_ip

    def _retire_pool_extras(self) -> None:
        for ip in self.origin_pool:
            if ip != self.origin.ip:
                self.hosting.retire_alias(ip)
        self.origin_pool = [self.origin.ip]

    def _require_provider(self) -> DpsProvider:
        if self.provider is None:
            raise SimulationError(f"{self.www} is not on any DPS platform")
        return self.provider

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        on = self.provider.name if self.provider else "-"
        return f"Website(#{self.rank} {self.apex} {self.status} {on})"
