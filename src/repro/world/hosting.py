"""Hosting providers.

Every website lives somewhere when it is *not* behind a DPS: a hosting
provider owns its origin address space, runs shared authoritative
nameservers for customer zones, and registers the origin web server on
the network fabric.  Hosting ASes are what the RouteViews database maps
non-DPS addresses to, so A-matching correctly classifies an exposed
origin as "not a DPS address".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from ..dns.authoritative import AuthoritativeServer
from ..dns.name import DomainName
from ..dns.records import RecordType, cname_record, ns_record
from ..dns.root import DnsHierarchy
from ..dns.zone import Zone
from ..errors import SimulationError
from ..net.asn import AsRegistry
from ..net.fabric import NetworkFabric
from ..net.ipaddr import AddressAllocator, IPv4Address
from ..web.html import HtmlDocument
from ..web.origin import OriginServer

__all__ = ["HostingProvider"]


class HostingProvider:
    """One web-hosting company: nameservers, address pool, origins."""

    def __init__(
        self,
        name: str,
        asn: int,
        fabric: NetworkFabric,
        hierarchy: DnsHierarchy,
        as_registry: AsRegistry,
        allocator: AddressAllocator,
        prefix_length: int = 16,
    ) -> None:
        self.name = name
        self._fabric = fabric
        self._hierarchy = hierarchy
        prefix = allocator.allocate_prefix(prefix_length)
        as_registry.register(asn, name, [prefix])
        self._pool = AddressAllocator(prefix)
        self.infra_domain = DomainName(f"{name}.net")
        self.ns_hostnames = [
            self.infra_domain.child("ns1"),
            self.infra_domain.child("ns2"),
        ]
        self.server = AuthoritativeServer(self.ns_hostnames[0])
        infra_zone = Zone(self.infra_domain, primary_ns=self.ns_hostnames[0])
        ns_ips: Dict[str, IPv4Address] = {}
        for host in self.ns_hostnames:
            ip = self._pool.allocate_address()
            infra_zone.set_a(host, ip, ttl=SECONDS_PER_DAY)
            fabric.register_dns(ip, self.server)
            ns_ips[str(host)] = ip
        self.server.host_zone(infra_zone)
        hierarchy.delegate_apex(self.infra_domain, self.ns_hostnames, glue=ns_ips)
        self._zones: Dict[DomainName, Zone] = {}

    # -- origin machines -----------------------------------------------------

    def allocate_origin_ip(self) -> IPv4Address:
        """Hand out a fresh origin address from the provider's pool."""
        return self._pool.allocate_address()

    def deploy_origin(self, origin: OriginServer) -> None:
        """Put an origin server on the network at its address."""
        self._fabric.register_http(origin.ip, origin)

    def retire_origin(self, origin: OriginServer) -> None:
        """Take an origin server off the network."""
        self._fabric.unregister_http(origin.ip)

    def register_alias(self, origin: OriginServer, ip: IPv4Address) -> None:
        """Serve the same origin from an additional address (round-robin
        DNS pools / multi-homed origins)."""
        self._fabric.register_http(ip, origin)

    def retire_alias(self, ip: IPv4Address) -> None:
        """Take one pool address off the network."""
        self._fabric.unregister_http(ip)

    def move_origin(self, origin: OriginServer, new_ip: Optional[IPv4Address] = None) -> IPv4Address:
        """Re-address an origin server (the IP-rotation practice)."""
        self._fabric.unregister_http(origin.ip)
        target = new_ip if new_ip is not None else self.allocate_origin_ip()
        origin.move_to(target)
        self._fabric.register_http(origin.ip, origin)
        return target

    # -- customer zones --------------------------------------------------------

    def host_zone(self, apex: "DomainName | str", www_ip: IPv4Address) -> Zone:
        """Create and serve a zone for a customer apex, delegated from
        the registry to this provider's nameservers."""
        apex_name = DomainName(apex)
        zone = Zone(apex_name, primary_ns=self.ns_hostnames[0])
        for ns_host in self.ns_hostnames:
            zone.add(ns_record(apex_name, ns_host))
        zone.set_a(apex_name, www_ip, ttl=SECONDS_PER_HOUR)
        zone.set_a(apex_name.child("www"), www_ip, ttl=SECONDS_PER_HOUR)
        self.server.host_zone(zone)
        self._zones[apex_name] = zone
        self._hierarchy.delegate_apex(apex_name, self.ns_hostnames)
        return zone

    def zone_of(self, apex: "DomainName | str") -> Zone:
        """The hosted zone for a customer apex."""
        try:
            return self._zones[DomainName(apex)]
        except KeyError:
            raise SimulationError(f"{apex} is not hosted at {self.name}") from None

    def delegate_apex_to(self, apex: "DomainName | str", nameservers) -> None:
        """Registrar action on the customer's behalf: delegate the apex
        to external nameservers (joining an NS-rerouting DPS)."""
        self._hierarchy.delegate_apex(DomainName(apex), nameservers)

    def redelegate_to_self(self, apex: "DomainName | str") -> None:
        """Point the registry delegation back at this provider's NS
        (the customer left an NS-rerouting DPS)."""
        self._hierarchy.delegate_apex(DomainName(apex), self.ns_hostnames)

    # -- www record manipulation (what site admins actually edit) ------------------

    def set_www_a(self, apex: "DomainName | str", address: IPv4Address) -> None:
        """Point the www hostname (and apex) at an address."""
        zone = self.zone_of(apex)
        www = DomainName(apex).child("www")
        zone.remove_all(www, RecordType.CNAME)
        zone.set_a(www, address, ttl=SECONDS_PER_HOUR)
        zone.set_a(DomainName(apex), address, ttl=SECONDS_PER_HOUR)

    def set_www_cname(self, apex: "DomainName | str", target: DomainName) -> None:
        """Point the www hostname at a canonical name (CNAME rerouting)."""
        zone = self.zone_of(apex)
        www = DomainName(apex).child("www")
        zone.remove_name(www)
        zone.add(cname_record(www, target, ttl=SECONDS_PER_HOUR))

    def remove_www(self, apex: "DomainName | str") -> None:
        """Drop the www records entirely (the site going dark)."""
        zone = self.zone_of(apex)
        zone.remove_name(DomainName(apex).child("www"))
        zone.remove_all(DomainName(apex), RecordType.A)

    @staticmethod
    def default_document(apex: "DomainName | str", rank: int) -> HtmlDocument:
        """A landing page distinctive enough for HTML verification."""
        apex_name = DomainName(apex)
        return HtmlDocument(
            title=f"{apex_name} — home",
            meta={
                "description": f"Landing page of {apex_name} (rank {rank})",
                "generator": "sitebuilder/2.4",
                "site-id": f"{apex_name}#{rank}",
            },
            body=f"<h1>Welcome to {apex_name}</h1>",
        )
