"""On-disk incremental cache for the lint engine.

The expensive part of a lint run is parsing and walking every module;
the project graph itself is rebuilt from per-module summaries in
microseconds.  The cache therefore stores, per file, the raw per-module
findings plus the :class:`~repro.analysis.graph.ModuleSummary`, keyed by
a content hash — an unchanged tree re-lints with **zero** re-parses
while the project rules still run fresh over the cached summaries (they
are cross-file, so one edited module can change another module's
findings).

Entries are invalidated by content hash and by a *ruleset signature*
(cache schema version + every active rule ID, project rules included —
their inputs are the cached summaries, whose collected evidence grows
with the rule set), so upgrading the linter or changing
``--select``/``--ignore`` never serves stale findings.  A corrupt or unreadable cache file degrades to a cold run —
the cache is an accelerator, never a correctness dependency.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from ..io import atomic_write_json
from .findings import Finding
from .graph import ModuleSummary

__all__ = ["LintCache", "content_hash", "ruleset_signature"]

#: Bump when the cached shape (findings/summary serialization) changes.
#: v2: ModuleSummary grew the REP06x shard-safety evidence (globals,
#: string sets, loads, self writes, merge hazards, mutable defaults).
#: v3: FunctionSummary grew the REP07x effect evidence (effect sites,
#: per-name first-read lines).
CACHE_SCHEMA_VERSION = 3


def content_hash(data: bytes) -> str:
    """Stable short hash of one file's raw bytes."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def ruleset_signature(rule_ids: List[str]) -> str:
    """Signature of the active ruleset (plus cache schema)."""
    payload = json.dumps(
        {"schema": CACHE_SCHEMA_VERSION, "rules": sorted(rule_ids)},
        sort_keys=True,
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()


class LintCache:
    """A JSON file mapping display paths to cached per-module results."""

    def __init__(self, path: str, signature: str,
                 entries: Optional[Dict[str, Any]] = None) -> None:
        self.path = path
        self.signature = signature
        self._entries: Dict[str, Any] = entries or {}
        self._dirty = False

    @classmethod
    def load(cls, path: str, signature: str) -> "LintCache":
        """Read the cache; mismatched signature or corruption → empty."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return cls(path, signature)
        if not isinstance(payload, dict):
            return cls(path, signature)
        if payload.get("signature") != signature:
            return cls(path, signature)
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            return cls(path, signature)
        return cls(path, signature, entries)

    def get(
        self, display_path: str, digest: str
    ) -> Optional[Tuple[List[Finding], ModuleSummary]]:
        """Cached (raw findings, summary) for an unchanged file, or None."""
        entry = self._entries.get(display_path)
        if not isinstance(entry, dict) or entry.get("hash") != digest:
            return None
        try:
            findings = [
                Finding.from_dict(item) for item in entry["findings"]
            ]
            summary = ModuleSummary.from_dict(entry["summary"])
        except (KeyError, TypeError, ValueError):
            return None
        return findings, summary

    def put(self, display_path: str, digest: str,
            findings: List[Finding], summary: ModuleSummary) -> None:
        """Record one file's results (raw, pre-occurrence-numbering)."""
        self._entries[display_path] = {
            "hash": digest,
            "findings": [finding.to_dict() for finding in findings],
            "summary": summary.to_dict(),
        }
        self._dirty = True

    def prune(self, live_paths: List[str]) -> None:
        """Drop entries for files that no longer exist in the run."""
        live = set(live_paths)
        dead = [path for path in self._entries if path not in live]
        for path in dead:
            del self._entries[path]
            self._dirty = True

    def save(self) -> None:
        """Persist if anything changed; write failures are non-fatal."""
        if not self._dirty:
            return
        payload = {
            "signature": self.signature,
            "entries": self._entries,
        }
        try:
            atomic_write_json(self.path, payload, indent=None)
        except OSError:
            pass
        self._dirty = False
