"""The findings model: what a rule reports and how it is identified.

A :class:`Finding` pins a rule violation to a file, line, and column, and
carries a *fingerprint* — a process-stable identity derived from the rule
ID, the file path, and the offending source line's text (not its line
number).  Fingerprints let the baseline survive unrelated edits: inserting
a line above a grandfathered violation does not orphan its entry, while
editing the violating line itself does, which is exactly when a human
should re-review it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict

from ..rng import stable_hash

__all__ = ["Finding", "Severity"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings corrupt determinism or correctness outright;
    ``WARNING`` findings are hygiene/convention violations that make such
    corruption likely or hard to spot.  The self-hosting gate fails on
    both — severity is informational, not a filter.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    column: int
    message: str
    severity: Severity
    source: str = ""
    #: Index among findings sharing (rule_id, path, source text); makes the
    #: fingerprint unique when the same violating line appears twice.
    occurrence: int = 0
    fingerprint: str = field(init=False, default="")

    def __post_init__(self) -> None:
        digest = stable_hash(
            self.rule_id, self.path, self.source.strip(), self.occurrence
        )
        object.__setattr__(self, "fingerprint", format(digest, "016x"))

    @property
    def sort_key(self) -> tuple:
        """Deterministic ordering: by location, then rule."""
        return (self.path, self.line, self.column, self.rule_id, self.occurrence)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (reporters and the cache)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": self.severity.value,
            "message": self.message,
            "source": self.source,
            "occurrence": self.occurrence,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output.

        The fingerprint is *recomputed*, not trusted from the payload —
        a cache can never inject an identity the current code would not
        produce itself.
        """
        return cls(
            rule_id=data["rule"],
            path=data["path"],
            line=data["line"],
            column=data["column"],
            message=data["message"],
            severity=Severity(data["severity"]),
            source=data["source"],
            occurrence=data.get("occurrence", 0),
        )

    def render(self) -> str:
        """The classic one-line compiler format."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )
