"""Fixpoint determinism taint propagation over the project call graph.

Taint *sources* are functions with direct nondeterminism evidence —
ambient ``random``/``time``/OS-entropy use (the REP001/REP002/REP005
patterns) or an explicit :func:`repro.markers.nondeterministic` marker.
Taint propagates backwards along call edges: a caller of a tainted
function is tainted, unless the edge is *sanitized* — the call goes
through an injected ``SeededRng``/``SimulationClock`` parameter, whose
output is reproducible by construction.  Sanitized edges are already
dropped by :meth:`ProjectGraph.call_edges`, so propagation here is a
plain reachability fixpoint (a breadth-first search from the sources
over reversed edges), which converges even through mutual recursion
because each function is visited at most once.

Each tainted function records a witness *chain* down to one source, so
findings can show the reviewer the exact call path that leaks
nondeterminism instead of a bare verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .graph import FunctionKey, ProjectGraph, TaintReason

__all__ = ["TaintResult", "TaintTrace", "propagate_taint"]


@dataclass(frozen=True)
class TaintTrace:
    """Why one function is tainted.

    ``chain`` runs from the function itself down to the source
    (inclusive at both ends); a direct source has a one-element chain.
    ``reasons`` are the *source's* direct evidence.
    """

    chain: Tuple[FunctionKey, ...]
    reasons: Tuple[TaintReason, ...]

    @property
    def source(self) -> FunctionKey:
        return self.chain[-1]

    @property
    def is_direct(self) -> bool:
        return len(self.chain) == 1


@dataclass
class TaintResult:
    """The converged taint set plus the edges it was computed over."""

    tainted: Dict[FunctionKey, TaintTrace]
    edges: Dict[FunctionKey, List[FunctionKey]]

    def trace(self, key: FunctionKey) -> Optional[TaintTrace]:
        return self.tainted.get(key)


def _direct_sources(graph: ProjectGraph) -> List[Tuple[FunctionKey, Tuple[TaintReason, ...]]]:
    sources: List[Tuple[FunctionKey, Tuple[TaintReason, ...]]] = []
    for summary, fn in graph.functions():
        if summary.sanctioned:
            # rng.py / clock.py *define* the sanctioned wrappers; their
            # internal entropy use is the whole point, not a leak.
            continue
        if fn.taint_reasons:
            sources.append(
                ((summary.module, fn.qualname), tuple(fn.taint_reasons))
            )
    return sources


def propagate_taint(graph: ProjectGraph) -> TaintResult:
    """Run the reachability fixpoint; deterministic across processes.

    Work is processed in sorted order at every step, so when a function
    is reachable from several sources the recorded witness chain is the
    same on every run (shortest, ties broken lexicographically).
    """
    edges = graph.call_edges()
    reverse: Dict[FunctionKey, List[FunctionKey]] = {}
    for caller, callees in edges.items():
        for callee in callees:
            reverse.setdefault(callee, []).append(caller)
    for callers in reverse.values():
        callers.sort()

    tainted: Dict[FunctionKey, TaintTrace] = {}
    frontier: List[FunctionKey] = []
    for key, reasons in sorted(_direct_sources(graph)):
        tainted[key] = TaintTrace(chain=(key,), reasons=reasons)
        frontier.append(key)

    frontier.sort()
    while frontier:
        next_frontier: List[FunctionKey] = []
        for callee in frontier:
            trace = tainted[callee]
            for caller in reverse.get(callee, ()):
                if caller in tainted:
                    continue
                tainted[caller] = TaintTrace(
                    chain=(caller,) + trace.chain,
                    reasons=trace.reasons,
                )
                next_frontier.append(caller)
        next_frontier.sort()
        frontier = next_frontier

    return TaintResult(tainted=tainted, edges=edges)
