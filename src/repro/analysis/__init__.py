"""Static analysis for determinism and simulation invariants.

The whole reproduction rests on bit-for-bit determinism: every figure and
table replays a seeded world through :class:`~repro.rng.SeededRng` and
:class:`~repro.clock.SimulationClock`.  A single stray ``random.random()``,
wall-clock read, or unordered-``set`` iteration silently corrupts results
without failing any test.  This package enforces those invariants with an
AST-based lint engine instead of review-time convention:

* :mod:`repro.analysis.findings` — the :class:`Finding` / :class:`Severity`
  model with process-stable fingerprints;
* :mod:`repro.analysis.rules` — the :class:`Rule` base class and registry;
* :mod:`repro.analysis.determinism`, :mod:`repro.analysis.clockrules`,
  :mod:`repro.analysis.hygiene`, :mod:`repro.analysis.robustness` —
  the built-in rule packs (REP0xx);
* :mod:`repro.analysis.baseline` — the grandfathered-violation allowlist;
* :mod:`repro.analysis.engine` — the :class:`Analyzer` driver;
* :mod:`repro.analysis.report` — text and JSON reporters.

The engine self-hosts: a tier-1 test lints ``src/repro`` itself and fails
on any non-baselined finding, so every PR is lint-clean by construction.

Example
-------
>>> from repro.analysis import Analyzer
>>> findings = Analyzer().run(["src/repro"])  # doctest: +SKIP
"""

from __future__ import annotations

from .baseline import Baseline, BaselineEntry
from .engine import Analyzer
from .findings import Finding, Severity
from .report import render_json, render_text
from .rules import ModuleContext, Rule, RuleRegistry, default_registry

# Importing the rule packs registers their rules with the default registry.
from . import clockrules, determinism, hygiene, robustness  # noqa: F401  (side effect)

__all__ = [
    "Analyzer",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ModuleContext",
    "Rule",
    "RuleRegistry",
    "Severity",
    "default_registry",
    "render_json",
    "render_text",
]
