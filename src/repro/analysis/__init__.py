"""Static analysis for determinism and simulation invariants.

The whole reproduction rests on bit-for-bit determinism: every figure and
table replays a seeded world through :class:`~repro.rng.SeededRng` and
:class:`~repro.clock.SimulationClock`.  A single stray ``random.random()``,
wall-clock read, or unordered-``set`` iteration silently corrupts results
without failing any test.  This package enforces those invariants with an
AST-based lint engine instead of review-time convention:

* :mod:`repro.analysis.findings` — the :class:`Finding` / :class:`Severity`
  model with process-stable fingerprints;
* :mod:`repro.analysis.rules` — the :class:`Rule` / :class:`ProjectRule`
  base classes and registry;
* :mod:`repro.analysis.determinism`, :mod:`repro.analysis.clockrules`,
  :mod:`repro.analysis.hygiene`, :mod:`repro.analysis.robustness` —
  the built-in per-module rule packs (REP0xx);
* :mod:`repro.analysis.graph` / :mod:`repro.analysis.taint` /
  :mod:`repro.analysis.graphrules` — the project graph, the determinism
  taint fixpoint, and the whole-program REP04x rules;
* :mod:`repro.analysis.shardrules` — the REP06x shard-safety rules
  auditing the declared shard boundary (``repro.markers``) ahead of the
  multiprocess study runner;
* :mod:`repro.analysis.effects` — the REP07x purity decade: an
  interprocedural effect-inference pass enforcing the declared
  ``@pure_function`` contract that shard merging and resume depend on;
* :mod:`repro.analysis.suppressions` — inline ``# repro: allow[...]``
  comments and the REP050 stale-suppression rule;
* :mod:`repro.analysis.baseline` — the grandfathered-violation allowlist;
* :mod:`repro.analysis.cache` — the content-hash incremental cache;
* :mod:`repro.analysis.engine` — the :class:`Analyzer` driver;
* :mod:`repro.analysis.report` / :mod:`repro.analysis.sarif` — text,
  JSON, and SARIF 2.1.0 reporters.

The engine self-hosts: a tier-1 test lints ``src/repro`` itself and fails
on any non-baselined finding, so every PR is lint-clean by construction.

Example
-------
>>> from repro.analysis import Analyzer
>>> findings = Analyzer().run(["src/repro"])  # doctest: +SKIP
"""

from __future__ import annotations

from .baseline import Baseline, BaselineEntry
from .engine import Analyzer, LintResult, LintStats
from .findings import Finding, Severity
from .graph import ModuleSummary, ProjectGraph, summarize_module
from .report import render_json, render_text
from .rules import (
    ModuleContext,
    ProjectRule,
    Rule,
    RuleRegistry,
    default_registry,
)
from .effects import EffectsResult, infer_effects
from .sarif import render_sarif
from .suppressions import Suppression, scan_suppressions
from .taint import TaintResult, propagate_taint

# Importing the rule packs registers their rules with the default registry.
from . import clockrules, determinism, hygiene, robustness  # noqa: F401  (side effect)
from . import effects, graphrules, shardrules, suppressions  # noqa: F401  (side effect)

__all__ = [
    "Analyzer",
    "Baseline",
    "BaselineEntry",
    "EffectsResult",
    "Finding",
    "LintResult",
    "LintStats",
    "ModuleContext",
    "ModuleSummary",
    "ProjectGraph",
    "ProjectRule",
    "Rule",
    "RuleRegistry",
    "Severity",
    "Suppression",
    "TaintResult",
    "default_registry",
    "infer_effects",
    "propagate_taint",
    "render_json",
    "render_sarif",
    "render_text",
    "scan_suppressions",
    "summarize_module",
]
