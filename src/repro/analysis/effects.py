"""Interprocedural effect inference and the REP07x purity decade.

The shard merge (byte-identical payloads, PR 7) and the order-free
traffic admission (PR 8) both rest on one contract: verdict-style
functions are *pure functions of their arguments*.  Until now that was
asserted by hypothesis tests only.  This pass makes it checked-in:

* :func:`infer_effects` computes, per function, an effect summary over
  the :class:`~repro.analysis.graph.ProjectGraph` — which of
  ``writes-global`` / ``writes-captured`` / ``writes-self`` /
  ``writes-param`` / ``reads-global`` / ``draws-rng`` / ``reads-clock``
  / ``performs-io`` / ``calls-unknown`` the function exhibits, each
  with a witness :class:`EffectTrace` down to the carrier statement.
  Direct evidence comes from the collector's
  :class:`~repro.analysis.graph.EffectSite` records plus the taint
  pass's source seeds; propagation is the same sorted-frontier
  fixpoint :mod:`repro.analysis.taint` uses, run once per effect kind,
  so witness chains are byte-identical across runs and processes.
* The boundary is declared with :func:`repro.markers.pure_function`.
  The decade is inert until a tree opts in, and load-bearing from the
  first declaration on — exactly like the REP06x shard markers.

Rules:

* **REP070** — a declared-pure function with a *direct* inferred
  effect (write, RNG draw, clock read, I/O), anchored at the offending
  statement.
* **REP071** — an impure callee *reachable* from a declared-pure
  function, with the full call-chain witness (the REP040 shape).
* **REP072** — a declared-pure function reading module-level mutable
  state not passed as a parameter, directly or through helpers (the
  ``admit_dns`` regression class: a verdict that consults engine/world
  state stops being a function of its inputs).
* **REP073** — a declared ``@merge_point`` calling effectful helpers
  whose writes escape the merge (module globals, captured closures) —
  extending REP061 from *order* to *effects*.

Sanctioned surfaces: the ``rng.py`` / ``clock.py`` wrapper modules
never seed effects (their internals are the whole point), and neither
does :mod:`repro.obs.metrics` — counter increments are the sanctioned
observability channel, merged by commutative sum, so recording a
verdict does not make the verdict impure.  Calls through injected
``SeededRng`` / ``SimulationClock`` parameters are already dropped from
the call graph by the sanitizer logic, so effects cannot propagate
through them either.  ``calls-unknown`` (a method call on a receiver
the conservative resolver cannot place) is informational only: it is
reported in summaries for auditability but never raised as a finding,
because nearly every stdlib method call is "unknown" to a
project-scoped resolver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from .findings import Finding, Severity
from .graph import (
    FunctionKey,
    FunctionSummary,
    ModuleSummary,
    ProjectGraph,
    SANITIZED,
)
from .rules import ProjectRule, register

__all__ = [
    "EFFECT_KINDS",
    "EFFECT_SANCTIONED_MODULES",
    "AmbientStateReadRule",
    "EffectAtom",
    "EffectTrace",
    "EffectsResult",
    "ImpureMergeHelperRule",
    "PureFunctionEffectRule",
    "TransitiveImpurityRule",
    "infer_effects",
]

#: Modules whose internal writes are a sanctioned observability channel:
#: MetricsRegistry counters are injectable, deterministic, and merge by
#: commutative sum, so incrementing one does not perturb any verdict.
EFFECT_SANCTIONED_MODULES = frozenset({"repro.obs.metrics"})

#: Methods whose ``self.x`` writes are construction, not mutation
#: (kept in sync with the REP063 rule's set by the registry tests).
_CTOR_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

#: The effect lattice atoms, in reporting order.
EFFECT_KINDS: Tuple[str, ...] = (
    "writes-global",
    "writes-captured",
    "writes-self",
    "writes-param",
    "reads-global",
    "draws-rng",
    "reads-clock",
    "performs-io",
    "calls-unknown",
)

#: Kinds that break a ``@pure_function`` declaration outright (REP070/
#: REP071).  ``reads-global`` is REP072's, ``calls-unknown`` is data.
_IMPURE_KINDS = (
    "writes-global", "writes-captured", "writes-self", "writes-param",
    "draws-rng", "reads-clock", "performs-io",
)
#: Write kinds that outlive a merge-point call (REP073): parameter and
#: self writes stay inside the merge's own state; global and captured
#: writes escape it.
_ESCAPING_WRITES = ("writes-global", "writes-captured")

#: Call kinds whose empty resolution means "unknown receiver".  Plain
#: ``name`` calls are excluded — unresolved names are stdlib builtins.
_UNKNOWN_CALL_KINDS = frozenset({"obj", "other", "param", "selfattr", "typed"})


@dataclass(frozen=True)
class EffectAtom:
    """One concrete piece of effect evidence inside one function."""

    kind: str
    target: str
    detail: str
    line: int
    column: int = 0
    source: str = ""


@dataclass(frozen=True)
class EffectTrace:
    """Why one function carries an effect kind.

    ``chain`` runs from the function itself down to the *carrier* — the
    function holding the direct evidence (one element when the function
    is the carrier itself).
    """

    chain: Tuple[FunctionKey, ...]
    atom: EffectAtom

    @property
    def carrier(self) -> FunctionKey:
        return self.chain[-1]

    @property
    def is_direct(self) -> bool:
        return len(self.chain) == 1


@dataclass
class EffectsResult:
    """Converged per-function effect summaries plus their inputs."""

    direct: Dict[FunctionKey, Tuple[EffectAtom, ...]]
    traces: Dict[FunctionKey, Dict[str, EffectTrace]]
    edges: Dict[FunctionKey, List[FunctionKey]]

    def trace(self, key: FunctionKey, kind: str):
        """The first-wins witness trace for one (function, kind)."""
        return self.traces.get(key, {}).get(kind)

    def kinds(self, key: FunctionKey) -> Tuple[str, ...]:
        """The function's effect summary, in lattice order."""
        present = self.traces.get(key, {})
        return tuple(kind for kind in EFFECT_KINDS if kind in present)


def _chain_str(chain: Tuple[FunctionKey, ...]) -> str:
    return " -> ".join(f"{module}.{qualname}" for module, qualname in chain)


def _key_str(key: FunctionKey) -> str:
    return f"{key[0]}.{key[1]}"


def _effect_sanctioned(summary: ModuleSummary) -> bool:
    return summary.sanctioned or summary.module in EFFECT_SANCTIONED_MODULES


def _classify_write(graph: ProjectGraph, summary: ModuleSummary,
                    fn: FunctionSummary, root: str) -> str:
    """Which write kind a store through ``root`` is, from ``fn``."""
    if graph.resolve_global(summary, root) is not None:
        return "writes-global"
    if root in summary.bindings:
        # Writing through an import binding mutates another module's
        # state (``config.DEBUG = True``).
        return "writes-global"
    if (
        fn.parent is not None
        and root not in summary.functions
        and root not in summary.classes
    ):
        # A nested function writing a free root it can only have
        # captured from the enclosing scope.
        return "writes-captured"
    return "writes-global"


def _direct_atoms(graph: ProjectGraph, summary: ModuleSummary,
                  fn: FunctionSummary) -> List[EffectAtom]:
    """Direct effect evidence for one function, in a stable order."""
    atoms: List[EffectAtom] = []
    for site in fn.effects:
        if site.kind == "io":
            atoms.append(
                EffectAtom(
                    "performs-io", site.target, site.detail,
                    site.line, site.column, site.source,
                )
            )
            continue
        root = site.root
        if root == "self":
            if fn.name in _CTOR_METHODS:
                continue  # constructing fresh state is not an effect
            kind = "writes-self"
        else:
            param = fn.param(root)
            if param is not None:
                if param.is_injected:
                    continue  # injected rng/clock use is sanitized
                kind = "writes-param"
            else:
                kind = _classify_write(graph, summary, fn, root)
        atoms.append(
            EffectAtom(
                kind, site.target, site.detail,
                site.line, site.column, site.source,
            )
        )
    for reason in fn.taint_reasons:
        kind = "reads-clock" if reason.kind == "wall-clock" else "draws-rng"
        atoms.append(
            EffectAtom(kind, reason.detail, f"{reason.kind}: {reason.detail}",
                       reason.line)
        )
    for name in fn.loads:
        resolved = graph.resolve_global(summary, name)
        if resolved is None:
            continue
        owner, site = resolved
        atoms.append(
            EffectAtom(
                "reads-global", name,
                f"reads module-level {site.kind} '{site.name}'"
                f" ({owner.path}:{site.line})",
                fn.load_lines.get(name, fn.line),
            )
        )
    for call in fn.calls:
        if call.kind not in _UNKNOWN_CALL_KINDS:
            continue
        resolved = graph.resolve_call(summary, fn, call)
        if resolved != SANITIZED and not resolved:
            atoms.append(
                EffectAtom(
                    "calls-unknown", call.name,
                    f"method call '.{call.name}()' on an unresolvable"
                    " receiver",
                    call.line,
                )
            )
    return atoms


def infer_effects(graph: ProjectGraph) -> EffectsResult:
    """Run the per-kind reachability fixpoints; deterministic everywhere.

    The result is memoized on the graph instance (all four REP07x rules
    consume it within one engine run), mirroring how the taint result
    is cheap enough to recompute but the effects pass — nine kinds over
    the full call graph — is not.
    """
    cached = getattr(graph, "_effects_result", None)
    if cached is not None:
        return cached

    direct: Dict[FunctionKey, Tuple[EffectAtom, ...]] = {}
    for summary, fn in graph.functions():
        if _effect_sanctioned(summary):
            continue
        atoms = _direct_atoms(graph, summary, fn)
        if atoms:
            direct[(summary.module, fn.qualname)] = tuple(atoms)

    edges = graph.call_edges()
    reverse: Dict[FunctionKey, List[FunctionKey]] = {}
    for caller, callees in edges.items():
        for callee in callees:
            reverse.setdefault(callee, []).append(caller)
    for callers in reverse.values():
        callers.sort()

    traces: Dict[FunctionKey, Dict[str, EffectTrace]] = {}
    for kind in EFFECT_KINDS:
        kind_traces: Dict[FunctionKey, EffectTrace] = {}
        frontier: List[FunctionKey] = []
        for key in sorted(direct):
            for atom in direct[key]:
                if atom.kind == kind:
                    kind_traces[key] = EffectTrace(chain=(key,), atom=atom)
                    frontier.append(key)
                    break
        if kind != "calls-unknown":
            # Unknown-call evidence stays local: propagating it would
            # saturate the graph with stdlib noise.
            frontier.sort()
            while frontier:
                next_frontier: List[FunctionKey] = []
                for callee in frontier:
                    trace = kind_traces[callee]
                    for caller in reverse.get(callee, ()):
                        if caller in kind_traces:
                            continue
                        kind_traces[caller] = EffectTrace(
                            chain=(caller,) + trace.chain,
                            atom=trace.atom,
                        )
                        next_frontier.append(caller)
                next_frontier.sort()
                frontier = next_frontier
        for key, trace in kind_traces.items():
            traces.setdefault(key, {})[kind] = trace

    result = EffectsResult(direct=direct, traces=traces, edges=edges)
    graph._effects_result = result
    return result


def _pure_functions(graph: ProjectGraph):
    for summary, fn in graph.functions():
        if fn.is_pure_function:
            yield summary, fn


@register
class PureFunctionEffectRule(ProjectRule):
    """REP070: a declared-pure function with a direct inferred effect."""

    rule_id = "REP070"
    title = "declared @pure_function has a direct effect"
    severity = Severity.ERROR

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        result = infer_effects(graph)
        for summary, fn in _pure_functions(graph):
            if not self.applies_to_summary(summary):
                continue
            key = (summary.module, fn.qualname)
            reported = set()
            for atom in result.direct.get(key, ()):
                if atom.kind not in _IMPURE_KINDS:
                    continue
                dedup = (atom.kind, atom.target, atom.line)
                if dedup in reported:
                    continue
                reported.add(dedup)
                # Mutation/IO sites carry their own source line; the
                # taint-derived atoms anchor at the declaration.
                if atom.source:
                    line, column, source = atom.line, atom.column, atom.source
                else:
                    line, column, source = fn.line, fn.column, fn.source
                yield Finding(
                    rule_id=self.rule_id,
                    path=summary.path,
                    line=line,
                    column=column,
                    message=(
                        f"'{fn.qualname}' is declared @pure_function but"
                        f" {atom.kind} (line {atom.line}): {atom.detail};"
                        " remove the effect or drop the declaration"
                    ),
                    severity=self.severity,
                    source=source,
                )


@register
class TransitiveImpurityRule(ProjectRule):
    """REP071: an impure callee is reachable from a declared-pure fn."""

    rule_id = "REP071"
    title = "impure callee reachable from @pure_function"
    severity = Severity.ERROR

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        result = infer_effects(graph)
        for summary, fn in _pure_functions(graph):
            if not self.applies_to_summary(summary):
                continue
            key = (summary.module, fn.qualname)
            for kind in _IMPURE_KINDS:
                trace = result.trace(key, kind)
                if trace is None or trace.is_direct:
                    continue  # direct effects are REP070's
                atom = trace.atom
                yield Finding(
                    rule_id=self.rule_id,
                    path=summary.path,
                    line=fn.line,
                    column=fn.column,
                    message=(
                        f"'{fn.qualname}' is declared @pure_function but"
                        f" reaches an impure callee:"
                        f" {_chain_str(trace.chain)} ({kind}:"
                        f" {atom.detail} in {_key_str(trace.carrier)} at"
                        f" line {atom.line}); purify the callee, route"
                        " around it, or drop the declaration"
                    ),
                    severity=self.severity,
                    source=fn.source,
                )


@register
class AmbientStateReadRule(ProjectRule):
    """REP072: a pure-verdict function reads state not passed to it."""

    rule_id = "REP072"
    title = "@pure_function reads ambient module state"
    severity = Severity.ERROR

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        result = infer_effects(graph)
        for summary, fn in _pure_functions(graph):
            if not self.applies_to_summary(summary):
                continue
            key = (summary.module, fn.qualname)
            reported = set()
            for atom in result.direct.get(key, ()):
                if atom.kind != "reads-global" or atom.target in reported:
                    continue
                reported.add(atom.target)
                yield Finding(
                    rule_id=self.rule_id,
                    path=summary.path,
                    line=fn.line,
                    column=fn.column,
                    message=(
                        f"'{fn.qualname}' is declared @pure_function but"
                        f" {atom.detail} at line {atom.line}; its verdict"
                        " depends on state not passed as a parameter —"
                        " pass the value in or freeze the global"
                    ),
                    severity=self.severity,
                    source=fn.source,
                )
            trace = result.trace(key, "reads-global")
            if trace is not None and not trace.is_direct:
                atom = trace.atom
                yield Finding(
                    rule_id=self.rule_id,
                    path=summary.path,
                    line=fn.line,
                    column=fn.column,
                    message=(
                        f"'{fn.qualname}' is declared @pure_function but"
                        " reads ambient module state through a helper:"
                        f" {_chain_str(trace.chain)} ({atom.detail} in"
                        f" {_key_str(trace.carrier)} at line {atom.line});"
                        " pass the value in or freeze the global"
                    ),
                    severity=self.severity,
                    source=fn.source,
                )


@register
class ImpureMergeHelperRule(ProjectRule):
    """REP073: a merge point calls helpers whose writes escape it."""

    rule_id = "REP073"
    title = "merge point reaches an escaping write"
    severity = Severity.ERROR

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        result = infer_effects(graph)
        for summary, fn in graph.functions():
            if not fn.is_merge_point or not self.applies_to_summary(summary):
                continue
            key = (summary.module, fn.qualname)
            for kind in _ESCAPING_WRITES:
                trace = result.trace(key, kind)
                if trace is None or trace.is_direct:
                    # The merge point's own global writes are REP060/
                    # REP070 territory; this rule audits its helpers.
                    continue
                atom = trace.atom
                yield Finding(
                    rule_id=self.rule_id,
                    path=summary.path,
                    line=fn.line,
                    column=fn.column,
                    message=(
                        f"merge point '{fn.qualname}' calls an effectful"
                        f" helper whose writes escape the merge:"
                        f" {_chain_str(trace.chain)} ({kind}:"
                        f" {atom.detail} in {_key_str(trace.carrier)} at"
                        f" line {atom.line}); merge output must depend"
                        " only on the shard payloads it is handed"
                    ),
                    severity=self.severity,
                    source=fn.source,
                )
