"""Clock-discipline rules (REP010–REP011).

All simulated time flows through :class:`~repro.clock.SimulationClock`.
These rules catch code that hard-codes second arithmetic or smuggles raw
timestamps around the clock.  ``clock.py`` itself is exempt — it is the
one place allowed to define what a day is.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..clock import DAYS_PER_WEEK, SECONDS_PER_DAY, SECONDS_PER_HOUR
from .findings import Severity
from .rules import ModuleContext, Rule, register

__all__ = ["MagicTimeLiteralRule", "RawTimestampParameterRule"]

#: Integer literal → the named constant that should replace it.  Built
#: from the canonical constants so this rule can never drift from
#: :mod:`repro.clock` (and passes its own check).
_MAGIC_TIME_LITERALS = {
    SECONDS_PER_HOUR: "SECONDS_PER_HOUR",
    SECONDS_PER_DAY: "SECONDS_PER_DAY",
    SECONDS_PER_DAY * DAYS_PER_WEEK: "SECONDS_PER_DAY * DAYS_PER_WEEK",
}

#: Parameter names that smell like a raw wall/epoch timestamp.
_TIMESTAMP_PARAM_NAMES = frozenset(
    {"timestamp", "timestamps", "wall_time", "unix_time", "unix_ts",
     "epoch", "epoch_seconds", "wallclock"}
)


@register
class MagicTimeLiteralRule(Rule):
    """REP010: magic second-count literals and clock internals.

    ``3600``/``86400``/``604800`` literals duplicate the definitions in
    :mod:`repro.clock`; when the paper's day/week structure is tuned they
    drift apart silently.  Also flags reaching into another object's
    private ``_now`` — clock state is read through ``.now`` only.
    """

    rule_id = "REP010"
    title = "magic time literal"
    severity = Severity.WARNING
    exempt_basenames = frozenset({"clock.py"})

    def check(self, module: ModuleContext) -> Iterator:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Constant)
                and type(node.value) is int
                and node.value in _MAGIC_TIME_LITERALS
            ):
                constant = _MAGIC_TIME_LITERALS[node.value]
                yield self.finding(
                    module,
                    node,
                    f"magic literal {node.value}; use repro.clock."
                    f"{constant}",
                )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "_now"
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                )
            ):
                yield self.finding(
                    module,
                    node,
                    "access to private clock state '_now'; read "
                    "SimulationClock.now instead",
                )


@register
class RawTimestampParameterRule(Rule):
    """REP011: functions that accept raw timestamps.

    A parameter named ``timestamp``/``epoch_seconds``/… means the caller
    is passing loose integers around the clock, losing the monotonicity
    guarantee.  Pass the :class:`SimulationClock` (or a day/week index)
    instead.
    """

    rule_id = "REP011"
    title = "raw timestamp parameter"
    severity = Severity.WARNING
    exempt_basenames = frozenset({"clock.py"})

    def check(self, module: ModuleContext) -> Iterator:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            every_arg = (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            )
            for arg in every_arg:
                if arg.arg in _TIMESTAMP_PARAM_NAMES:
                    yield self.finding(
                        module,
                        arg,
                        f"parameter '{arg.arg}' bypasses the simulation "
                        "clock; pass the SimulationClock or a day index",
                    )
