"""SARIF 2.1.0 reporter for GitHub code scanning.

One run, one tool (``repro-lint``), every registered rule in the driver
metadata so ``ruleIndex`` resolves.  Live findings become plain results;
baselined findings are included with an ``external`` suppression and
inline-suppressed findings with an ``inSource`` suppression — code
scanning then shows them as suppressed instead of resolving and
re-opening alerts whenever a baseline entry moves.  The engine's cache
counters ride along in ``runs[0].properties`` so CI can assert the
warm-cache zero-reparse invariant from the artifact alone.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .. import __version__
from .baseline import Baseline
from .findings import Finding, Severity
from .rules import RuleRegistry, default_registry

__all__ = ["render_sarif", "sarif_payload"]

_SARIF_VERSION = "2.1.0"
_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
#: Key under ``partialFingerprints``; versioned so a future fingerprint
#: scheme change does not collide with old alerts.
_FINGERPRINT_KEY = "reproLint/v1"

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_metadata(registry: RuleRegistry) -> List[Dict[str, Any]]:
    rules: List[Dict[str, Any]] = []
    for rule_id in registry.ids():
        rule_cls = registry.get(rule_id)
        rules.append({
            "id": rule_id,
            "name": rule_cls.__name__,
            "shortDescription": {"text": rule_cls.title or rule_id},
            "defaultConfiguration": {
                "level": _LEVELS[rule_cls.severity],
            },
        })
    return rules


def _result(
    finding: Finding,
    rule_index: Dict[str, int],
    suppression: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule_id,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "SRCROOT",
                },
                "region": {
                    "startLine": max(1, finding.line),
                    "startColumn": finding.column + 1,
                },
            },
        }],
        "partialFingerprints": {_FINGERPRINT_KEY: finding.fingerprint},
    }
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    if suppression is not None:
        result["suppressions"] = [suppression]
    return result


def sarif_payload(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding] = (),
    baseline: Optional[Baseline] = None,
    inline_suppressed: Sequence[Finding] = (),
    stats: Optional[Dict[str, Any]] = None,
    registry: Optional[RuleRegistry] = None,
) -> Dict[str, Any]:
    """Build the SARIF log as a plain dict (see :func:`render_sarif`)."""
    registry = registry or default_registry()
    rules = _rule_metadata(registry)
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}

    results: List[Dict[str, Any]] = []
    for finding in findings:
        results.append(_result(finding, rule_index))
    for finding in suppressed:
        justification = (
            baseline.comment_for(finding.fingerprint) if baseline else ""
        )
        entry: Dict[str, Any] = {"kind": "external"}
        if justification:
            entry["justification"] = justification
        results.append(_result(finding, rule_index, suppression=entry))
    for finding in inline_suppressed:
        results.append(
            _result(finding, rule_index, suppression={"kind": "inSource"})
        )

    properties: Dict[str, Any] = {}
    if stats is not None:
        properties["cacheStats"] = dict(stats)
    if baseline is not None:
        live = list(findings) + list(suppressed)
        properties["staleBaselineEntries"] = [
            {
                "rule": entry.rule_id,
                "path": entry.path,
                "fingerprint": entry.fingerprint,
                "comment": entry.comment,
                "reason": reason,
            }
            for entry, reason in baseline.stale_reasons(
                live, inline_suppressed
            )
        ]

    run: Dict[str, Any] = {
        "tool": {
            "driver": {
                "name": "repro-lint",
                "version": __version__,
                "informationUri": "https://example.invalid/repro-lint",
                "rules": rules,
            },
        },
        "columnKind": "utf16CodeUnits",
        "results": results,
    }
    if properties:
        run["properties"] = properties
    return {
        "$schema": _SCHEMA_URI,
        "version": _SARIF_VERSION,
        "runs": [run],
    }


def render_sarif(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding] = (),
    baseline: Optional[Baseline] = None,
    inline_suppressed: Sequence[Finding] = (),
    stats: Optional[Dict[str, Any]] = None,
    registry: Optional[RuleRegistry] = None,
) -> str:
    """Render a SARIF 2.1.0 log for GitHub code scanning upload."""
    return json.dumps(
        sarif_payload(
            findings,
            suppressed,
            baseline,
            inline_suppressed=inline_suppressed,
            stats=stats,
            registry=registry,
        ),
        indent=2,
        sort_keys=True,
    )
