"""Determinism rules (REP001–REP005).

These catch the ways a simulated experiment silently stops being
reproducible: ambient randomness, wall-clock reads, unordered-set
iteration, and Python's per-process string-hash salt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from .findings import Severity
from .rules import ModuleContext, Rule, register

__all__ = [
    "AmbientRandomRule",
    "WallClockRule",
    "UnorderedSetIterationRule",
    "SaltedHashRule",
    "OsEntropyRule",
]

#: ``time`` module attributes that read the host clock.
_WALL_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "localtime",
        "gmtime",
    }
)
#: ``datetime``/``date`` constructors that read the host clock.
_WALL_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
#: Annotation names that denote an unordered collection.
_SET_ANNOTATIONS = frozenset(
    {"Set", "FrozenSet", "AbstractSet", "MutableSet", "set", "frozenset"}
)


def _attr_root(node: ast.Attribute) -> str:
    """The leftmost name of a dotted access ('' when not a plain name)."""
    value = node.value
    while isinstance(value, ast.Attribute):
        value = value.value
    return value.id if isinstance(value, ast.Name) else ""


@register
class AmbientRandomRule(Rule):
    """REP001: randomness outside :class:`~repro.rng.SeededRng`.

    Flags ``import random`` / ``from random import ...`` (including
    ``numpy.random``) and every ``random.<attr>`` use.  All stochastic
    behaviour must flow through a forked :class:`SeededRng` stream;
    ``rng.py``'s own wrapper import is grandfathered in the baseline.
    """

    rule_id = "REP001"
    title = "ambient randomness"
    severity = Severity.ERROR

    def check(self, module: ModuleContext) -> Iterator:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.endswith(".random"):
                        yield self.finding(
                            module,
                            node,
                            f"import of '{alias.name}' bypasses SeededRng; "
                            "draw from a forked SeededRng stream instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" or (
                    node.module or ""
                ).endswith(".random"):
                    yield self.finding(
                        module,
                        node,
                        f"import from '{node.module}' bypasses SeededRng; "
                        "draw from a forked SeededRng stream instead",
                    )
            elif isinstance(node, ast.Attribute):
                if isinstance(node.value, ast.Name) and node.value.id == "random":
                    yield self.finding(
                        module,
                        node,
                        f"'random.{node.attr}' is ambient randomness; "
                        "draw from a forked SeededRng stream instead",
                    )


@register
class WallClockRule(Rule):
    """REP002: wall-clock reads.

    Simulation time comes from :class:`~repro.clock.SimulationClock`
    only.  Flags ``time.time()``-family calls and
    ``datetime.now/utcnow/today`` (module- or class-qualified), plus
    ``from time import time``-style imports of clock readers.
    """

    rule_id = "REP002"
    title = "wall-clock read"
    severity = Severity.ERROR

    def check(self, module: ModuleContext) -> Iterator:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                root = _attr_root(node)
                if root == "time" and node.attr in _WALL_TIME_ATTRS:
                    yield self.finding(
                        module,
                        node,
                        f"'time.{node.attr}' reads the wall clock; "
                        "use SimulationClock.now",
                    )
                elif (
                    root in ("datetime", "date")
                    and node.attr in _WALL_DATETIME_ATTRS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"'{root}.{node.attr}' reads the wall clock; "
                        "use SimulationClock.now",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_TIME_ATTRS:
                        yield self.finding(
                            module,
                            node,
                            f"'from time import {alias.name}' imports a "
                            "wall-clock reader; use SimulationClock.now",
                        )


def _set_returning_callables(tree: ast.Module) -> Set[str]:
    """Names of functions/methods annotated as returning a set type."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.returns is not None and _is_set_annotation(node.returns):
                names.add(node.name)
    return names


def _is_set_annotation(node: ast.AST) -> bool:
    if isinstance(node, ast.Subscript):
        return _is_set_annotation(node.value)
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[", 1)[0].strip()
        return head.split(".")[-1] in _SET_ANNOTATIONS
    return False


@register
class UnorderedSetIterationRule(Rule):
    """REP003: iterating an unordered set without ``sorted()``.

    Set iteration order depends on insertion history and (for strings)
    the per-process hash salt, so any result that flows out of a bare
    set loop is unstable.  Flags ``for``/comprehension iteration over
    set literals, set comprehensions, ``set()``/``frozenset()`` calls,
    and calls to same-module functions annotated ``-> Set[...]``.
    Wrapping the iterable in ``sorted(...)`` clears the finding.
    """

    rule_id = "REP003"
    title = "unordered set iteration"
    severity = Severity.ERROR

    def check(self, module: ModuleContext) -> Iterator:
        set_fns = _set_returning_callables(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                iters = [node.iter]
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters = [gen.iter for gen in node.generators]
            else:
                continue
            for iterable in iters:
                if self._is_unordered(iterable, set_fns):
                    yield self.finding(
                        module,
                        iterable,
                        "iteration over an unordered set; wrap the iterable "
                        "in sorted(...) to fix the order",
                    )

    @staticmethod
    def _is_unordered(node: ast.AST, set_fns: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                return func.id in ("set", "frozenset") or func.id in set_fns
            if isinstance(func, ast.Attribute):
                # Only self.method() calls are resolvable within the module.
                if isinstance(func.value, ast.Name) and func.value.id == "self":
                    return func.attr in set_fns
        return False


@register
class SaltedHashRule(Rule):
    """REP004: builtin ``hash()`` outside ``__hash__``.

    Python salts string hashing per process, so ``hash()`` values must
    never feed ordering, bucketing, or persisted artefacts.  Inside a
    ``__hash__`` method the value stays process-local by construction;
    everywhere else, use :func:`repro.rng.stable_hash`.
    """

    rule_id = "REP004"
    title = "salted hash()"
    severity = Severity.ERROR

    def check(self, module: ModuleContext) -> Iterator:
        for scope, node in _walk_with_function_scope(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
                and scope != "__hash__"
            ):
                yield self.finding(
                    module,
                    node,
                    "builtin hash() is salted per process; use "
                    "repro.rng.stable_hash for stable values",
                )


def _walk_with_function_scope(tree: ast.Module):
    """Yield (enclosing-function-name, node) pairs, '' at module level."""
    stack = [("", tree)]
    while stack:
        scope, node = stack.pop()
        yield scope, node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.append((child.name, child))
            else:
                stack.append((scope, child))


@register
class OsEntropyRule(Rule):
    """REP005: OS entropy sources.

    ``os.urandom``, ``uuid.uuid1``/``uuid4``, and everything in
    ``secrets`` are non-reproducible by design.  Identifiers must be
    derived from the world seed (e.g. ``stable_hash``/``SeededRng``).
    """

    rule_id = "REP005"
    title = "OS entropy"
    severity = Severity.ERROR

    def check(self, module: ModuleContext) -> Iterator:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "secrets":
                        yield self.finding(
                            module, node,
                            "the 'secrets' module is OS entropy; derive "
                            "values from the world seed",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "secrets":
                    yield self.finding(
                        module, node,
                        "the 'secrets' module is OS entropy; derive values "
                        "from the world seed",
                    )
                elif node.module == "os":
                    for alias in node.names:
                        if alias.name in ("urandom", "getrandom"):
                            yield self.finding(
                                module, node,
                                f"'os.{alias.name}' is OS entropy; derive "
                                "values from the world seed",
                            )
                elif node.module == "uuid":
                    for alias in node.names:
                        if alias.name in ("uuid1", "uuid4"):
                            yield self.finding(
                                module, node,
                                f"'uuid.{alias.name}' is OS entropy; derive "
                                "identifiers from stable_hash",
                            )
            elif isinstance(node, ast.Attribute):
                root = _attr_root(node)
                if root == "os" and node.attr in ("urandom", "getrandom"):
                    yield self.finding(
                        module, node,
                        f"'os.{node.attr}' is OS entropy; derive values "
                        "from the world seed",
                    )
                elif root == "uuid" and node.attr in ("uuid1", "uuid4"):
                    yield self.finding(
                        module, node,
                        f"'uuid.{node.attr}' is OS entropy; derive "
                        "identifiers from stable_hash",
                    )
                elif root == "secrets":
                    yield self.finding(
                        module, node,
                        f"'secrets.{node.attr}' is OS entropy; derive "
                        "values from the world seed",
                    )
