"""The baseline (allowlist) file for grandfathered findings.

A baseline entry records one finding's fingerprint together with a human
comment explaining why the violation is intentional.  The file format is
line-oriented and diff-friendly::

    # repro lint baseline — grandfathered findings.
    REP001 src/repro/rng.py 0f3a... # SeededRng wraps random.Random by design

Fingerprints hash the rule ID, path, and the violating line's *text*, so
entries survive unrelated edits (lines moving) but go stale the moment
the grandfathered line itself changes — forcing a human re-review, which
is the point.  Stale entries are reported so the baseline never silently
accretes dead weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import AnalysisError
from ..io import atomic_write_text
from .findings import Finding

__all__ = ["Baseline", "BaselineEntry"]

_HEADER = (
    "# repro lint baseline — grandfathered findings.\n"
    "# Format: <rule_id> <path> <fingerprint>  # why this is intentional\n"
    "# Regenerate with: repro lint --update-baseline\n"
)


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule_id: str
    path: str
    fingerprint: str
    comment: str = ""

    def render(self) -> str:
        line = f"{self.rule_id} {self.path} {self.fingerprint}"
        if self.comment:
            line += f"  # {self.comment}"
        return line


class Baseline:
    """An ordered set of grandfathered findings keyed by fingerprint."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self._entries: Dict[str, BaselineEntry] = {}
        for entry in entries:
            self._entries[entry.fingerprint] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def entries(self) -> List[BaselineEntry]:
        """All entries, ordered by (path, rule, fingerprint)."""
        return sorted(
            self._entries.values(),
            key=lambda e: (e.path, e.rule_id, e.fingerprint),
        )

    def comment_for(self, fingerprint: str) -> str:
        """The recorded justification for one entry ('' if absent)."""
        entry = self._entries.get(fingerprint)
        return entry.comment if entry else ""

    # -- persistence ----------------------------------------------------

    @classmethod
    def parse(cls, text: str, source: str = "<baseline>") -> "Baseline":
        """Parse baseline file content; malformed lines raise."""
        entries: List[BaselineEntry] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line, _, comment = raw.partition("#")
            line = line.strip()
            if not line:
                continue
            fields = line.split()
            if len(fields) != 3:
                raise AnalysisError(
                    f"{source}:{lineno}: malformed baseline entry "
                    f"(expected 'RULE PATH FINGERPRINT'): {raw.strip()!r}"
                )
            rule_id, path, fingerprint = fields
            entries.append(
                BaselineEntry(rule_id, path, fingerprint, comment.strip())
            )
        return cls(entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError:
            return cls()
        except OSError as exc:
            raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
        return cls.parse(text, source=path)

    def render(self) -> str:
        """The full file content, header included."""
        lines = [_HEADER.rstrip("\n")]
        lines.extend(entry.render() for entry in self.entries())
        return "\n".join(lines) + "\n"

    def save(self, path: str) -> None:
        """Write the baseline file (atomically: tmp + fsync + rename)."""
        try:
            atomic_write_text(path, self.render())
        except OSError as exc:
            raise AnalysisError(f"cannot write baseline {path}: {exc}") from exc

    # -- application ----------------------------------------------------

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (new, suppressed-by-baseline)."""
        new: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            if finding.fingerprint in self._entries:
                suppressed.append(finding)
            else:
                new.append(finding)
        return new, suppressed

    def stale_entries(
        self, findings: Sequence[Finding]
    ) -> List[BaselineEntry]:
        """Entries whose violation no longer exists (should be pruned)."""
        live = {finding.fingerprint for finding in findings}
        return [
            entry for entry in self.entries() if entry.fingerprint not in live
        ]

    def stale_reasons(
        self,
        findings: Sequence[Finding],
        inline_suppressed: Sequence[Finding] = (),
    ) -> List[Tuple[BaselineEntry, str]]:
        """``(entry, reason)`` pairs for entries no live finding matches.

        ``reason`` is ``"gone"`` when the violation no longer exists in
        the tree, and ``"inline"`` when it still exists but is already
        covered by a ``# repro: allow`` comment — a finding must not be
        excused twice, so either way the entry is dead weight that
        ``--update-baseline`` drops.  The distinction matters for the
        human reading the report: a ``gone`` entry means the code was
        fixed; an ``inline`` entry means the justification moved into
        the source and the baseline copy is the redundant one.
        """
        inline = {finding.fingerprint for finding in inline_suppressed}
        return [
            (entry, "inline" if entry.fingerprint in inline else "gone")
            for entry in self.stale_entries(findings)
        ]

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], previous: "Baseline" = None
    ) -> "Baseline":
        """Build a baseline covering ``findings``.

        Comments from ``previous`` are preserved for fingerprints that
        survive; new entries get the finding's message as a placeholder
        comment for a human to refine.
        """
        entries = []
        for finding in sorted(findings, key=lambda f: f.sort_key):
            comment = (
                previous.comment_for(finding.fingerprint) if previous else ""
            )
            entries.append(
                BaselineEntry(
                    rule_id=finding.rule_id,
                    path=finding.path,
                    fingerprint=finding.fingerprint,
                    comment=comment or finding.message,
                )
            )
        return cls(entries)
