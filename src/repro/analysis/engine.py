"""The analysis driver: file discovery, parsing, and rule application.

:class:`Analyzer` turns a list of paths (files or directories) into a
deterministic, sorted list of :class:`~repro.analysis.findings.Finding`.
Discovery order, finding order, and fingerprints are all stable across
processes — the linter holds itself to the same reproducibility bar it
enforces.

A run has two layers.  Per-module rules see one
:class:`~repro.analysis.rules.ModuleContext` at a time and their results
are cached on disk keyed by content hash (see
:mod:`repro.analysis.cache`).  Project rules
(:class:`~repro.analysis.rules.ProjectRule`) see the assembled
:class:`~repro.analysis.graph.ProjectGraph` and always run fresh —
their inputs are the cached per-module summaries, so a warm run still
performs zero re-parses.  Inline ``# repro: allow[...]`` suppressions
are applied last, after occurrence numbering, so suppressing a finding
never shifts another finding's fingerprint.
"""

from __future__ import annotations

import ast
import concurrent.futures
import os
import re
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import AnalysisError
from .cache import LintCache, content_hash, ruleset_signature
from .findings import Finding
from .graph import ModuleSummary, ProjectGraph, module_name_for, summarize_module
from .rules import ModuleContext, ProjectRule, Rule, RuleRegistry, default_registry
from .suppressions import StaleSuppressionRule, Suppression

__all__ = ["Analyzer", "LintResult", "LintStats"]

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_STAR_IMPORT_RE = re.compile(
    r"^\s*from\s+([A-Za-z_][\w.]*)\s+import\s+\*", re.MULTILINE
)

#: Directories next to the analysis root scanned for external symbol
#: references (REP043): a name used only by a test is still alive.
_REFERENCE_ROOT_NAMES = ("tests", "examples", "benchmarks")


@dataclass
class LintStats:
    """Counters describing how a run did its work."""

    files: int = 0
    parsed: int = 0
    cache_hits: int = 0
    cache_enabled: bool = False

    @property
    def cache_misses(self) -> int:
        return self.files - self.cache_hits

    def to_dict(self) -> Dict[str, Any]:
        return {
            "files": self.files,
            "parsed": self.parsed,
            "cache_enabled": self.cache_enabled,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


@dataclass
class LintResult:
    """Everything one :meth:`Analyzer.analyze` run produced.

    ``findings`` are the live, occurrence-numbered findings (including
    any REP050 stale-suppression findings the engine emitted);
    ``inline_suppressed`` are findings silenced by in-source ``allow``
    comments.  The baseline is applied by the caller on ``findings`` —
    inline suppression happens first, baseline second.
    """

    findings: List[Finding] = field(default_factory=list)
    inline_suppressed: List[Finding] = field(default_factory=list)
    stats: LintStats = field(default_factory=LintStats)
    summaries: List[ModuleSummary] = field(default_factory=list)


class Analyzer:
    """Runs a rule pack over Python source trees.

    Parameters
    ----------
    rules:
        Explicit rule instances; defaults to the full registered pack.
    select / ignore:
        Rule-ID filters applied when ``rules`` is not given.
    root:
        Directory that finding paths are made relative to (defaults to
        the current working directory).  Using repo-relative paths keeps
        baseline fingerprints identical no matter where the tree is
        checked out.
    registry:
        Registry to draw rules from; defaults to the process-wide one.
    cache_path:
        Path for the on-disk incremental cache; ``None`` (the default)
        disables caching.
    reference_roots:
        Extra directories scanned (textually) for identifier uses that
        count as references for the dead-export rule.  Defaults to
        ``tests``/``examples``/``benchmarks`` under ``root`` when they
        exist.
    ignore_unused_suppressions:
        Do not report inline suppressions that matched nothing.
    jobs:
        Worker processes for cold-start parsing.  ``1`` (the default)
        stays serial; ``0`` means one per CPU.  Findings and summaries
        are merged back in discovery order, so output is byte-identical
        to a serial run regardless of worker scheduling.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        root: Optional[str] = None,
        registry: Optional[RuleRegistry] = None,
        cache_path: Optional[str] = None,
        reference_roots: Optional[Sequence[str]] = None,
        ignore_unused_suppressions: bool = False,
        jobs: int = 1,
    ) -> None:
        registry = registry or default_registry()
        if rules is None:
            rules = registry.instantiate(select=select, ignore=ignore)
        self.rules: List[Rule] = list(rules)
        self.module_rules: List[Rule] = [
            rule for rule in self.rules if not isinstance(rule, ProjectRule)
        ]
        self.project_rules: List[ProjectRule] = [
            rule for rule in self.rules if isinstance(rule, ProjectRule)
        ]
        self.root = os.path.abspath(root or os.getcwd())
        self.cache_path = cache_path
        self.reference_roots = (
            list(reference_roots) if reference_roots is not None else None
        )
        self.ignore_unused_suppressions = ignore_unused_suppressions
        self.jobs = jobs

    # -- discovery ------------------------------------------------------

    def discover(self, paths: Iterable[str]) -> List[str]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        files: List[str] = []
        for path in paths:
            if os.path.isdir(path):
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames.sort()
                    dirnames[:] = [
                        d for d in dirnames
                        if d != "__pycache__" and not d.startswith(".")
                    ]
                    for filename in sorted(filenames):
                        if filename.endswith(".py"):
                            files.append(os.path.join(dirpath, filename))
            elif os.path.isfile(path):
                files.append(path)
            else:
                raise AnalysisError(f"no such file or directory: {path}")
        # De-duplicate while keeping a deterministic order.
        unique: Dict[str, None] = {}
        for path in files:
            unique.setdefault(os.path.abspath(path), None)
        return sorted(unique)

    def _display_path(self, abspath: str) -> str:
        relative = os.path.relpath(abspath, self.root)
        if relative.startswith(".."):
            return abspath.replace(os.sep, "/")
        return relative.replace(os.sep, "/")

    # -- execution ------------------------------------------------------

    def parse(self, abspath: str) -> ModuleContext:
        """Read and parse one file into a :class:`ModuleContext`."""
        return self._parse_source(abspath, self._read(abspath))

    @staticmethod
    def _read(abspath: str) -> bytes:
        try:
            with open(abspath, "rb") as handle:
                return handle.read()
        except OSError as exc:
            raise AnalysisError(f"cannot read {abspath}: {exc}") from exc

    def _parse_source(self, abspath: str, data: bytes) -> ModuleContext:
        try:
            source = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise AnalysisError(f"cannot read {abspath}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=abspath)
        except SyntaxError as exc:
            raise AnalysisError(
                f"cannot parse {abspath}: {exc.msg} (line {exc.lineno})"
            ) from exc
        return ModuleContext(
            path=self._display_path(abspath),
            basename=os.path.basename(abspath),
            tree=tree,
            lines=source.splitlines(),
        )

    def check_module(self, module: ModuleContext) -> List[Finding]:
        """Apply every per-module rule to one parsed module."""
        findings: List[Finding] = []
        for rule in self.module_rules:
            if rule.applies_to(module):
                findings.extend(rule.check(module))
        return findings

    # -- external references (REP043) -----------------------------------

    def _external_references(self) -> Tuple[Set[str], Set[str]]:
        """References from the reference roots (textual scan).

        A plain token scan, not a parse: reference roots are tests and
        scripts whose *mention* of a symbol is what keeps an export
        alive, and a regex over a few hundred KB costs nothing.

        Returns ``(identifiers, star_imported_modules)`` — the second
        set holds dotted module names pulled in via ``from m import *``,
        which materializes every ``__all__`` export without mentioning
        any of them by name.
        """
        roots = self.reference_roots
        if roots is None:
            roots = [
                os.path.join(self.root, name)
                for name in _REFERENCE_ROOT_NAMES
                if os.path.isdir(os.path.join(self.root, name))
            ]
        references: Set[str] = set()
        star_modules: Set[str] = set()
        for root in roots:
            if os.path.isfile(root):
                self._scan_reference_file(root, references, star_modules)
                continue
            for dirpath, dirnames, filenames in os.walk(root):
                dirnames.sort()
                dirnames[:] = [
                    d for d in dirnames
                    if d != "__pycache__" and not d.startswith(".")
                ]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        self._scan_reference_file(
                            os.path.join(dirpath, filename),
                            references, star_modules,
                        )
        return references, star_modules

    @staticmethod
    def _scan_reference_file(
        path: str, references: Set[str], star_modules: Set[str]
    ) -> None:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as handle:
                text = handle.read()
        except OSError:
            return
        references.update(_IDENTIFIER_RE.findall(text))
        star_modules.update(_STAR_IMPORT_RE.findall(text))

    # -- the run ---------------------------------------------------------

    def analyze(self, paths: Iterable[str]) -> LintResult:
        """Lint ``paths``: module rules (cached), project rules, inline
        suppressions — returning a :class:`LintResult`."""
        stats = LintStats(cache_enabled=self.cache_path is not None)
        cache: Optional[LintCache] = None
        if self.cache_path is not None:
            # Project rules have no per-file cache entry, but their IDs
            # are part of the signature: the summaries they consume are
            # cached, and the evidence collected into a summary grows
            # with the rule set.
            signature = ruleset_signature(
                [rule.rule_id for rule in self.rules]
            )
            cache = LintCache.load(self.cache_path, signature)

        # Phase 1: read and hash everything, serving cache hits.
        records: List[Tuple[str, str, bytes, str, Optional[Tuple[List[Finding], ModuleSummary]]]] = []
        for abspath in self.discover(paths):
            display = self._display_path(abspath)
            data = self._read(abspath)
            digest = content_hash(data)
            cached = cache.get(display, digest) if cache is not None else None
            records.append((abspath, display, data, digest, cached))

        # Phase 2: parse the misses — in parallel when jobs > 1 — and
        # merge back in discovery order.
        misses = [
            (abspath, data)
            for abspath, _, data, _, cached in records
            if cached is None
        ]
        fresh = self._lint_cold(misses)

        raw_findings: List[Finding] = []
        summaries: List[ModuleSummary] = []
        display_paths: List[str] = []
        fresh_index = 0
        for abspath, display, data, digest, cached in records:
            display_paths.append(display)
            stats.files += 1
            if cached is not None:
                stats.cache_hits += 1
                module_findings, summary = cached
            else:
                stats.parsed += 1
                module_findings, summary = fresh[fresh_index]
                fresh_index += 1
                if cache is not None:
                    cache.put(display, digest, module_findings, summary)
            raw_findings.extend(module_findings)
            summaries.append(summary)
        if cache is not None:
            cache.prune(display_paths)
            cache.save()

        if self.project_rules:
            references, star_modules = self._external_references()
            graph = ProjectGraph(
                summaries,
                external_references=references,
                star_imported_modules=star_modules,
            )
            for rule in self.project_rules:
                raw_findings.extend(rule.check_project(graph))

        return self._apply_suppressions(raw_findings, summaries, stats)

    # -- cold-path parsing (serial or multi-process) ---------------------

    def _lint_one(
        self, abspath: str, data: bytes
    ) -> Tuple[List[Finding], ModuleSummary]:
        context = self._parse_source(abspath, data)
        findings = self.check_module(context)
        summary = summarize_module(context, module_name_for(context.path))
        return findings, summary

    def _lint_cold(
        self, misses: List[Tuple[str, bytes]]
    ) -> List[Tuple[List[Finding], ModuleSummary]]:
        """Parse and module-lint every cache miss, in input order."""
        jobs = self.jobs if self.jobs > 0 else (os.cpu_count() or 1)
        if jobs > 1 and len(misses) > 1:
            try:
                return self._lint_cold_parallel(misses, jobs)
            except (OSError, NotImplementedError, ImportError):
                # No usable multiprocessing primitives on this host —
                # the parallel path is an accelerator, never a
                # correctness dependency.
                pass
        return [self._lint_one(abspath, data) for abspath, data in misses]

    def _lint_cold_parallel(
        self, misses: List[Tuple[str, bytes]], jobs: int
    ) -> List[Tuple[List[Finding], ModuleSummary]]:
        """Fan the misses out over worker processes.

        ``executor.map`` yields results in submission order, so the
        merged output — findings, summaries, and hence fingerprints and
        the project graph — is byte-identical to the serial path no
        matter how the OS schedules the workers (the merge-determinism
        discipline REP061 enforces on the study's own shard plane).
        """
        workers = min(jobs, len(misses))
        chunksize = max(1, len(misses) // (workers * 4))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(self.root, self.module_rules),
        ) as executor:
            return list(
                executor.map(_worker_lint, misses, chunksize=chunksize)
            )

    def run(self, paths: Iterable[str]) -> List[Finding]:
        """Lint ``paths`` and return the live findings, sorted.

        The historical entry point: equivalent to
        ``analyze(paths).findings`` (inline-suppressed findings are
        dropped; stale-suppression findings are included).
        """
        return self.analyze(paths).findings

    # -- suppressions & numbering ----------------------------------------

    def _apply_suppressions(
        self,
        raw_findings: List[Finding],
        summaries: List[ModuleSummary],
        stats: LintStats,
    ) -> LintResult:
        suppressions: Dict[str, List[Suppression]] = {
            summary.path: summary.suppressions
            for summary in summaries
            if summary.suppressions
        }
        rep050_active = any(
            rule.rule_id == StaleSuppressionRule.rule_id for rule in self.rules
        )

        used: Set[Tuple[str, int]] = set()
        flagged: List[Tuple[Finding, bool]] = []
        for finding in raw_findings:
            matched = False
            for suppression in suppressions.get(finding.path, ()):
                if (
                    suppression.line == finding.line
                    and finding.rule_id in suppression.rule_ids
                ):
                    matched = True
                    used.add((finding.path, suppression.line))
            flagged.append((finding, matched))

        if rep050_active:
            for summary in summaries:
                for suppression in summary.suppressions:
                    key = (summary.path, suppression.line)
                    if key not in used:
                        if self.ignore_unused_suppressions:
                            continue
                        ids = ",".join(suppression.rule_ids)
                        flagged.append((
                            StaleSuppressionRule.stale_finding(
                                summary.path, suppression,
                                f"suppression allow[{ids}] matches no"
                                " finding on this line; remove it",
                            ),
                            False,
                        ))
                    elif not suppression.reason:
                        flagged.append((
                            StaleSuppressionRule.stale_finding(
                                summary.path, suppression,
                                "suppression has no '-- reason'; every"
                                " exception carries its justification",
                            ),
                            False,
                        ))

        # Occurrence-number the *union* before partitioning: adding or
        # removing a suppression must never shift another finding's
        # fingerprint.
        flagged.sort(key=lambda pair: pair[0].sort_key)
        counts: Dict[Tuple[str, str, str], int] = {}
        findings: List[Finding] = []
        inline_suppressed: List[Finding] = []
        for finding, matched in flagged:
            key = (finding.rule_id, finding.path, finding.source.strip())
            occurrence = counts.get(key, 0)
            counts[key] = occurrence + 1
            if occurrence:
                finding = replace(finding, occurrence=occurrence)
            (inline_suppressed if matched else findings).append(finding)
        return LintResult(
            findings=findings,
            inline_suppressed=inline_suppressed,
            stats=stats,
            summaries=summaries,
        )


# -- worker-process entry points (repro lint --jobs N) -----------------------

#: Per-worker Analyzer, built once by the pool initializer.  Module rules
#: are shipped pickled from the parent, so a custom rule list behaves
#: identically in serial and parallel runs.
_WORKER_ANALYZER: Optional[Analyzer] = None


def _worker_init(root: str, module_rules: List[Rule]) -> None:
    global _WORKER_ANALYZER
    _WORKER_ANALYZER = Analyzer(rules=module_rules, root=root)


def _worker_lint(
    item: Tuple[str, bytes]
) -> Tuple[List[Finding], ModuleSummary]:
    assert _WORKER_ANALYZER is not None
    return _WORKER_ANALYZER._lint_one(item[0], item[1])
