"""The analysis driver: file discovery, parsing, and rule application.

:class:`Analyzer` turns a list of paths (files or directories) into a
deterministic, sorted list of :class:`~repro.analysis.findings.Finding`.
Discovery order, finding order, and fingerprints are all stable across
processes — the linter holds itself to the same reproducibility bar it
enforces.
"""

from __future__ import annotations

import ast
import os
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from .findings import Finding
from .rules import ModuleContext, Rule, RuleRegistry, default_registry

__all__ = ["Analyzer"]


class Analyzer:
    """Runs a rule pack over Python source trees.

    Parameters
    ----------
    rules:
        Explicit rule instances; defaults to the full registered pack.
    select / ignore:
        Rule-ID filters applied when ``rules`` is not given.
    root:
        Directory that finding paths are made relative to (defaults to
        the current working directory).  Using repo-relative paths keeps
        baseline fingerprints identical no matter where the tree is
        checked out.
    registry:
        Registry to draw rules from; defaults to the process-wide one.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        root: Optional[str] = None,
        registry: Optional[RuleRegistry] = None,
    ) -> None:
        registry = registry or default_registry()
        if rules is None:
            rules = registry.instantiate(select=select, ignore=ignore)
        self.rules: List[Rule] = list(rules)
        self.root = os.path.abspath(root or os.getcwd())

    # -- discovery ------------------------------------------------------

    def discover(self, paths: Iterable[str]) -> List[str]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        files: List[str] = []
        for path in paths:
            if os.path.isdir(path):
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames.sort()
                    dirnames[:] = [
                        d for d in dirnames
                        if d != "__pycache__" and not d.startswith(".")
                    ]
                    for filename in sorted(filenames):
                        if filename.endswith(".py"):
                            files.append(os.path.join(dirpath, filename))
            elif os.path.isfile(path):
                files.append(path)
            else:
                raise AnalysisError(f"no such file or directory: {path}")
        # De-duplicate while keeping a deterministic order.
        unique: Dict[str, None] = {}
        for path in files:
            unique.setdefault(os.path.abspath(path), None)
        return sorted(unique)

    def _display_path(self, abspath: str) -> str:
        relative = os.path.relpath(abspath, self.root)
        if relative.startswith(".."):
            return abspath.replace(os.sep, "/")
        return relative.replace(os.sep, "/")

    # -- execution ------------------------------------------------------

    def parse(self, abspath: str) -> ModuleContext:
        """Read and parse one file into a :class:`ModuleContext`."""
        try:
            with open(abspath, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise AnalysisError(f"cannot read {abspath}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=abspath)
        except SyntaxError as exc:
            raise AnalysisError(
                f"cannot parse {abspath}: {exc.msg} (line {exc.lineno})"
            ) from exc
        return ModuleContext(
            path=self._display_path(abspath),
            basename=os.path.basename(abspath),
            tree=tree,
            lines=source.splitlines(),
        )

    def check_module(self, module: ModuleContext) -> List[Finding]:
        """Apply every rule to one parsed module."""
        findings: List[Finding] = []
        for rule in self.rules:
            if rule.applies_to(module):
                findings.extend(rule.check(module))
        return findings

    def run(self, paths: Iterable[str]) -> List[Finding]:
        """Lint ``paths`` and return findings in deterministic order.

        Findings are sorted by location and assigned occurrence indices
        so two identical violating lines in one file get distinct
        fingerprints.
        """
        findings: List[Finding] = []
        for abspath in self.discover(paths):
            findings.extend(self.check_module(self.parse(abspath)))
        findings.sort(key=lambda f: f.sort_key)
        counts: Dict[Tuple[str, str, str], int] = {}
        numbered: List[Finding] = []
        for finding in findings:
            key = (finding.rule_id, finding.path, finding.source.strip())
            occurrence = counts.get(key, 0)
            counts[key] = occurrence + 1
            if occurrence:
                finding = replace(finding, occurrence=occurrence)
            numbered.append(finding)
        return numbered
